//! Graceful degradation end-to-end: an exhausted or wedged disk turns a
//! durable table **read-only** — appends fail fast with the typed
//! [`EngineError::ReadOnly`] carrying the original cause, reads keep
//! serving from memory, and `resume_writes` re-arms the log once the
//! disk recovers. Each scenario runs on [`SimIo`] so the fault and the
//! recovery are deterministic.

use std::path::PathBuf;
use std::sync::Arc;

use idf_core::config::IndexConfig;
use idf_core::sink::SinkStatus;
use idf_durable::{DurableSession, FaultProfile, SimIo, StorageIo};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::error::EngineError;
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
    ]))
}

fn cfg() -> EngineConfig {
    EngineConfig {
        data_dir: Some(PathBuf::from("/data")),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    }
}

fn index() -> IndexConfig {
    IndexConfig {
        num_partitions: 4,
        ..IndexConfig::default()
    }
}

fn open(io: &Arc<SimIo>) -> DurableSession {
    DurableSession::open_with_io(cfg(), Arc::clone(io) as Arc<dyn StorageIo>).unwrap()
}

fn append(sess: &DurableSession, key: i64) -> idf_engine::error::Result<()> {
    sess.dataframe("t")
        .unwrap()
        .append_row(&[Value::Int64(key), Value::Utf8(format!("row-{key}"))])
        .map(|_| ())
}

/// ENOSPC storm: the disk fills, appends degrade to typed read-only,
/// reads keep serving, a resume attempt under the full disk fails and
/// stays degraded, and freeing space plus `resume_writes` re-arms.
/// A crash afterwards loses nothing that was acknowledged.
#[test]
fn enospc_storm_degrades_to_read_only_and_resume_rearms_after_freeing() {
    let io = SimIo::new(7, FaultProfile::none());
    let sess = open(&io);
    sess.create_table("t", schema(), 0, index()).unwrap();
    for key in 0..10 {
        append(&sess, key).unwrap();
    }

    // Fill the disk: the very next WAL write hits ENOSPC.
    io.set_capacity(Some(io.used_bytes()));
    let err = append(&sess, 10).unwrap_err();
    assert!(
        matches!(err, EngineError::ReadOnly(_)),
        "ENOSPC append must degrade to typed ReadOnly, got {err:?}"
    );
    assert!(err.to_string().contains("ENOSPC"), "{err}");

    // Degraded is sticky and observable; reads are untouched.
    match sess.write_status("t").unwrap() {
        SinkStatus::ReadOnly(cause) => assert!(cause.contains("ENOSPC"), "{cause}"),
        SinkStatus::Writable => panic!("table must report read-only"),
    }
    let df = sess.dataframe("t").unwrap();
    assert_eq!(df.table().row_count(), 10);
    assert_eq!(df.get_rows(3i64).unwrap().collect().unwrap().len(), 1);

    // A checkpoint refuses (it cannot make the log healthy), and a
    // resume under the still-full disk fails without un-degrading.
    assert!(matches!(
        sess.checkpoint(Some("t")).unwrap_err(),
        EngineError::ReadOnly(_)
    ));
    assert!(sess.resume_writes(Some("t")).is_err());
    assert!(matches!(
        sess.write_status("t").unwrap(),
        SinkStatus::ReadOnly(_)
    ));

    // Free space: resume re-arms (fresh checkpoint + clean segment) and
    // appends are accepted again.
    io.set_capacity(None);
    sess.resume_writes(Some("t")).unwrap();
    assert_eq!(sess.write_status("t").unwrap(), SinkStatus::Writable);
    for key in 10..15 {
        append(&sess, key).unwrap();
    }

    // Crash: every acknowledged row survives, the refused one never
    // appears.
    drop(sess);
    io.crash();
    let sess = open(&io);
    let df = sess.dataframe("t").unwrap();
    assert_eq!(df.table().row_count(), 15);
    for key in 0..15i64 {
        assert_eq!(df.get_rows(key).unwrap().collect().unwrap().len(), 1);
    }
    assert_eq!(df.get_rows(15i64).unwrap().collect().unwrap().len(), 0);
}

/// A sticky fsync failure (the kernel remembers a lost write) wedges the
/// log until the machine reboots: resume fails while the fault holds,
/// and the post-crash reopen recovers exactly the acknowledged prefix.
#[test]
fn sticky_fsync_wedges_until_reboot() {
    let io = SimIo::new(11, FaultProfile::none());
    let sess = open(&io);
    sess.create_table("t", schema(), 0, index()).unwrap();
    for key in 0..5 {
        append(&sess, key).unwrap();
    }

    io.set_sticky_fsync(true);
    let err = append(&sess, 5).unwrap_err();
    assert!(matches!(err, EngineError::ReadOnly(_)), "{err:?}");
    // Reads keep serving the in-memory table.
    assert_eq!(sess.dataframe("t").unwrap().table().row_count(), 5);
    // Resume cannot help: the fresh checkpoint's own fsync fails too.
    assert!(sess.resume_writes(Some("t")).is_err());
    assert!(matches!(
        sess.write_status("t").unwrap(),
        SinkStatus::ReadOnly(_)
    ));

    // "Reboot": a crash clears the kernel-held sticky error, and the
    // acknowledged prefix — nothing more — comes back.
    drop(sess);
    io.crash();
    let sess = open(&io);
    let df = sess.dataframe("t").unwrap();
    assert_eq!(df.table().row_count(), 5);
    assert_eq!(df.get_rows(5i64).unwrap().collect().unwrap().len(), 0);
    // And the disk is healthy again.
    append(&sess, 5).unwrap();
    assert_eq!(df.table().row_count(), 6);
}

/// Unsynced-data crash: a frame that reached the file but not the
/// platter is dropped by the crash, and recovery serves exactly the
/// acknowledged prefix — the refused append's key is absent even though
/// its bytes were written.
#[test]
fn unsynced_frame_dies_in_the_crash_acked_rows_survive() {
    let io = SimIo::new(13, FaultProfile::none());
    let sess = open(&io);
    sess.create_table("t", schema(), 0, index()).unwrap();
    for key in 0..8 {
        append(&sess, key).unwrap();
    }

    // The append's write lands in the file image, but its fsync fails:
    // the commit is refused and the frame stays unsynced.
    io.set_sticky_fsync(true);
    assert!(append(&sess, 8).is_err());
    drop(sess);
    io.crash();

    let sess = open(&io);
    let df = sess.dataframe("t").unwrap();
    assert_eq!(
        df.table().row_count(),
        8,
        "exactly the acked prefix must survive"
    );
    for key in 0..8i64 {
        assert_eq!(df.get_rows(key).unwrap().collect().unwrap().len(), 1);
    }
    assert_eq!(
        df.get_rows(8i64).unwrap().collect().unwrap().len(),
        0,
        "the refused append must not resurrect"
    );
}
