//! End-to-end crash/recovery test: populate two durable tables, snapshot
//! query results (point lookup, indexed join, SQL aggregate), crash the
//! session mid-append via an injected commit fault, recover with
//! [`DurableSession::open`], and assert every committed result is
//! reproduced bit-for-bit. The subprocess-kill variant of this round-trip
//! lives in `kill_reopen.rs`.

use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use idf_core::config::IndexConfig;
use idf_durable::{DurableSession, TempDir};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};

/// Serialize against other tests in this binary — the failpoint registry
/// is process-global.
static LOCK: Mutex<()> = Mutex::new(());

fn config(dir: &Path) -> EngineConfig {
    EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    }
}

fn person_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("age", DataType::Int64),
    ]))
}

fn knows_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("src", DataType::Int64),
        Field::new("dst", DataType::Int64),
    ]))
}

fn index() -> IndexConfig {
    IndexConfig {
        num_partitions: 4,
        ..IndexConfig::default()
    }
}

fn sorted_rows(chunk: &idf_engine::chunk::Chunk) -> Vec<Vec<Value>> {
    let mut rows = chunk.to_rows();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[cfg_attr(not(feature = "failpoints"), allow(unused_mut, unused_variables))]
#[test]
fn committed_results_survive_a_mid_append_crash() {
    let _s = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    idf_fail::reset();
    let dir = TempDir::new("e2e-crash");

    // --- Before the crash: populate and snapshot query results. -------
    let (pre_lookup, pre_join, pre_agg, pre_rows);
    {
        let sess = DurableSession::open(config(dir.path())).unwrap();
        let person = sess
            .create_table("person", person_schema(), 0, index())
            .unwrap();
        let knows = sess
            .create_table("knows", knows_schema(), 0, index())
            .unwrap();
        for i in 0..300i64 {
            person
                .append_row(&[
                    Value::Int64(i % 60),
                    Value::Utf8(format!("p{i}")),
                    Value::Int64(20 + i % 50),
                ])
                .unwrap();
        }
        for i in 0..120i64 {
            knows
                .append_row(&[Value::Int64(i % 60), Value::Int64((i * 7) % 60)])
                .unwrap();
        }
        // Mid-run checkpoint so recovery exercises snapshot + WAL replay.
        sess.checkpoint(Some("person")).unwrap();
        for i in 300..400i64 {
            person
                .append_row(&[
                    Value::Int64(i % 60),
                    Value::Utf8(format!("p{i}")),
                    Value::Int64(20 + i % 50),
                ])
                .unwrap();
        }

        pre_lookup = sorted_rows(&person.get_rows_chunk(17i64).unwrap());
        pre_join = sorted_rows(
            &person
                .join(&knows.df_named("knows"), "id", "src")
                .unwrap()
                .collect()
                .unwrap(),
        );
        pre_agg = sess
            .sql("SELECT COUNT(*), SUM(age) FROM person")
            .unwrap()
            .collect()
            .unwrap()
            .to_rows();
        pre_rows = person.row_count();

        // --- Crash mid-append: the commit fault fails the append, and
        // the session is dropped without a clean checkpoint. -----------
        #[cfg(feature = "failpoints")]
        {
            let _guard = idf_fail::FailGuard::new(
                idf_durable::failpoints::WAL_APPEND,
                idf_fail::FailConfig::error("crash now"),
            );
            let err = person
                .append_row(&[
                    Value::Int64(999),
                    Value::Utf8("lost".into()),
                    Value::Int64(0),
                ])
                .unwrap_err();
            assert!(err.to_string().contains("injected"), "{err}");
        }
    }
    idf_fail::reset();

    // --- After recovery: every committed result matches exactly. ------
    let sess = DurableSession::open(config(dir.path())).unwrap();
    let person = sess.dataframe("person").unwrap();
    let knows = sess.dataframe("knows").unwrap();
    assert_eq!(person.row_count(), pre_rows);
    assert_eq!(
        sorted_rows(&person.get_rows_chunk(17i64).unwrap()),
        pre_lookup,
        "point lookup after recovery"
    );
    assert_eq!(
        sorted_rows(
            &person
                .join(&knows.df_named("knows"), "id", "src")
                .unwrap()
                .collect()
                .unwrap()
        ),
        pre_join,
        "indexed join after recovery"
    );
    assert_eq!(
        sess.sql("SELECT COUNT(*), SUM(age) FROM person")
            .unwrap()
            .collect()
            .unwrap()
            .to_rows(),
        pre_agg,
        "aggregate after recovery"
    );
    // The aborted append left nothing behind.
    assert!(person.get_rows_chunk(999i64).unwrap().is_empty());
    // And the recovered session keeps accepting durable appends.
    person
        .append_row(&[
            Value::Int64(17),
            Value::Utf8("alive".into()),
            Value::Int64(1),
        ])
        .unwrap();
    assert_eq!(person.row_count(), pre_rows + 1);
}

/// The same round-trip driven entirely through SQL, including
/// `CHECKPOINT` — the demo-facing surface.
#[test]
fn sql_checkpoint_roundtrip() {
    let _s = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    idf_fail::reset();
    let dir = TempDir::new("e2e-sql");
    {
        let sess = DurableSession::open(config(dir.path())).unwrap();
        let person = sess
            .create_table("person", person_schema(), 0, index())
            .unwrap();
        for i in 0..50i64 {
            person
                .append_row(&[
                    Value::Int64(i),
                    Value::Utf8(format!("p{i}")),
                    Value::Int64(i),
                ])
                .unwrap();
        }
        let out = sess.sql("CHECKPOINT").unwrap().collect().unwrap();
        assert_eq!(out.to_rows(), vec![vec![Value::Utf8("person".into())]]);
    }
    let sess = DurableSession::open(config(dir.path())).unwrap();
    let out = sess
        .sql("SELECT COUNT(*) FROM person WHERE id >= 25")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.to_rows()[0][0], Value::Int64(25));
}
