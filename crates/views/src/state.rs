//! Epoch-versioned materialized state and its catalog source.
//!
//! A view's rows live in a [`ViewSource`] registered in the session
//! catalog under the view name, so `SELECT … FROM <view>` plans as an
//! ordinary scan through the normal physical layer — EXPLAIN, the memory
//! governor, cancellation and the service layer all work unchanged.
//!
//! Consistency contract: every maintenance step (delta application,
//! refresh swap) replaces or extends the chunk list and bumps the epoch
//! under one write lock, and every scan clones the chunk list under one
//! read lock — a reader therefore observes either all of a delta or none
//! of it, never a half-applied state.

use std::any::Any;
use std::sync::Arc;

use idf_engine::catalog::{ChunkIter, Statistics, TableSource};
use idf_engine::chunk::Chunk;
use idf_engine::error::Result;
use idf_engine::schema::SchemaRef;

use parking_lot::RwLock;

/// Chunk-list length at which an append folds the state into one chunk
/// (see [`ViewSource::append_chunk`]).
const COMPACT_THRESHOLD: usize = 64;

/// The materialized rows plus the epoch stamp they belong to.
struct ViewData {
    /// Bumped on every atomic state change; exposed for tests and
    /// debugging (a read under one epoch is one consistent state).
    epoch: u64,
    chunks: Vec<Arc<Chunk>>,
}

/// Materialized view state: an epoch-versioned chunk list behind a
/// catalog [`TableSource`].
pub struct ViewSource {
    schema: SchemaRef,
    data: RwLock<ViewData>,
}

impl ViewSource {
    /// Empty state with the view's output `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        ViewSource {
            schema,
            data: RwLock::new(ViewData {
                epoch: 0,
                chunks: Vec::new(),
            }),
        }
    }

    /// Append one delta-output chunk atomically (filter/project and join
    /// views grow monotonically). Empty chunks are dropped without an
    /// epoch bump.
    pub fn append_chunk(&self, chunk: Chunk) {
        if chunk.is_empty() {
            return;
        }
        let mut data = self.data.write();
        data.chunks.push(Arc::new(chunk));
        data.epoch += 1;
        // Per-delta appends are tiny; left alone, a long update stream
        // degrades every view read into a walk over thousands of
        // one-row chunks. Fold the state back into a single chunk once
        // the list gets long — the copy is amortized across the next
        // `COMPACT_THRESHOLD` appends, and the swap stays atomic under
        // the same write lock (one epoch, never a half-compacted scan).
        if data.chunks.len() >= COMPACT_THRESHOLD {
            let owned: Vec<Chunk> = data.chunks.iter().map(|c| (**c).clone()).collect();
            if let Ok(merged) = Chunk::concat(&owned) {
                data.chunks = vec![Arc::new(merged)];
            }
        }
    }

    /// Replace the whole state atomically (aggregate rebuilds, REFRESH).
    pub fn replace(&self, chunks: Vec<Chunk>) {
        let chunks: Vec<Arc<Chunk>> = chunks
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(Arc::new)
            .collect();
        let mut data = self.data.write();
        data.chunks = chunks;
        data.epoch += 1;
    }

    /// The current epoch (bumped on every atomic state change).
    pub fn epoch(&self) -> u64 {
        self.data.read().epoch
    }

    /// Total materialized rows.
    pub fn row_count(&self) -> usize {
        self.data.read().chunks.iter().map(|c| c.len()).sum()
    }
}

impl TableSource for ViewSource {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn num_partitions(&self) -> usize {
        1
    }

    fn scan(&self, partition: usize, projection: Option<&[usize]>) -> Result<ChunkIter> {
        // One snapshot of the chunk list under one read lock: the scan
        // never observes a half-applied delta, and later maintenance
        // does not disturb an in-flight read (chunks are shared `Arc`s).
        let chunks = if partition == 0 {
            self.data.read().chunks.clone()
        } else {
            Vec::new()
        };
        let projected: Vec<Chunk> = match projection {
            Some(idx) => {
                let idx = idx.to_vec();
                chunks.iter().map(|c| c.project(&idx)).collect()
            }
            None => chunks.iter().map(|c| (**c).clone()).collect(),
        };
        Ok(Box::new(projected.into_iter().map(Ok)))
    }

    fn statistics(&self) -> Statistics {
        let data = self.data.read();
        let rows = data.chunks.iter().map(|c| c.len()).sum();
        let bytes = data.chunks.iter().map(|c| c.byte_size()).sum();
        Statistics {
            row_count: Some(rows),
            byte_size: Some(bytes),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::{DataType, Value};

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]))
    }

    fn chunk(vals: &[i64]) -> Chunk {
        let rows: Vec<Vec<Value>> = vals.iter().map(|v| vec![Value::Int64(*v)]).collect();
        Chunk::from_rows(&schema(), &rows).unwrap()
    }

    #[test]
    fn epoch_bumps_on_every_atomic_change() {
        let s = ViewSource::new(schema());
        assert_eq!(s.epoch(), 0);
        s.append_chunk(chunk(&[1, 2]));
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.row_count(), 2);
        // Empty deltas are elided without an epoch bump.
        s.append_chunk(chunk(&[]));
        assert_eq!(s.epoch(), 1);
        s.replace(vec![chunk(&[7])]);
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.row_count(), 1);
    }

    #[test]
    fn long_append_streams_compact_into_few_chunks() {
        let s = ViewSource::new(schema());
        for i in 0..10 * super::COMPACT_THRESHOLD {
            s.append_chunk(chunk(&[i as i64]));
        }
        assert_eq!(s.row_count(), 10 * super::COMPACT_THRESHOLD);
        let chunks = s.data.read().chunks.len();
        assert!(chunks < super::COMPACT_THRESHOLD, "{chunks} chunks");
        // Compaction preserves order and content.
        let scanned: Vec<Chunk> = s.scan(0, None).unwrap().collect::<Result<_>>().unwrap();
        let all = Chunk::concat(&scanned).unwrap();
        assert_eq!(all.len(), 10 * super::COMPACT_THRESHOLD);
        assert_eq!(all.value_at(0, 0), idf_engine::types::Value::Int64(0));
        assert_eq!(
            all.value_at(0, all.len() - 1),
            idf_engine::types::Value::Int64(10 * super::COMPACT_THRESHOLD as i64 - 1)
        );
    }

    #[test]
    fn scan_is_a_consistent_snapshot() {
        let s = ViewSource::new(schema());
        s.append_chunk(chunk(&[1, 2, 3]));
        let iter = s.scan(0, None).unwrap();
        // Mutate after the scan started: the iterator keeps its snapshot.
        s.replace(vec![chunk(&[9])]);
        let rows: usize = iter.map(|c| c.unwrap().len()).sum();
        assert_eq!(rows, 3);
        assert_eq!(s.row_count(), 1);
    }
}
