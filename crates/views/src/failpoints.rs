//! Named fault-injection sites in the view-maintenance layer.
//!
//! Same contract as the storage-, durability- and service-layer
//! registries (`crates/core/src/failpoints.rs`, …): each constant names
//! an `idf_fail::eval` site, every constant is registered exactly once in
//! [`SITES`], and the view chaos suite iterates the table asserting that
//! a fault at any site never loses or double-applies a delta — view
//! contents stay equal to re-running the defining query.

use idf_engine::error::{EngineError, Result};

/// Head of one delta application to one view, *before* any view state is
/// mutated: a fault here is retried by the maintenance loop, so an
/// injected storm delays convergence but never corrupts the view.
pub const MAINTAIN_APPLY: &str = "views::maintain::apply";

/// Head of a full `REFRESH MATERIALIZED VIEW` recompute, *before* the
/// rebuilt state is swapped in: a fault here fails the statement with a
/// typed error and leaves the previous materialized state untouched.
pub const REFRESH: &str = "views::refresh";

/// Every registered view-layer site, for chaos suites to iterate.
pub const SITES: &[&str] = &[MAINTAIN_APPLY, REFRESH];

/// Evaluate the failpoint at `site`, mapping an injected fault into a
/// typed execution error that names the site.
#[inline]
pub fn check(site: &str) -> Result<()> {
    idf_fail::eval(site)
        .map_err(|msg| EngineError::exec(format!("injected failure at {site}: {msg}")))
}
