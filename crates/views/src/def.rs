//! View classification: which defining queries the incremental
//! maintenance engine supports, and the per-operator delta rules each
//! class uses (DESIGN.md §13).
//!
//! Three classes are maintainable from an append-only stream:
//!
//! * **Filter/project** — ΔV = π(σ(ΔT)): the delta chunk runs through
//!   the defining query and the output appends to the view.
//! * **Aggregate** — Δ-partials of the delta chunk merge into persistent
//!   per-group accumulators (count/sum/min/max are monotone under
//!   append-only input; avg maintains sum+count).
//! * **Two-table inner equi-join** — ΔA ⋈ B ∪ A ⋈ ΔB: each side's delta
//!   probes the *other* side's arrangement (an [`IndexedTable`] keyed on
//!   the join column), then joins the arrangement of its own side.
//!
//! Everything else (DISTINCT, ORDER BY/LIMIT, HAVING, subqueries, outer
//! joins, self-joins, >2-way joins) is rejected at `CREATE` with a typed
//! `Unsupported` error — the monotone classes above are exactly the ones
//! whose delta application commutes with append order, which is what
//! makes exactly-once maintenance possible without retractions.

use std::sync::Arc;

use idf_core::source::IndexedSource;
use idf_core::table::IndexedTable;
use idf_engine::error::{EngineError, Result};
use idf_engine::expr::BinaryOp;
use idf_engine::logical::JoinType;
use idf_engine::schema::SchemaRef;
use idf_engine::session::Session;
use idf_engine::sql::parser::{SelectItem, SqlExpr, TableRef};
use idf_engine::sql::SelectStmt;

/// One resolved base table of a view.
pub(crate) struct BaseInfo {
    /// Catalog name the base is registered under.
    pub name: String,
    /// Alias in the defining query, if any.
    pub alias: Option<String>,
    /// The live indexed table behind the catalog source.
    pub table: Arc<IndexedTable>,
    /// Unqualified base schema.
    pub schema: SchemaRef,
}

/// Which accumulator one aggregate select-item maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccKind {
    /// `count(*)` / `count(e)` — one partial column.
    Count,
    /// `sum(e)` — one partial column.
    Sum,
    /// `min(e)` — one partial column.
    Min,
    /// `max(e)` — one partial column.
    Max,
    /// `avg(e)` — maintained as sum+count, two partial columns.
    Avg,
}

/// One output column of an aggregate view.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OutCol {
    /// The i-th GROUP BY expression.
    Group(usize),
    /// The j-th aggregate accumulator.
    Agg(usize),
}

/// Delta-rule plan for an aggregate view.
pub(crate) struct AggDef {
    /// `SELECT g…, partial-aggs… FROM base [WHERE …] GROUP BY g…` — run
    /// over a delta chunk to produce partials, merged into the group map.
    pub partial_stmt: SelectStmt,
    /// Number of group columns at the head of a partial row.
    pub n_groups: usize,
    /// Accumulator kinds, in select-list order.
    pub accs: Vec<AccKind>,
    /// How to rebuild one output row from group values + accumulators.
    pub template: Vec<OutCol>,
}

/// A classified view definition.
pub(crate) enum ViewKind {
    /// π(σ(T)) over one base table.
    FilterProject {
        /// The base table.
        base: BaseInfo,
    },
    /// γ(σ(T)) over one base table.
    Aggregate {
        /// The base table.
        base: BaseInfo,
        /// The delta-rule plan (boxed: much larger than the other variants).
        agg: Box<AggDef>,
    },
    /// A ⋈ B on one equality, with optional filter/projection on top.
    Join {
        /// FROM side.
        left: BaseInfo,
        /// JOIN side.
        right: BaseInfo,
        /// Join column index into `left.schema`.
        left_key: usize,
        /// Join column index into `right.schema`.
        right_key: usize,
    },
}

impl ViewKind {
    /// Catalog names of every base table, FROM side first.
    pub fn base_names(&self) -> Vec<String> {
        match self {
            ViewKind::FilterProject { base } | ViewKind::Aggregate { base, .. } => {
                vec![base.name.clone()]
            }
            ViewKind::Join { left, right, .. } => vec![left.name.clone(), right.name.clone()],
        }
    }
}

fn unsupported(msg: impl Into<String>) -> EngineError {
    EngineError::Unsupported(format!("materialized view: {}", msg.into()))
}

/// Resolve a named FROM/JOIN relation to its live indexed base table.
fn resolve_base(session: &Session, table_ref: &TableRef) -> Result<BaseInfo> {
    let (name, alias) = match table_ref {
        TableRef::Named { name, alias } => (name.clone(), alias.clone()),
        TableRef::Subquery { .. } => {
            return Err(unsupported("subqueries in FROM are not supported"))
        }
    };
    let source = session.catalog().get(&name)?;
    let indexed = source
        .as_any()
        .downcast_ref::<IndexedSource>()
        .filter(|s| !s.is_frozen())
        .ok_or_else(|| {
            unsupported(format!(
                "base table '{name}' must be a live indexed table (register it through the \
                 Indexed DataFrame API or indexed DDL)"
            ))
        })?;
    let table = Arc::clone(indexed.table());
    let schema = table.schema();
    Ok(BaseInfo {
        name,
        alias,
        table,
        schema,
    })
}

/// Does `expr` contain any function call? The grammar's only functions
/// are aggregates, so this doubles as an aggregate detector.
fn contains_func(expr: &SqlExpr) -> bool {
    match expr {
        SqlExpr::Func { .. } => true,
        SqlExpr::Column { .. }
        | SqlExpr::Int(_)
        | SqlExpr::Float(_)
        | SqlExpr::Str(_)
        | SqlExpr::Bool(_)
        | SqlExpr::Null => false,
        SqlExpr::Binary { left, right, .. } => contains_func(left) || contains_func(right),
        SqlExpr::Not(e) | SqlExpr::IsNull { expr: e, .. } | SqlExpr::Cast { expr: e, .. } => {
            contains_func(e)
        }
        SqlExpr::InList { expr, list, .. } => contains_func(expr) || list.iter().any(contains_func),
        SqlExpr::Like { expr, .. } => contains_func(expr),
        SqlExpr::Between {
            expr, low, high, ..
        } => contains_func(expr) || contains_func(low) || contains_func(high),
    }
}

/// Classify `stmt` into a maintainable view kind, or reject with a typed
/// `Unsupported` error naming the offending construct.
pub(crate) fn classify(session: &Session, stmt: &SelectStmt) -> Result<ViewKind> {
    if stmt.distinct {
        return Err(unsupported("SELECT DISTINCT is not supported"));
    }
    if !stmt.order_by.is_empty() || stmt.limit.is_some() {
        return Err(unsupported(
            "ORDER BY / LIMIT are not supported (order at query time instead)",
        ));
    }
    if stmt.having.is_some() {
        return Err(unsupported("HAVING is not supported"));
    }
    if let Some(sel) = &stmt.selection {
        if contains_func(sel) {
            return Err(unsupported("aggregates in WHERE are not supported"));
        }
    }
    if stmt.joins.len() > 1 {
        return Err(unsupported("at most one JOIN is supported"));
    }

    let base = resolve_base(session, &stmt.from)?;

    if let Some(join) = stmt.joins.first() {
        return classify_join(session, stmt, base, join);
    }

    let has_agg = !stmt.group_by.is_empty()
        || stmt.projection.iter().any(|item| match item {
            SelectItem::Wildcard => false,
            SelectItem::Expr { expr, .. } => contains_func(expr),
        });
    if has_agg {
        let agg = Box::new(plan_aggregate(stmt)?);
        Ok(ViewKind::Aggregate { base, agg })
    } else {
        Ok(ViewKind::FilterProject { base })
    }
}

fn classify_join(
    session: &Session,
    stmt: &SelectStmt,
    left: BaseInfo,
    join: &idf_engine::sql::parser::JoinClause,
) -> Result<ViewKind> {
    if join.join_type != JoinType::Inner {
        return Err(unsupported("only INNER JOIN is supported"));
    }
    if !stmt.group_by.is_empty() {
        return Err(unsupported("GROUP BY over a join is not supported"));
    }
    for item in &stmt.projection {
        if let SelectItem::Expr { expr, .. } = item {
            if contains_func(expr) {
                return Err(unsupported("aggregates over a join are not supported"));
            }
        }
    }
    let right = resolve_base(session, &join.table)?;
    if left.name == right.name {
        return Err(unsupported("self-joins are not supported"));
    }
    let SqlExpr::Binary {
        left: on_l,
        op: BinaryOp::Eq,
        right: on_r,
    } = &join.on
    else {
        return Err(unsupported(
            "the join condition must be a single column equality (a.x = b.y)",
        ));
    };
    let (
        SqlExpr::Column {
            qualifier: ql,
            name: nl,
        },
        SqlExpr::Column {
            qualifier: qr,
            name: nr,
        },
    ) = (on_l.as_ref(), on_r.as_ref())
    else {
        return Err(unsupported(
            "the join condition must be a single column equality (a.x = b.y)",
        ));
    };
    let a = resolve_join_col(&left, &right, ql.as_deref(), nl)?;
    let b = resolve_join_col(&left, &right, qr.as_deref(), nr)?;
    let (left_key, right_key) = match (a, b) {
        ((Side::Left, lk), (Side::Right, rk)) | ((Side::Right, rk), (Side::Left, lk)) => (lk, rk),
        _ => {
            return Err(unsupported(
                "the join condition must compare one column from each side",
            ))
        }
    };
    let _ = session;
    Ok(ViewKind::Join {
        left,
        right,
        left_key,
        right_key,
    })
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Side {
    Left,
    Right,
}

/// Resolve one ON-clause column to (side, column index).
fn resolve_join_col(
    left: &BaseInfo,
    right: &BaseInfo,
    qualifier: Option<&str>,
    name: &str,
) -> Result<(Side, usize)> {
    let matches_side = |b: &BaseInfo, q: &str| q == b.alias.as_deref().unwrap_or(&b.name);
    match qualifier {
        Some(q) if matches_side(left, q) => Ok((Side::Left, left.schema.index_of(None, name)?)),
        Some(q) if matches_side(right, q) => Ok((Side::Right, right.schema.index_of(None, name)?)),
        Some(q) => Err(EngineError::ColumnNotFound(format!("{q}.{name}"))),
        None => {
            let l = left.schema.index_of(None, name).ok();
            let r = right.schema.index_of(None, name).ok();
            match (l, r) {
                (Some(i), None) => Ok((Side::Left, i)),
                (None, Some(i)) => Ok((Side::Right, i)),
                (Some(_), Some(_)) => Err(EngineError::ColumnNotFound(format!(
                    "join column '{name}' is ambiguous; qualify it"
                ))),
                (None, None) => Err(EngineError::ColumnNotFound(name.to_string())),
            }
        }
    }
}

/// Build the delta-rule plan for an aggregate view: the partial query,
/// the accumulator list, and the output-row template.
fn plan_aggregate(stmt: &SelectStmt) -> Result<AggDef> {
    let n_groups = stmt.group_by.len();
    let mut partial_projection: Vec<SelectItem> = stmt
        .group_by
        .iter()
        .enumerate()
        .map(|(i, g)| SelectItem::Expr {
            expr: g.clone(),
            alias: Some(format!("g{i}")),
        })
        .collect();
    let mut accs = Vec::new();
    let mut template = Vec::new();
    for item in &stmt.projection {
        let SelectItem::Expr { expr, .. } = item else {
            return Err(unsupported("SELECT * with aggregation is not supported"));
        };
        if let SqlExpr::Func { name, args, star } = expr {
            let j = accs.len();
            let kind = match name.as_str() {
                "count" => AccKind::Count,
                "sum" => AccKind::Sum,
                "min" => AccKind::Min,
                "max" => AccKind::Max,
                "avg" => AccKind::Avg,
                other => return Err(unsupported(format!("aggregate '{other}' is not supported"))),
            };
            if !star {
                let arg = args
                    .first()
                    .ok_or_else(|| unsupported(format!("{name} needs an argument")))?;
                if contains_func(arg) {
                    return Err(unsupported("nested aggregates are not supported"));
                }
            }
            match kind {
                AccKind::Avg => {
                    // avg is maintained as sum+count: two partial columns.
                    partial_projection.push(SelectItem::Expr {
                        expr: SqlExpr::Func {
                            name: "sum".to_string(),
                            args: args.clone(),
                            star: false,
                        },
                        alias: Some(format!("a{j}s")),
                    });
                    partial_projection.push(SelectItem::Expr {
                        expr: SqlExpr::Func {
                            name: "count".to_string(),
                            args: args.clone(),
                            star: false,
                        },
                        alias: Some(format!("a{j}c")),
                    });
                }
                _ => partial_projection.push(SelectItem::Expr {
                    expr: expr.clone(),
                    alias: Some(format!("a{j}")),
                }),
            }
            accs.push(kind);
            template.push(OutCol::Agg(j));
        } else {
            if contains_func(expr) {
                return Err(unsupported(
                    "expressions over aggregates are not supported; select the aggregate directly",
                ));
            }
            let i = stmt
                .group_by
                .iter()
                .position(|g| g == expr)
                .ok_or_else(|| unsupported("non-aggregate select items must appear in GROUP BY"))?;
            template.push(OutCol::Group(i));
        }
    }
    let partial_stmt = SelectStmt {
        distinct: false,
        projection: partial_projection,
        from: stmt.from.clone(),
        joins: Vec::new(),
        selection: stmt.selection.clone(),
        group_by: stmt.group_by.clone(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    };
    Ok(AggDef {
        partial_stmt,
        n_groups,
        accs,
        template,
    })
}
