//! Incremental materialized views over the update stream (`idf-views`).
//!
//! The paper's premise is low-latency queries over *updatable* data:
//! appends stream in continuously and queries read an indexed,
//! snapshot-consistent state. This crate closes the loop for repeated
//! queries — `CREATE MATERIALIZED VIEW <name> AS <select>` materializes
//! a defining query once and then maintains it **incrementally** from
//! the append path, so reading the view is a scan of pre-computed state
//! instead of a re-execution:
//!
//! * **Delta capture** hooks the two-phase commit seam
//!   ([`idf_core::sink::AppendSink`]): each committed chunk becomes a
//!   delta on a bounded queue (backpressure into the append path).
//! * **Delta rules**: filter/project views append π(σ(Δ)); aggregate
//!   views merge Δ-partials into persistent per-group accumulators;
//!   join views probe the other side's shared arrangement
//!   (ΔA ⋈ B ∪ A ⋈ ΔB). All three are monotone under append-only
//!   input, which is what makes exactly-once maintenance possible
//!   without retractions.
//! * **Consistency**: every state change is an atomic epoch-bumped swap
//!   ([`state::ViewSource`]); a reader observes all of a delta or none
//!   of it. Creation and refresh gate the base tables and quiesce
//!   in-flight commits so the seed snapshot lines up exactly with the
//!   delta stream.
//! * **Planning**: the view registers in the session catalog, so
//!   `SELECT … FROM <view>` plans through the normal physical layer —
//!   EXPLAIN, the memory governor, cancellation and the service layer
//!   all work unchanged.
//!
//! Maintenance runs [`MaintenanceMode::Sync`] (applied before the append
//! returns) or [`MaintenanceMode::Async`] (a bounded background worker),
//! mirroring the durability layer's sync/async split.
//!
//! ```
//! use idf_engine::session::Session;
//! use idf_core::prelude::*;
//!
//! let session = Session::new();
//! install_indexed_ddl(&session, IndexConfig::default());
//! let _views = idf_views::install(&session, idf_views::ViewsConfig::default());
//!
//! session.sql("CREATE TABLE t (k BIGINT, v BIGINT)").unwrap().collect().unwrap();
//! session.sql("CREATE MATERIALIZED VIEW big AS SELECT k, v FROM t WHERE v > 10")
//!     .unwrap().collect().unwrap();
//! session.sql("INSERT INTO t VALUES (1, 5), (2, 50)").unwrap().collect().unwrap();
//! let rows = session.sql("SELECT k FROM big").unwrap().collect().unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod failpoints;
pub mod state;

mod def;
mod maintain;

pub use maintain::LOCK_ORDER;

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use idf_engine::error::Result;
use idf_engine::session::{Session, ViewsHook};
use idf_engine::sql::SelectStmt;

/// When delta application runs relative to the append that produced it
/// (mirrors the durability layer's `DurabilityLevel` split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Apply the delta on the appending thread before the append call
    /// returns: a subsequent view read on the same thread always sees
    /// the append.
    Sync,
    /// Queue the delta for a bounded background worker: appends return
    /// sooner, view reads may lag by the queue depth (the lag is
    /// recorded in the `idf_views_maintenance_lag_ns` histogram).
    Async,
}

/// Configuration for [`install`].
#[derive(Debug, Clone)]
pub struct ViewsConfig {
    /// Sync or async maintenance (default sync).
    pub mode: MaintenanceMode,
    /// Bounded delta-queue capacity; a full queue blocks the append path
    /// (backpressure). Default 64.
    pub queue_capacity: usize,
}

impl Default for ViewsConfig {
    fn default() -> Self {
        ViewsConfig {
            mode: MaintenanceMode::Sync,
            queue_capacity: 64,
        }
    }
}

/// The installed views subsystem. Returned by [`install`]; the session
/// holds it through its hook slot, so it lives as long as the session
/// (or any user clone). Dropping the last handle shuts the maintenance
/// worker down and degrades the append-path taps to no-ops.
pub struct ViewsSystem {
    shared: Arc<maintain::Shared>,
    worker: Option<JoinHandle<()>>,
}

impl ViewsSystem {
    fn start(config: ViewsConfig) -> Arc<ViewsSystem> {
        let mut config = config;
        config.queue_capacity = config.queue_capacity.max(1);
        let mode = config.mode;
        let shared = maintain::Shared::new(config);
        let worker = (mode == MaintenanceMode::Async).then(|| {
            let worker_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("idf-views-maint".to_string())
                .spawn(move || worker_shared.worker_loop())
                .expect("spawn view-maintenance worker")
        });
        Arc::new(ViewsSystem { shared, worker })
    }

    /// Block until every queued delta is applied. Async-mode callers use
    /// this to observe a maintenance-quiescent state (tests, benches);
    /// in sync mode it returns immediately once the queue is empty.
    pub fn wait_idle(&self) {
        self.shared.drain_pending(true);
    }

    /// Names of views whose maintenance was poisoned and now serve their
    /// last consistent state until a `REFRESH MATERIALIZED VIEW`.
    pub fn stale_views(&self) -> Vec<String> {
        self.shared.stale_views()
    }
}

impl Drop for ViewsSystem {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify_shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl ViewsHook for ViewsSystem {
    fn create_view(&self, session: &Session, name: &str, query: &SelectStmt) -> Result<()> {
        self.shared.create_view(session, name, query)
    }

    fn drop_view(&self, session: &Session, name: &str) -> Result<()> {
        self.shared.drop_view(session, name)
    }

    fn refresh_view(&self, session: &Session, name: &str) -> Result<()> {
        self.shared.refresh_view(session, name)
    }
}

/// Install the materialized-view subsystem on `session`: from then on
/// `CREATE/DROP/REFRESH MATERIALIZED VIEW` dispatch here, and committed
/// appends to base tables with views are captured as maintenance deltas.
pub fn install(session: &Session, config: ViewsConfig) -> Arc<ViewsSystem> {
    let system = ViewsSystem::start(config);
    session.set_views_hook(Arc::clone(&system) as Arc<dyn ViewsHook>);
    system
}
