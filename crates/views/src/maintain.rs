//! Incremental maintenance: delta capture at the commit point, the
//! bounded maintenance queue, the gate/quiesce protocol that makes view
//! creation and refresh snapshot-consistent, and the per-operator delta
//! application rules (DESIGN.md §13).
//!
//! # Delta capture
//!
//! Each base table gets one [`TapState`] whose [`DeltaTap`] is composed
//! onto the table's append sink (after the WAL, so a rejected commit is
//! never observed). The tap captures the committed row payloads at the
//! commit point and, when the append publishes to memory, enqueues them
//! as one [`Delta`] on a bounded queue — a full queue blocks the append
//! path, which is the backpressure policy. One tap serves every view
//! over the table: a single delta pass fans out to all maintainers.
//!
//! # Consistent seeding (gates + quiesce)
//!
//! `CREATE`/`REFRESH` must compute a base snapshot that lines up exactly
//! with the delta stream: every commit is either in the snapshot or will
//! arrive as a delta, never both, never neither. The protocol:
//!
//! 1. close the gates of every base table (new commits park at the gate);
//! 2. quiesce: drain the queue and wait until each gate shows
//!    `inflight == 0` (every tap-captured commit has enqueued) and
//!    `commit_window() == waiting` (every append inside the table's
//!    commit window is one parked at our gate — this waits out commits
//!    that raced the tap install and would otherwise publish unseen);
//! 3. seed from the now-stable base, register the view, reopen.
//!
//! Gates close in sorted name order, and all DDL serializes on the
//! apply lock, so two concurrent creates cannot deadlock.
//!
//! # Exactly-once application
//!
//! The failpoint check and the delta-output computation run *before* any
//! view state is mutated, so a fault there is retried without
//! double-applying. Mutations themselves are infallible in-memory swaps
//! (`ViewSource::append_chunk`/`replace`, group-map replacement) — the
//! only fallible mutation is an arrangement append, whose failure marks
//! the arrangement (and its dependent views) stale rather than retrying;
//! `REFRESH` rebuilds stale state from the base.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, TryLockError, Weak};
use std::time::Instant;

use idf_core::config::IndexConfig;
use idf_core::sink::{AppendSink, CommitGuard, NoopCommitGuard, RowKind};
use idf_core::source::IndexedSource;
use idf_core::strategy::IndexedJoinStrategy;
use idf_core::table::IndexedTable;
use idf_engine::catalog::{MemTable, TableSource};
use idf_engine::chunk::Chunk;
use idf_engine::error::{catch_panics, EngineError, Result};
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::session::Session;
use idf_engine::sql::{binder, SelectStmt};
use idf_engine::types::{DataType, Value};

/// Crate-wide lock-acquisition order, enforced by idf-lint's
/// `lock-order` rule: a lock may only be acquired while holding locks
/// that appear strictly earlier in this list.
pub const LOCK_ORDER: &[(&str, &str)] = &[
    (
        "apply_lock",
        "DDL/apply serialization; the outermost lock of every view operation",
    ),
    (
        "views",
        "view registry; read under apply_lock by DDL, on its own by readers",
    ),
    (
        "maint",
        "per-view maintenance state; taken by recompute while DDL holds apply_lock",
    ),
    (
        "queue",
        "delta queue; drained under apply_lock, on its own by enqueue/pop",
    ),
    (
        "taps",
        "tap registry; consulted while wiring gates under apply_lock",
    ),
    (
        "gate",
        "per-tap capture gate; closed under apply_lock during DDL",
    ),
    (
        "arrangements",
        "shared arrangement registry; swept last, after maint decides reuse",
    ),
];

use crate::def::{classify, AccKind, AggDef, OutCol, ViewKind};
use crate::state::ViewSource;
use crate::{failpoints, MaintenanceMode, ViewsConfig};

/// Retry budget for retryable (pre-mutation) apply faults before the
/// view is declared stale. High enough to ride out any seeded fault
/// storm the chaos suite configures.
const MAX_APPLY_RETRIES: usize = 10_000;

/// Lock a std mutex, recovering the guard if a panicking holder poisoned
/// it (injected panics unwind through these locks under chaos).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One committed append, captured at the commit point.
struct Delta {
    /// Catalog name of the base table the commit landed on.
    table: String,
    /// Encoded row payloads, in publish order. Empty for DML barriers.
    payloads: Vec<Vec<u8>>,
    /// Commit time, for the maintenance-lag histogram (`Some` only when
    /// the `obs` feature is compiled in).
    created: Option<Instant>,
    /// A tombstone-carrying DML statement committed on the table. Its
    /// effect cannot be replayed as an append-only delta, so instead of
    /// payloads to apply this delta is a barrier: every dependent view
    /// (and every arrangement over the table) goes stale, and `REFRESH`
    /// rebuilds from the post-DML base. Riding the ordinary queue keeps
    /// the gate/quiesce accounting exact — a seed either predates the
    /// DML commit or sees its staleness, never a half-applied mix.
    dml: bool,
}

/// Gate state of one base table's tap.
struct Gate {
    /// Closed while a CREATE/REFRESH over this table seeds; new commits
    /// park at the gate until it reopens.
    closed: bool,
    /// Commits the tap has captured whose append has not yet published
    /// (their deltas may not be enqueued yet).
    inflight: usize,
    /// Appends currently parked at the closed gate. Each holds the
    /// table's commit window, so quiesce compares `commit_window()`
    /// against this count.
    waiting: usize,
}

/// Per-base-table delta-capture state, shared by every view over the
/// table.
struct TapState {
    /// Catalog name of the base table.
    name: String,
    /// The base table itself (payload decode, commit-window polling).
    table: Arc<IndexedTable>,
    /// Gate state.
    gate: Mutex<Gate>,
    /// Signals gate reopen (parked appenders) and inflight changes
    /// (quiesce pollers).
    cv: Condvar,
    /// Number of registered views over this table. Zero means the tap
    /// fast-paths to a no-op guard and captures nothing.
    active_views: AtomicUsize,
}

/// The append-sink tap installed on a base table. Holds the shared state
/// weakly so a dropped views subsystem degrades to a no-op tap instead
/// of keeping the whole machinery alive.
struct DeltaTap {
    tap: Arc<TapState>,
    shared: Weak<Shared>,
}

impl AppendSink for DeltaTap {
    fn begin_commit(&self, rows: &[&[u8]]) -> Result<Box<dyn CommitGuard>> {
        self.capture(rows, false)
    }

    /// Kind-aware capture. An all-`Data` statement is an ordinary append
    /// delta; a tombstone-carrying UPDATE/DELETE commit is captured as a
    /// DML barrier instead (see [`Delta::dml`]) — append-only delta rules
    /// cannot retract rows, so dependent views go stale rather than
    /// silently double-applying survivor re-appends.
    fn begin_commit_kinds(
        &self,
        rows: &[&[u8]],
        kinds: &[RowKind],
    ) -> Result<Box<dyn CommitGuard>> {
        self.capture(rows, kinds.contains(&RowKind::Tombstone))
    }
}

impl DeltaTap {
    /// Shared capture path: park at the gate, count the commit in-flight,
    /// and hand back the guard whose drop enqueues the delta.
    fn capture(&self, rows: &[&[u8]], dml: bool) -> Result<Box<dyn CommitGuard>> {
        let Some(shared) = self.shared.upgrade() else {
            return Ok(Box::new(NoopCommitGuard));
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(Box::new(NoopCommitGuard));
        }
        let mut gate = lock(&self.tap.gate);
        while gate.closed {
            gate.waiting += 1;
            gate = self
                .tap
                .cv
                .wait(gate)
                .unwrap_or_else(PoisonError::into_inner);
            gate.waiting -= 1;
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(Box::new(NoopCommitGuard));
            }
        }
        // Checked under the gate lock so it serializes against a CREATE
        // (which closes the gate before registering): either this commit
        // sees the view and captures a delta, or it predates the gate
        // close and the seed waits it out via the commit window.
        if self.tap.active_views.load(Ordering::SeqCst) == 0 {
            return Ok(Box::new(NoopCommitGuard));
        }
        gate.inflight += 1;
        drop(gate);
        let created = idf_obs::enabled().then(Instant::now);
        Ok(Box::new(TapGuard {
            tap: Arc::clone(&self.tap),
            shared,
            // A DML barrier carries no payloads — nothing is applied,
            // only staleness is propagated.
            payloads: if dml {
                Vec::new()
            } else {
                rows.iter().map(|r| r.to_vec()).collect()
            },
            created,
            dml,
        }))
    }
}

/// In-flight commit marker: dropped by the append path once the rows are
/// published to memory, at which point the delta is enqueued (so a
/// quiesced seed never misses a published commit).
struct TapGuard {
    tap: Arc<TapState>,
    shared: Arc<Shared>,
    payloads: Vec<Vec<u8>>,
    created: Option<Instant>,
    /// Tombstone-carrying commit: enqueue a staleness barrier, not rows.
    dml: bool,
}

impl CommitGuard for TapGuard {}

impl Drop for TapGuard {
    fn drop(&mut self) {
        // Enqueue BEFORE decrementing inflight: once a quiescer observes
        // `inflight == 0`, every captured commit's delta is in the queue.
        self.shared.enqueue(Delta {
            table: self.tap.name.clone(),
            payloads: std::mem::take(&mut self.payloads),
            created: self.created.take(),
            dml: self.dml,
        });
        {
            let mut gate = lock(&self.tap.gate);
            gate.inflight -= 1;
        }
        // idf-lint: allow(condvar-discipline) -- inflight was decremented under 'gate' in the scope above; notify-after-unlock
        self.tap.cv.notify_all();
        if self.shared.config.mode == MaintenanceMode::Sync {
            // Non-blocking drain: if DDL (or another drainer) holds the
            // apply lock it will drain the whole queue itself before
            // releasing, and every drainer re-checks the queue after
            // releasing, so no delta is ever stranded.
            self.shared.drain_pending(false);
        }
    }
}

/// A keyed copy of one base table, shared by every join view that probes
/// the table on the same key (one arrangement per `(table, key)`).
struct Arrangement {
    /// The indexed copy, keyed on the join column.
    table: Arc<IndexedTable>,
    /// Set when a delta append into the arrangement failed partway — its
    /// contents can no longer be trusted and dependent views go stale.
    stale: AtomicBool,
}

/// Per-view maintenance state, guarded by the view's `maint` mutex.
enum Maint {
    /// π(σ(T)): a private session the delta chunk is bound in.
    FilterProject {
        /// Private binding session (base name → delta chunk).
        sess: Session,
    },
    /// γ(σ(T)): persistent per-group accumulators.
    Aggregate {
        /// Private binding session for the partial query over a delta.
        sess: Session,
        /// Group key → accumulators. A `BTreeMap` so rebuilds are
        /// deterministic.
        groups: BTreeMap<Vec<Value>, Vec<Acc>>,
    },
    /// A ⋈ B: private session with the indexed-join strategy, probing
    /// the other side's arrangement with each delta.
    Join {
        /// Private binding session (delta side → chunk, probe side →
        /// arrangement).
        sess: Session,
        /// Arrangement of the FROM side.
        left: Arc<Arrangement>,
        /// Arrangement of the JOIN side.
        right: Arc<Arrangement>,
    },
}

/// One accumulator of one group of an aggregate view.
#[derive(Clone)]
enum Acc {
    /// Running count.
    Count(i64),
    /// Running sum (`Null` until the first non-null input).
    Sum(Value),
    /// Running minimum (nulls skipped).
    Min(Value),
    /// Running maximum (nulls skipped).
    Max(Value),
    /// avg as sum + count.
    Avg {
        /// Running sum.
        sum: Value,
        /// Count of non-null inputs.
        count: i64,
    },
}

/// One registered materialized view.
struct ViewEntry {
    /// View name (catalog registration).
    name: String,
    /// The defining query.
    stmt: SelectStmt,
    /// Classification + delta plan.
    kind: ViewKind,
    /// Output schema (qualifiers stripped).
    out_schema: SchemaRef,
    /// The materialized state registered in the catalog.
    source: Arc<ViewSource>,
    /// Maintenance state.
    maint: Mutex<Maint>,
    /// Set when maintenance can no longer keep the view consistent
    /// (exhausted retries, poisoned arrangement). The view still serves
    /// its last good state; `REFRESH` clears the flag.
    stale: AtomicBool,
}

/// State shared by the hook, the taps, and the maintenance worker.
pub(crate) struct Shared {
    config: ViewsConfig,
    /// Handed to taps so they can reach the queue without a cycle.
    self_weak: Weak<Shared>,
    /// Serializes all delta application and all view DDL. Sync-mode
    /// drains take it with `try_lock` (never block the append path);
    /// the worker and DDL take it blocking.
    apply_lock: Mutex<()>,
    /// Bounded delta queue; a full queue blocks the append path
    /// (backpressure).
    queue: Mutex<VecDeque<Delta>>,
    /// Signals consumers (the async worker) that a delta arrived.
    queue_cv: Condvar,
    /// Signals producers that queue space freed up.
    space_cv: Condvar,
    /// Registered views by name.
    views: parking_lot::RwLock<HashMap<String, Arc<ViewEntry>>>,
    /// One tap per base table.
    taps: Mutex<HashMap<String, Arc<TapState>>>,
    /// Shared join arrangements by `(table, key column)`.
    arrangements: Mutex<HashMap<(String, usize), Arc<Arrangement>>>,
    /// Set on drop of the owning system; taps degrade to no-ops.
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    /// Build the shared state (cyclically, so taps can hold it weakly).
    pub(crate) fn new(config: ViewsConfig) -> Arc<Shared> {
        Arc::new_cyclic(|w| Shared {
            config,
            self_weak: w.clone(),
            apply_lock: Mutex::new(()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            space_cv: Condvar::new(),
            views: parking_lot::RwLock::new(HashMap::new()),
            taps: Mutex::new(HashMap::new()),
            arrangements: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Wake every parked thread so shutdown can proceed.
    pub(crate) fn notify_shutdown(&self) {
        // idf-lint: allow(condvar-discipline) -- shutdown is a SeqCst flag; every waiter re-checks it inside its wait loop
        self.queue_cv.notify_all();
        // idf-lint: allow(condvar-discipline) -- shutdown is a SeqCst flag; every waiter re-checks it inside its wait loop
        self.space_cv.notify_all();
        for tap in lock(&self.taps).values() {
            tap.cv.notify_all();
        }
    }

    /// Names of views currently flagged stale.
    pub(crate) fn stale_views(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .views
            .read()
            .values()
            .filter(|e| e.stale.load(Ordering::SeqCst))
            .map(|e| e.name.clone())
            .collect();
        names.sort();
        names
    }

    /// Enqueue a delta, blocking while the queue is at capacity — this is
    /// the backpressure into the append path.
    fn enqueue(&self, delta: Delta) {
        let mut q = lock(&self.queue);
        while q.len() >= self.config.queue_capacity {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            q = self
                .space_cv
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
        q.push_back(delta);
        drop(q);
        // idf-lint: allow(condvar-discipline) -- queue length changed under 'queue' (dropped above); notify-after-unlock
        self.queue_cv.notify_all();
    }

    /// Pop one delta, signalling producers that space freed up.
    fn pop(&self) -> Option<Delta> {
        let delta = lock(&self.queue).pop_front();
        if delta.is_some() {
            // idf-lint: allow(condvar-discipline) -- pop_front ran under the temporary 'queue' guard above; notify-after-unlock
            self.space_cv.notify_all();
        }
        delta
    }

    /// Drain and apply every queued delta. `block` controls how the
    /// apply lock is taken: the worker blocks; sync-mode append-path
    /// drains use `try_lock` and bail if contended (the current holder
    /// drains the queue itself, and the post-release re-check below
    /// closes the race where a delta lands between its final pop and the
    /// lock release).
    pub(crate) fn drain_pending(&self, block: bool) {
        loop {
            {
                let _apply = if block {
                    lock(&self.apply_lock)
                } else {
                    match self.apply_lock.try_lock() {
                        Ok(g) => g,
                        Err(TryLockError::Poisoned(e)) => e.into_inner(),
                        Err(TryLockError::WouldBlock) => return,
                    }
                };
                while let Some(delta) = self.pop() {
                    self.apply_delta(&delta);
                }
            }
            if lock(&self.queue).is_empty() {
                return;
            }
        }
    }

    /// Async maintenance worker: sleep until deltas arrive, drain, repeat
    /// until shutdown with an empty queue.
    pub(crate) fn worker_loop(&self) {
        loop {
            {
                let mut q = lock(&self.queue);
                while q.is_empty() && !self.shutdown.load(Ordering::SeqCst) {
                    q = self
                        .queue_cv
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                if q.is_empty() {
                    return; // shutdown with nothing left to do
                }
            }
            self.drain_pending(true);
        }
    }

    // ------------------------------------------------------------------
    // Delta application (caller holds the apply lock).
    // ------------------------------------------------------------------

    /// Apply one delta: decode once, maintain every arrangement keyed on
    /// the table, then fan the delta out to every dependent view.
    fn apply_delta(&self, delta: &Delta) {
        let mut dependents: Vec<Arc<ViewEntry>> = self
            .views
            .read()
            .values()
            .filter(|e| e.kind.base_names().contains(&delta.table))
            .cloned()
            .collect();
        if dependents.is_empty() {
            return;
        }
        dependents.sort_by(|a, b| a.name.cmp(&b.name));
        if delta.dml {
            // A DML barrier: the statement's tombstones cannot be applied
            // as appends. Poison every arrangement over the table (its
            // mirror of the base has diverged) and flag each dependent
            // stale; REFRESH rebuilds both from the post-DML base.
            for ((table, _), arr) in lock(&self.arrangements).iter() {
                if *table == delta.table {
                    arr.stale.store(true, Ordering::SeqCst);
                }
            }
            for entry in &dependents {
                entry.stale.store(true, Ordering::SeqCst);
            }
            return;
        }
        let Some(tap) = lock(&self.taps).get(&delta.table).cloned() else {
            return;
        };
        let chunk = match decode_delta(&tap.table, &delta.payloads) {
            Ok(c) => c,
            Err(_) => {
                // A payload the base table itself produced failed to
                // decode — nothing sane can be applied; views over this
                // table must be rebuilt.
                for entry in &dependents {
                    entry.stale.store(true, Ordering::SeqCst);
                }
                return;
            }
        };
        if chunk.is_empty() {
            return;
        }
        // Maintain each shared arrangement exactly once per delta,
        // before any view output is computed (a view's delta output
        // probes the *other* side's arrangement, so this ordering cannot
        // double-count).
        for ((table, _), arr) in lock(&self.arrangements).iter() {
            if *table == delta.table
                && !arr.stale.load(Ordering::SeqCst)
                && arr.table.append_chunk(&chunk).is_err()
            {
                // A partial arrangement publish cannot be retried
                // without double-appending; poison it instead.
                arr.stale.store(true, Ordering::SeqCst);
            }
        }
        for entry in &dependents {
            if entry.stale.load(Ordering::SeqCst) {
                continue;
            }
            self.apply_to_view(entry, &delta.table, &chunk, delta.created);
        }
    }

    /// Apply one delta chunk to one view, retrying retryable faults and
    /// flagging the view stale on poison or retry exhaustion.
    fn apply_to_view(
        &self,
        entry: &Arc<ViewEntry>,
        table: &str,
        chunk: &Chunk,
        created: Option<Instant>,
    ) {
        let mut maint = lock(&entry.maint);
        for _ in 0..MAX_APPLY_RETRIES {
            match self.try_apply(entry, &mut maint, table, chunk) {
                Ok(()) => {
                    let metrics = idf_obs::global();
                    metrics.view_deltas_applied.inc();
                    if let Some(created) = created {
                        metrics
                            .view_maintenance_lag_ns
                            .record(created.elapsed().as_nanos() as u64);
                    }
                    return;
                }
                Err(ApplyError::Retryable(_)) => continue,
                Err(ApplyError::Poisoned(_)) => break,
            }
        }
        entry.stale.store(true, Ordering::SeqCst);
    }

    /// One application attempt. Everything fallible (the failpoint, the
    /// delta-output computation) runs before any mutation; the mutations
    /// themselves are infallible atomic swaps, so a `Retryable` error
    /// means no state changed and the attempt can simply run again.
    fn try_apply(
        &self,
        entry: &Arc<ViewEntry>,
        maint: &mut Maint,
        table: &str,
        chunk: &Chunk,
    ) -> std::result::Result<(), ApplyError> {
        catch_panics(|| failpoints::check(failpoints::MAINTAIN_APPLY))
            .map_err(ApplyError::Retryable)?;
        match maint {
            Maint::FilterProject { sess } => {
                let ViewKind::FilterProject { base } = &entry.kind else {
                    return Err(ApplyError::Poisoned(state_mismatch()));
                };
                let out = catch_panics(|| {
                    register_delta(sess, &base.name, &base.schema, chunk);
                    binder::bind(sess, &entry.stmt)?.collect()
                })
                .map_err(ApplyError::Retryable)?;
                entry.source.append_chunk(out);
                Ok(())
            }
            Maint::Aggregate { sess, groups } => {
                let ViewKind::Aggregate { base, agg } = &entry.kind else {
                    return Err(ApplyError::Poisoned(state_mismatch()));
                };
                // Merge into a CLONE of the group map and build the
                // output chunk from it; only then commit both. A failure
                // anywhere above the commit leaves the live map (and the
                // view) untouched, so retries cannot double-merge.
                let groups_ref: &BTreeMap<Vec<Value>, Vec<Acc>> = groups;
                let (merged, out) = catch_panics(|| {
                    register_delta(sess, &base.name, &base.schema, chunk);
                    let partial = binder::bind(sess, &agg.partial_stmt)?.collect()?;
                    let mut merged = groups_ref.clone();
                    merge_partials(&mut merged, &partial, agg.as_ref())?;
                    let rows = rebuild_rows(&merged, agg.as_ref(), &entry.out_schema)?;
                    let out = if rows.is_empty() {
                        None
                    } else {
                        Some(Chunk::from_rows(&entry.out_schema, &rows)?)
                    };
                    Ok((merged, out))
                })
                .map_err(ApplyError::Retryable)?;
                *groups = merged;
                entry.source.replace(out.into_iter().collect());
                Ok(())
            }
            Maint::Join { sess, left, right } => {
                let ViewKind::Join {
                    left: left_base,
                    right: right_base,
                    ..
                } = &entry.kind
                else {
                    return Err(ApplyError::Poisoned(state_mismatch()));
                };
                if left.stale.load(Ordering::SeqCst) || right.stale.load(Ordering::SeqCst) {
                    return Err(ApplyError::Poisoned(EngineError::exec(
                        "join arrangement poisoned",
                    )));
                }
                // ΔA ⋈ B ∪ A ⋈ ΔB, one side per delta: bind the delta
                // chunk under its own table name and the *other* side's
                // arrangement under its name, then run the defining
                // query — the indexed-join strategy probes the
                // arrangement with the delta rows.
                let (delta_base, probe_base, probe_arr) = if table == left_base.name {
                    (left_base, right_base, &*right)
                } else {
                    (right_base, left_base, &*left)
                };
                let out = catch_panics(|| {
                    register_delta(sess, &delta_base.name, &delta_base.schema, chunk);
                    sess.register_table(
                        &probe_base.name,
                        Arc::new(IndexedSource::live(Arc::clone(&probe_arr.table))),
                    );
                    binder::bind(sess, &entry.stmt)?.collect()
                })
                .map_err(ApplyError::Retryable)?;
                entry.source.append_chunk(out);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Gates and quiesce.
    // ------------------------------------------------------------------

    /// Get or install the tap of every base, sorted by table name.
    fn ensure_taps(&self, bases: &[(String, Arc<IndexedTable>)]) -> Vec<Arc<TapState>> {
        let mut taps = lock(&self.taps);
        let mut out: Vec<Arc<TapState>> = bases
            .iter()
            .map(|(name, table)| {
                Arc::clone(taps.entry(name.clone()).or_insert_with(|| {
                    let tap = Arc::new(TapState {
                        name: name.clone(),
                        table: Arc::clone(table),
                        gate: Mutex::new(Gate {
                            closed: false,
                            inflight: 0,
                            waiting: 0,
                        }),
                        cv: Condvar::new(),
                        active_views: AtomicUsize::new(0),
                    });
                    table.add_append_sink(Arc::new(DeltaTap {
                        tap: Arc::clone(&tap),
                        shared: self.self_weak.clone(),
                    }));
                    tap
                }))
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Wait (holding the apply lock) until every gated table is stable:
    /// the queue holds no gated delta, no captured commit is unpublished,
    /// and every append inside a gated table's commit window is parked at
    /// the gate itself. After this returns, a base read is an exact seed
    /// point for the delta stream.
    fn quiesce(&self, taps: &[Arc<TapState>]) {
        loop {
            // Drain unconditionally each round — a producer blocked on a
            // full queue may be holding `inflight`, so space must keep
            // freeing up for the gate counters to settle.
            while let Some(delta) = self.pop() {
                self.apply_delta(&delta);
            }
            let gates_ok = taps.iter().all(|t| {
                let gate = lock(&t.gate);
                gate.inflight == 0 && t.table.commit_window() == gate.waiting
            });
            if gates_ok {
                // With gates closed and inflight at zero no NEW gated
                // delta can ever be enqueued, so this check is stable.
                let queue = lock(&self.queue);
                let pending_gated = queue.iter().any(|d| taps.iter().any(|t| t.name == d.table));
                if !pending_gated {
                    return;
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Drop arrangements no longer referenced by any view (the registry
    /// holds the only remaining `Arc`).
    fn sweep_arrangements(&self) {
        lock(&self.arrangements).retain(|_, arr| Arc::strong_count(arr) > 1);
    }

    // ------------------------------------------------------------------
    // DDL.
    // ------------------------------------------------------------------

    /// `CREATE MATERIALIZED VIEW`: classify, gate, quiesce, seed from the
    /// stable base, register atomically, reopen.
    pub(crate) fn create_view(
        &self,
        session: &Session,
        name: &str,
        stmt: &SelectStmt,
    ) -> Result<()> {
        let kind = classify(session, stmt)?;
        let out_schema = strip_qualifiers(&binder::bind(session, stmt)?.schema());
        let apply = lock(&self.apply_lock);
        if self.views.read().contains_key(name) {
            return Err(EngineError::ViewAlreadyExists(name.to_string()));
        }
        if session.catalog().get(name).is_ok() {
            return Err(EngineError::TableAlreadyExists(name.to_string()));
        }
        let bases = kind_bases(&kind);
        let taps = self.ensure_taps(&bases);
        let closer = GateCloser::close(&taps);
        // idf-lint: allow(blocking-under-lock) -- DDL-only: gates are closed so the drain spin is short and bounded; 'apply_lock' must stay held to keep DDL serialized
        self.quiesce(&taps);
        let (source, maint) = match self.seed(session, stmt, &kind, &out_schema) {
            Ok(seeded) => seeded,
            Err(e) => {
                self.sweep_arrangements();
                return Err(e);
            }
        };
        let entry = Arc::new(ViewEntry {
            name: name.to_string(),
            stmt: stmt.clone(),
            kind,
            out_schema,
            source: Arc::clone(&source),
            maint: Mutex::new(maint),
            stale: AtomicBool::new(false),
        });
        if let Err(e) = session.register_table_new(name, source as Arc<dyn TableSource>) {
            drop(entry);
            self.sweep_arrangements();
            return Err(e);
        }
        self.views.write().insert(name.to_string(), entry);
        for tap in &taps {
            tap.active_views.fetch_add(1, Ordering::SeqCst);
        }
        idf_obs::global().views_registered.add(1);
        drop(closer);
        // Apply anything that queued for other tables while we held the
        // lock, then release and re-check (drain_pending's contract).
        while let Some(delta) = self.pop() {
            self.apply_delta(&delta);
        }
        drop(apply);
        self.drain_pending(false);
        Ok(())
    }

    /// `DROP MATERIALIZED VIEW`: unregister the view and the catalog
    /// entry (only if it is still ours), release shared state.
    pub(crate) fn drop_view(&self, session: &Session, name: &str) -> Result<()> {
        let _apply = lock(&self.apply_lock);
        let entry = self
            .views
            .write()
            .remove(name)
            .ok_or_else(|| EngineError::ViewNotFound(name.to_string()))?;
        if let Ok(src) = session.catalog().get(name) {
            let ours = src
                .as_any()
                .downcast_ref::<ViewSource>()
                .is_some_and(|v| std::ptr::eq(v, Arc::as_ptr(&entry.source)));
            if ours {
                session.catalog().deregister(name);
            }
        }
        {
            let taps = lock(&self.taps);
            for base in entry.kind.base_names() {
                if let Some(tap) = taps.get(&base) {
                    tap.active_views.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        drop(entry);
        self.sweep_arrangements();
        idf_obs::global().views_registered.add(-1);
        Ok(())
    }

    /// `REFRESH MATERIALIZED VIEW`: gate, quiesce, recompute the whole
    /// view from the stable base, swap atomically, clear the stale flag.
    /// A fault at the refresh failpoint fails the statement and leaves
    /// the previous state untouched (gates reopen via RAII).
    pub(crate) fn refresh_view(&self, session: &Session, name: &str) -> Result<()> {
        let apply = lock(&self.apply_lock);
        let entry = self
            .views
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::ViewNotFound(name.to_string()))?;
        let bases = kind_bases(&entry.kind);
        let taps = self.ensure_taps(&bases);
        let closer = GateCloser::close(&taps);
        // idf-lint: allow(blocking-under-lock) -- DDL-only: gates are closed so the drain spin is short and bounded; 'apply_lock' must stay held to keep DDL serialized
        self.quiesce(&taps);
        let started = idf_obs::enabled().then(Instant::now);
        failpoints::check(failpoints::REFRESH)?;
        self.recompute(session, &entry)?;
        entry.stale.store(false, Ordering::SeqCst);
        if let Some(started) = started {
            idf_obs::global()
                .view_refresh_ns
                .record(started.elapsed().as_nanos() as u64);
        }
        drop(closer);
        while let Some(delta) = self.pop() {
            self.apply_delta(&delta);
        }
        drop(apply);
        self.drain_pending(false);
        Ok(())
    }

    /// Seed a new view from the quiesced base: run the defining query
    /// (through the normal binder/optimizer/physical layer) and install
    /// the per-kind maintenance state.
    fn seed(
        &self,
        session: &Session,
        stmt: &SelectStmt,
        kind: &ViewKind,
        out_schema: &SchemaRef,
    ) -> Result<(Arc<ViewSource>, Maint)> {
        let source = Arc::new(ViewSource::new(Arc::clone(out_schema)));
        let maint = match kind {
            ViewKind::FilterProject { .. } => {
                let chunk = binder::bind(session, stmt)?.collect()?;
                source.replace(vec![chunk]);
                Maint::FilterProject {
                    sess: Session::new(),
                }
            }
            ViewKind::Aggregate { agg, .. } => {
                let partial = binder::bind(session, &agg.partial_stmt)?.collect()?;
                let mut groups = BTreeMap::new();
                merge_partials(&mut groups, &partial, agg.as_ref())?;
                let rows = rebuild_rows(&groups, agg.as_ref(), out_schema)?;
                source.replace(if rows.is_empty() {
                    Vec::new()
                } else {
                    vec![Chunk::from_rows(out_schema, &rows)?]
                });
                Maint::Aggregate {
                    sess: Session::new(),
                    groups,
                }
            }
            ViewKind::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let arr_left = self.arrangement(session, &left.name, &left.schema, *left_key)?;
                let arr_right =
                    self.arrangement(session, &right.name, &right.schema, *right_key)?;
                let sess = Session::new();
                sess.register_strategy(Arc::new(IndexedJoinStrategy));
                sess.register_table(
                    &left.name,
                    Arc::new(IndexedSource::live(Arc::clone(&arr_left.table))),
                );
                sess.register_table(
                    &right.name,
                    Arc::new(IndexedSource::live(Arc::clone(&arr_right.table))),
                );
                let chunk = binder::bind(&sess, stmt)?.collect()?;
                source.replace(vec![chunk]);
                Maint::Join {
                    sess,
                    left: arr_left,
                    right: arr_right,
                }
            }
        };
        Ok((source, maint))
    }

    /// Full recompute of one view from the quiesced base (REFRESH).
    fn recompute(&self, session: &Session, entry: &Arc<ViewEntry>) -> Result<()> {
        let mut maint = lock(&entry.maint);
        match (&entry.kind, &mut *maint) {
            (ViewKind::FilterProject { .. }, Maint::FilterProject { .. }) => {
                let chunk = binder::bind(session, &entry.stmt)?.collect()?;
                entry.source.replace(vec![chunk]);
            }
            (ViewKind::Aggregate { agg, .. }, Maint::Aggregate { groups, .. }) => {
                let partial = binder::bind(session, &agg.partial_stmt)?.collect()?;
                let mut rebuilt = BTreeMap::new();
                merge_partials(&mut rebuilt, &partial, agg.as_ref())?;
                let rows = rebuild_rows(&rebuilt, agg.as_ref(), &entry.out_schema)?;
                let chunks = if rows.is_empty() {
                    Vec::new()
                } else {
                    vec![Chunk::from_rows(&entry.out_schema, &rows)?]
                };
                *groups = rebuilt;
                entry.source.replace(chunks);
            }
            (
                ViewKind::Join {
                    left: left_base,
                    right: right_base,
                    left_key,
                    right_key,
                },
                Maint::Join { sess, left, right },
            ) => {
                // A healthy arrangement already mirrors the quiesced base
                // exactly (every delta appends to it), so `arrangement`
                // reuses it; a stale one is rebuilt from the base and
                // replaces the registry entry.
                let arr_left =
                    self.arrangement(session, &left_base.name, &left_base.schema, *left_key)?;
                let arr_right =
                    self.arrangement(session, &right_base.name, &right_base.schema, *right_key)?;
                sess.register_table(
                    &left_base.name,
                    Arc::new(IndexedSource::live(Arc::clone(&arr_left.table))),
                );
                sess.register_table(
                    &right_base.name,
                    Arc::new(IndexedSource::live(Arc::clone(&arr_right.table))),
                );
                let chunk = binder::bind(sess, &entry.stmt)?.collect()?;
                *left = arr_left;
                *right = arr_right;
                entry.source.replace(vec![chunk]);
            }
            _ => return Err(state_mismatch()),
        }
        drop(maint);
        self.sweep_arrangements();
        Ok(())
    }

    /// Get the shared arrangement for `(table, key)`, or build one from
    /// the (quiesced) base if none exists or the existing one is stale.
    fn arrangement(
        &self,
        session: &Session,
        table: &str,
        schema: &SchemaRef,
        key: usize,
    ) -> Result<Arc<Arrangement>> {
        let slot = (table.to_string(), key);
        if let Some(arr) = lock(&self.arrangements).get(&slot).cloned() {
            if !arr.stale.load(Ordering::SeqCst) {
                return Ok(arr);
            }
        }
        let data = session.table(table)?.collect()?;
        let built = IndexedTable::new(Arc::clone(schema), key, IndexConfig::default())?;
        if !data.is_empty() {
            built.append_chunk(&data)?;
        }
        let arr = Arc::new(Arrangement {
            table: Arc::new(built),
            stale: AtomicBool::new(false),
        });
        lock(&self.arrangements).insert(slot, Arc::clone(&arr));
        Ok(arr)
    }
}

/// Why one apply attempt failed. The carried error is kept for debugger
/// visibility; the maintenance loop branches only on the variant.
enum ApplyError {
    /// No state was mutated — run the attempt again.
    Retryable(#[allow(dead_code)] EngineError),
    /// State may be inconsistent — stop and flag the view stale.
    Poisoned(#[allow(dead_code)] EngineError),
}

fn state_mismatch() -> EngineError {
    EngineError::internal("view maintenance state does not match its classification")
}

/// RAII gate closer: closes every gate on construction, reopens and
/// wakes parked appenders on drop (including the error paths).
struct GateCloser<'a> {
    taps: &'a [Arc<TapState>],
}

impl<'a> GateCloser<'a> {
    fn close(taps: &'a [Arc<TapState>]) -> Self {
        for tap in taps {
            lock(&tap.gate).closed = true;
        }
        GateCloser { taps }
    }
}

impl Drop for GateCloser<'_> {
    fn drop(&mut self) {
        for tap in self.taps {
            lock(&tap.gate).closed = false;
            // idf-lint: allow(condvar-discipline) -- gate.closed was cleared under the temporary 'gate' guard above; notify-after-unlock
            tap.cv.notify_all();
        }
    }
}

/// Base tables of a view as owned `(name, table)` pairs.
fn kind_bases(kind: &ViewKind) -> Vec<(String, Arc<IndexedTable>)> {
    match kind {
        ViewKind::FilterProject { base } | ViewKind::Aggregate { base, .. } => {
            vec![(base.name.clone(), Arc::clone(&base.table))]
        }
        ViewKind::Join { left, right, .. } => vec![
            (left.name.clone(), Arc::clone(&left.table)),
            (right.name.clone(), Arc::clone(&right.table)),
        ],
    }
}

/// Decode a delta's payloads back into a chunk with the base schema.
fn decode_delta(table: &IndexedTable, payloads: &[Vec<u8>]) -> Result<Chunk> {
    let rows: Vec<Vec<Value>> = payloads
        .iter()
        .map(|p| table.decode_payload(p))
        .collect::<Result<_>>()?;
    Chunk::from_rows(&table.schema(), &rows)
}

/// (Re-)register the delta chunk in a private session under the base
/// table's name, so the defining query binds against the delta.
fn register_delta(sess: &Session, name: &str, schema: &SchemaRef, chunk: &Chunk) {
    sess.register_table(
        name,
        Arc::new(MemTable::from_chunk(Arc::clone(schema), chunk.clone())),
    );
}

/// Same schema with every field's qualifier stripped, so the view's
/// columns bind unqualified like any base table's.
fn strip_qualifiers(schema: &SchemaRef) -> SchemaRef {
    Arc::new(Schema::new(
        schema
            .fields
            .iter()
            .map(|f| Field {
                qualifier: None,
                ..f.clone()
            })
            .collect(),
    ))
}

// ----------------------------------------------------------------------
// Accumulator arithmetic.
// ----------------------------------------------------------------------

/// Fresh (identity) accumulators for a new group.
fn fresh_accs(kinds: &[AccKind]) -> Vec<Acc> {
    kinds
        .iter()
        .map(|k| match k {
            AccKind::Count => Acc::Count(0),
            AccKind::Sum => Acc::Sum(Value::Null),
            AccKind::Min => Acc::Min(Value::Null),
            AccKind::Max => Acc::Max(Value::Null),
            AccKind::Avg => Acc::Avg {
                sum: Value::Null,
                count: 0,
            },
        })
        .collect()
}

/// Merge the partial-aggregate chunk of one delta into the group map.
fn merge_partials(
    groups: &mut BTreeMap<Vec<Value>, Vec<Acc>>,
    partial: &Chunk,
    agg: &AggDef,
) -> Result<()> {
    for row in 0..partial.len() {
        let values = partial.row_values(row);
        let key: Vec<Value> = values[..agg.n_groups].to_vec();
        let accs = groups.entry(key).or_insert_with(|| fresh_accs(&agg.accs));
        let mut col = agg.n_groups;
        for (j, kind) in agg.accs.iter().enumerate() {
            match (kind, &mut accs[j]) {
                (AccKind::Count, Acc::Count(n)) => {
                    *n += as_i64(&values[col])?;
                    col += 1;
                }
                (AccKind::Sum, Acc::Sum(sum)) => {
                    *sum = add_values(sum, &values[col])?;
                    col += 1;
                }
                (AccKind::Min, Acc::Min(min)) => {
                    if !values[col].is_null() && (min.is_null() || values[col] < *min) {
                        *min = values[col].clone();
                    }
                    col += 1;
                }
                (AccKind::Max, Acc::Max(max)) => {
                    if !values[col].is_null() && (max.is_null() || values[col] > *max) {
                        *max = values[col].clone();
                    }
                    col += 1;
                }
                (AccKind::Avg, Acc::Avg { sum, count }) => {
                    *sum = add_values(sum, &values[col])?;
                    *count += as_i64(&values[col + 1])?;
                    col += 2;
                }
                _ => return Err(state_mismatch()),
            }
        }
    }
    Ok(())
}

/// Rebuild the full output row set from the group map (deterministic:
/// the map is ordered by group key).
fn rebuild_rows(
    groups: &BTreeMap<Vec<Value>, Vec<Acc>>,
    agg: &AggDef,
    out_schema: &SchemaRef,
) -> Result<Vec<Vec<Value>>> {
    let mut rows = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut row = Vec::with_capacity(agg.template.len());
        for (c, out) in agg.template.iter().enumerate() {
            row.push(match out {
                OutCol::Group(i) => key[*i].clone(),
                OutCol::Agg(j) => finalize(&accs[*j], out_schema.field(c).data_type)?,
            });
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Finalize one accumulator into an output value of column type `ty`.
fn finalize(acc: &Acc, ty: DataType) -> Result<Value> {
    Ok(match acc {
        Acc::Count(n) => Value::Int64(*n),
        Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => v.clone(),
        Acc::Avg { sum, count } => {
            if *count == 0 || sum.is_null() {
                Value::Null
            } else {
                let s = num_as_f64(sum)
                    .ok_or_else(|| EngineError::type_err("avg over a non-numeric partial sum"))?;
                Value::Float64(s / *count as f64).cast(ty).ok_or_else(|| {
                    EngineError::type_err("avg result does not cast to its column")
                })?
            }
        }
    })
}

/// Add two partial values, treating `Null` as the additive identity.
fn add_values(a: &Value, b: &Value) -> Result<Value> {
    Ok(match (a, b) {
        (Value::Null, other) | (other, Value::Null) => other.clone(),
        (Value::Int64(x), Value::Int64(y)) => Value::Int64(x + y),
        (Value::Int32(x), Value::Int32(y)) => Value::Int64(i64::from(*x) + i64::from(*y)),
        (Value::Float64(x), Value::Float64(y)) => Value::Float64(x + y),
        (x, y) => match (num_as_f64(x), num_as_f64(y)) {
            (Some(xf), Some(yf)) => Value::Float64(xf + yf),
            _ => {
                return Err(EngineError::type_err(
                    "mismatched partial aggregate value types",
                ))
            }
        },
    })
}

/// A partial count as `i64` (`Null` counts zero rows).
fn as_i64(v: &Value) -> Result<i64> {
    match v {
        Value::Null => Ok(0),
        Value::Int64(n) => Ok(*n),
        Value::Int32(n) => Ok(i64::from(*n)),
        _ => Err(EngineError::type_err("partial count is not an integer")),
    }
}

/// Numeric value as `f64`, `None` for non-numerics.
fn num_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int32(n) => Some(f64::from(*n)),
        Value::Int64(n) => Some(*n as f64),
        Value::Float64(f) => Some(*f),
        _ => None,
    }
}
