//! End-to-end materialized-view coverage through the SQL front end:
//! CREATE/DROP/REFRESH, incremental maintenance for all three view
//! classes (filter/project, aggregate, join), snapshot consistency under
//! concurrent appends, sync and async maintenance modes, typed errors,
//! and planning through the normal physical layer (EXPLAIN).
//!
//! The core invariant asserted everywhere: a view's contents are
//! bit-for-bit equal to re-running its defining query at the same
//! snapshot.

use std::sync::Arc;

use idf_core::prelude::*;
use idf_engine::chunk::Chunk;
use idf_engine::error::EngineError;
use idf_engine::session::Session;
use idf_engine::types::Value;
use idf_views::{install, MaintenanceMode, ViewsConfig, ViewsSystem};

fn setup(mode: MaintenanceMode) -> (Session, Arc<ViewsSystem>) {
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    let views = install(
        &session,
        ViewsConfig {
            mode,
            ..Default::default()
        },
    );
    (session, views)
}

fn sql(session: &Session, query: &str) -> Chunk {
    session
        .sql(query)
        .unwrap_or_else(|e| panic!("{query}: {e}"))
        .collect()
        .unwrap_or_else(|e| panic!("{query}: {e}"))
}

/// Run a statement that must fail at plan time and return the error.
fn sql_err(session: &Session, query: &str) -> EngineError {
    match session.sql(query) {
        Err(e) => e,
        Ok(_) => panic!("{query}: expected an error"),
    }
}

/// Sorted row multiset of a chunk, for order-insensitive equality.
fn rows_of(chunk: &Chunk) -> Vec<Vec<Value>> {
    let mut rows = chunk.to_rows();
    rows.sort();
    rows
}

/// Assert `SELECT * FROM <view>` equals re-running the defining query.
fn assert_matches_query(session: &Session, view: &str, defining: &str) {
    let view_rows = rows_of(&sql(session, &format!("SELECT * FROM {view}")));
    let fresh_rows = rows_of(&sql(session, defining));
    assert_eq!(view_rows, fresh_rows, "view {view} diverged from its query");
}

#[test]
fn filter_project_view_maintains_incrementally() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE t (k BIGINT, v BIGINT)");
    sql(&session, "INSERT INTO t VALUES (1, 5), (2, 50), (3, 7)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW big AS SELECT k, v FROM t WHERE v > 10",
    );
    let defining = "SELECT k, v FROM t WHERE v > 10";
    assert_matches_query(&session, "big", defining);
    // Incremental: appends flow through without re-execution.
    sql(&session, "INSERT INTO t VALUES (4, 40), (5, 2), (6, 60)");
    assert_matches_query(&session, "big", defining);
    assert_eq!(sql(&session, "SELECT k FROM big").len(), 3);
    // Views plan through the normal physical layer.
    let plan = sql(&session, "EXPLAIN SELECT k FROM big WHERE v > 50");
    assert!(!plan.is_empty(), "EXPLAIN over a view returns a plan");
}

#[test]
fn aggregate_view_maintains_all_accumulators() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE m (g BIGINT, x BIGINT)");
    sql(
        &session,
        "INSERT INTO m VALUES (1, 10), (1, 20), (2, 5), (2, 7), (3, 100)",
    );
    let defining = "SELECT g, count(*), sum(x), min(x), max(x), avg(x) \
                    FROM m GROUP BY g";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW stats AS {defining}"),
    );
    assert_matches_query(&session, "stats", defining);
    // New rows touch existing groups and mint new ones.
    sql(
        &session,
        "INSERT INTO m VALUES (1, 1), (4, 4), (2, 1000), (4, 8)",
    );
    assert_matches_query(&session, "stats", defining);
    // A second wave, to exercise repeated merges.
    sql(&session, "INSERT INTO m VALUES (3, 1), (3, 2), (3, 3)");
    assert_matches_query(&session, "stats", defining);
}

#[test]
fn global_aggregate_view_without_group_by() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE g (x BIGINT)");
    let defining = "SELECT count(*), sum(x) FROM g";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW total AS {defining}"),
    );
    // Seeded over an empty table: one global row.
    assert_matches_query(&session, "total", defining);
    sql(&session, "INSERT INTO g VALUES (1), (2), (3)");
    assert_matches_query(&session, "total", defining);
    let rows = rows_of(&sql(&session, "SELECT * FROM total"));
    assert_eq!(rows, vec![vec![Value::Int64(3), Value::Int64(6)]]);
}

#[test]
fn join_view_probes_the_arrangement() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE person (id BIGINT, city BIGINT)");
    sql(&session, "CREATE TABLE msg (author BIGINT, len BIGINT)");
    sql(&session, "INSERT INTO person VALUES (1, 10), (2, 20)");
    sql(
        &session,
        "INSERT INTO msg VALUES (1, 100), (1, 101), (2, 200)",
    );
    let defining = "SELECT person.id, person.city, msg.len \
                    FROM person JOIN msg ON person.id = msg.author";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW feed AS {defining}"),
    );
    assert_matches_query(&session, "feed", defining);
    // Deltas on either side must pair with the other side's history.
    sql(&session, "INSERT INTO msg VALUES (2, 201), (3, 300)");
    assert_matches_query(&session, "feed", defining);
    sql(&session, "INSERT INTO person VALUES (3, 30)");
    // The person delta must pick up the earlier dangling msg (3, 300).
    assert_matches_query(&session, "feed", defining);
    sql(&session, "INSERT INTO msg VALUES (3, 301)");
    sql(&session, "INSERT INTO person VALUES (4, 40)");
    assert_matches_query(&session, "feed", defining);
}

#[test]
fn join_view_with_filter_and_aliases() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE a (id BIGINT, v BIGINT)");
    sql(&session, "CREATE TABLE b (rid BIGINT, w BIGINT)");
    sql(&session, "INSERT INTO a VALUES (1, 1), (2, 2)");
    sql(&session, "INSERT INTO b VALUES (1, 10), (2, 3), (1, 4)");
    let defining = "SELECT x.id, y.w FROM a AS x JOIN b AS y ON x.id = y.rid WHERE y.w > 5";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW filtered AS {defining}"),
    );
    assert_matches_query(&session, "filtered", defining);
    sql(&session, "INSERT INTO b VALUES (2, 20), (2, 1)");
    assert_matches_query(&session, "filtered", defining);
}

#[test]
fn multiple_views_share_one_delta_pass() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE t (k BIGINT, v BIGINT)");
    sql(&session, "INSERT INTO t VALUES (1, 1), (2, 2)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW odd AS SELECT k, v FROM t WHERE v % 2 = 1",
    );
    sql(
        &session,
        "CREATE MATERIALIZED VIEW sums AS SELECT k, sum(v) FROM t GROUP BY k",
    );
    sql(&session, "INSERT INTO t VALUES (1, 3), (2, 4), (3, 5)");
    assert_matches_query(&session, "odd", "SELECT k, v FROM t WHERE v % 2 = 1");
    assert_matches_query(&session, "sums", "SELECT k, sum(v) FROM t GROUP BY k");
}

#[test]
fn concurrent_appends_never_observe_half_applied_state() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE c (k BIGINT, v BIGINT)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW csum AS SELECT k, count(*), sum(v) FROM c GROUP BY k",
    );
    let writers = 4;
    let per_writer = 25i64;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let session = session.clone();
            scope.spawn(move || {
                for i in 0..per_writer {
                    let k = i % 5;
                    let v = w as i64 * per_writer + i;
                    session
                        .sql(&format!("INSERT INTO c VALUES ({k}, {v})"))
                        .unwrap()
                        .collect()
                        .unwrap();
                }
            });
        }
        // Reader thread: every observed state must be internally
        // consistent — for this data, sum(count) == total rows seen and
        // counts never decrease.
        let reader = session.clone();
        scope.spawn(move || {
            let mut last_total = 0i64;
            for _ in 0..50 {
                let chunk = reader
                    .sql("SELECT k, count(*), sum(v) FROM csum GROUP BY k")
                    .ok()
                    .and_then(|df| df.collect().ok());
                if let Some(chunk) = chunk {
                    let total: i64 = (0..chunk.len())
                        .map(|r| match chunk.value_at(1, r) {
                            Value::Int64(n) => n,
                            other => panic!("count column: {other:?}"),
                        })
                        .sum();
                    assert!(total >= last_total, "view went backwards");
                    last_total = total;
                }
                std::thread::yield_now();
            }
        });
    });
    assert_matches_query(
        &session,
        "csum",
        "SELECT k, count(*), sum(v) FROM c GROUP BY k",
    );
    let rows = rows_of(&sql(&session, "SELECT * FROM csum"));
    let total: i64 = rows
        .iter()
        .map(|r| match &r[1] {
            Value::Int64(n) => *n,
            other => panic!("count column: {other:?}"),
        })
        .sum();
    assert_eq!(total, writers as i64 * per_writer, "no lost deltas");
}

#[test]
fn async_mode_catches_up_on_wait_idle() {
    let (session, views) = setup(MaintenanceMode::Async);
    sql(&session, "CREATE TABLE q (k BIGINT, v BIGINT)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW qv AS SELECT k, sum(v) FROM q GROUP BY k",
    );
    for i in 0..40 {
        sql(
            &session,
            &format!("INSERT INTO q VALUES ({}, {})", i % 4, i),
        );
    }
    views.wait_idle();
    assert_matches_query(&session, "qv", "SELECT k, sum(v) FROM q GROUP BY k");
    assert!(views.stale_views().is_empty());
}

#[test]
fn refresh_recomputes_and_matches() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE r (k BIGINT, v BIGINT)");
    sql(&session, "INSERT INTO r VALUES (1, 1), (2, 2)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW rv AS SELECT k, v FROM r WHERE v > 0",
    );
    sql(&session, "INSERT INTO r VALUES (3, 3)");
    sql(&session, "REFRESH MATERIALIZED VIEW rv");
    assert_matches_query(&session, "rv", "SELECT k, v FROM r WHERE v > 0");
    // Maintenance continues after a refresh.
    sql(&session, "INSERT INTO r VALUES (4, 4)");
    assert_matches_query(&session, "rv", "SELECT k, v FROM r WHERE v > 0");
}

#[test]
fn drop_view_unregisters_and_allows_recreate() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE d (k BIGINT, v BIGINT)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW dv AS SELECT k FROM d WHERE v > 1",
    );
    sql(&session, "DROP MATERIALIZED VIEW dv");
    let err = sql_err(&session, "SELECT * FROM dv");
    assert!(matches!(err, EngineError::TableNotFound(_)), "{err}");
    // The name is free again.
    sql(
        &session,
        "CREATE MATERIALIZED VIEW dv AS SELECT k FROM d WHERE v > 2",
    );
    sql(&session, "INSERT INTO d VALUES (9, 9)");
    assert_matches_query(&session, "dv", "SELECT k FROM d WHERE v > 2");
}

#[test]
fn ddl_errors_are_typed() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE e (k BIGINT, v BIGINT)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW ev AS SELECT k FROM e WHERE v > 1",
    );
    // Duplicate view name: one winner, typed loser.
    let err = sql_err(&session, "CREATE MATERIALIZED VIEW ev AS SELECT v FROM e");
    assert!(matches!(err, EngineError::ViewAlreadyExists(_)), "{err}");
    // View name colliding with a table.
    let err = sql_err(&session, "CREATE MATERIALIZED VIEW e AS SELECT k FROM e");
    assert!(matches!(err, EngineError::TableAlreadyExists(_)), "{err}");
    // Unknown view: typed, distinct from TableNotFound.
    for stmt in [
        "DROP MATERIALIZED VIEW nope",
        "REFRESH MATERIALIZED VIEW nope",
    ] {
        let err = sql_err(&session, stmt);
        assert!(matches!(err, EngineError::ViewNotFound(_)), "{stmt}: {err}");
    }
    // DROP MATERIALIZED VIEW does not drop tables.
    let err = sql_err(&session, "DROP MATERIALIZED VIEW e");
    assert!(matches!(err, EngineError::ViewNotFound(_)), "{err}");
    assert_eq!(sql(&session, "SELECT count(*) FROM e").len(), 1);
}

#[test]
fn unsupported_defining_queries_are_rejected_with_reasons() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE u (k BIGINT, v BIGINT)");
    sql(&session, "CREATE TABLE u2 (k BIGINT, w BIGINT)");
    let rejected = [
        "SELECT DISTINCT k FROM u",
        "SELECT k FROM u ORDER BY k",
        "SELECT k FROM u LIMIT 3",
        "SELECT k, count(*) FROM u GROUP BY k HAVING count(*) > 1",
        "SELECT k FROM (SELECT k FROM u) AS s",
        "SELECT u.k FROM u LEFT JOIN u2 ON u.k = u2.k",
        "SELECT a.k FROM u AS a JOIN u AS b ON a.k = b.v",
        "SELECT k, count(*) + 1 FROM u GROUP BY k",
        "SELECT u.k FROM u JOIN u2 ON u.k > u2.k",
    ];
    for defining in rejected {
        let err = sql_err(
            &session,
            &format!("CREATE MATERIALIZED VIEW bad AS {defining}"),
        );
        assert!(
            matches!(err, EngineError::Unsupported(_)),
            "{defining}: {err}"
        );
        assert!(
            err.to_string().contains("materialized view"),
            "{defining}: {err}"
        );
    }
    // None of the rejects registered anything.
    assert!(session.sql("SELECT * FROM bad").is_err());
}

#[test]
fn views_require_the_subsystem() {
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    sql(&session, "CREATE TABLE t (k BIGINT)");
    let err = sql_err(&session, "CREATE MATERIALIZED VIEW v AS SELECT k FROM t");
    assert!(matches!(err, EngineError::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("idf-views"), "{err}");
}

#[test]
fn view_over_plain_table_is_rejected() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    // A non-indexed source (no indexed DDL factory behind it).
    let schema = Arc::new(idf_engine::schema::Schema::new(vec![
        idf_engine::schema::Field::new("x", idf_engine::types::DataType::Int64),
    ]));
    session.register_table(
        "plain",
        Arc::new(idf_engine::catalog::MemTable::new(schema, vec![vec![]])),
    );
    let err = sql_err(
        &session,
        "CREATE MATERIALIZED VIEW pv AS SELECT x FROM plain",
    );
    assert!(matches!(err, EngineError::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("live indexed table"), "{err}");
}

#[cfg(feature = "obs")]
#[test]
fn view_metrics_reach_the_prometheus_exposition() {
    let (session, _views) = setup(MaintenanceMode::Sync);
    idf_obs::global().reset();
    sql(&session, "CREATE TABLE o (k BIGINT, v BIGINT)");
    sql(
        &session,
        "CREATE MATERIALIZED VIEW ov AS SELECT k, sum(v) FROM o GROUP BY k",
    );
    sql(&session, "INSERT INTO o VALUES (1, 1), (2, 2)");
    sql(&session, "INSERT INTO o VALUES (1, 3)");
    sql(&session, "REFRESH MATERIALIZED VIEW ov");
    let text = session.metrics_text();
    assert!(
        text.contains("idf_views_registered 1"),
        "gauge missing: {text}"
    );
    assert!(text.contains("# TYPE idf_views_deltas_applied_total counter"));
    assert!(text.contains("# TYPE idf_views_maintenance_lag_ns histogram"));
    assert!(text.contains("# TYPE idf_views_refresh_duration_ns histogram"));
    assert!(idf_obs::global().view_deltas_applied.get() >= 2);
    assert!(idf_obs::global().view_refresh_ns.count() >= 1);
    sql(&session, "DROP MATERIALIZED VIEW ov");
    assert!(
        session.metrics_text().contains("idf_views_registered 0"),
        "gauge must drop back to zero"
    );
}

#[test]
fn dml_on_base_marks_views_stale_and_refresh_recovers() {
    let (session, views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE d (k BIGINT, v BIGINT)");
    sql(&session, "INSERT INTO d VALUES (1, 10), (2, 20), (3, 30)");
    let defining = "SELECT k, v FROM d WHERE v > 5";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW dv AS {defining}"),
    );
    assert_matches_query(&session, "dv", defining);

    // An UPDATE appends a tombstone + a new version: the delta cannot be
    // replayed as an append, so the view must go stale — and must NOT
    // have half-applied the survivor re-appends in the meantime.
    sql(&session, "UPDATE d SET v = 11 WHERE k = 1");
    assert_eq!(views.stale_views(), ["dv"]);
    assert_eq!(
        sql(&session, "SELECT k FROM dv").len(),
        3,
        "stale view keeps serving its last good state, undoubled"
    );

    sql(&session, "REFRESH MATERIALIZED VIEW dv");
    assert!(views.stale_views().is_empty());
    assert_matches_query(&session, "dv", defining);

    // DELETE behaves the same way.
    sql(&session, "DELETE FROM d WHERE k = 2");
    assert_eq!(views.stale_views(), ["dv"]);
    sql(&session, "REFRESH MATERIALIZED VIEW dv");
    assert_matches_query(&session, "dv", defining);
    assert_eq!(sql(&session, "SELECT k FROM dv").len(), 2);

    // Incremental maintenance resumes after the refresh.
    sql(&session, "INSERT INTO d VALUES (4, 40)");
    assert!(views.stale_views().is_empty());
    assert_matches_query(&session, "dv", defining);
}

#[test]
fn dml_poisons_join_arrangements_until_refresh() {
    let (session, views) = setup(MaintenanceMode::Sync);
    sql(&session, "CREATE TABLE l (k BIGINT, a BIGINT)");
    sql(&session, "CREATE TABLE r2 (k BIGINT, b BIGINT)");
    sql(&session, "INSERT INTO l VALUES (1, 10), (2, 20)");
    sql(&session, "INSERT INTO r2 VALUES (1, 100), (2, 200)");
    let defining = "SELECT l.a, r2.b FROM l JOIN r2 ON l.k = r2.k";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW jv AS {defining}"),
    );
    assert_matches_query(&session, "jv", defining);

    // DML on one side poisons its arrangement; the join view goes stale.
    sql(&session, "UPDATE r2 SET b = 201 WHERE k = 2");
    assert_eq!(views.stale_views(), ["jv"]);

    // REFRESH rebuilds the arrangement from the post-DML base and the
    // view maintains incrementally again afterwards.
    sql(&session, "REFRESH MATERIALIZED VIEW jv");
    assert!(views.stale_views().is_empty());
    assert_matches_query(&session, "jv", defining);
    sql(&session, "INSERT INTO l VALUES (3, 30)");
    sql(&session, "INSERT INTO r2 VALUES (3, 300)");
    assert!(views.stale_views().is_empty());
    assert_matches_query(&session, "jv", defining);
}

#[test]
fn dml_stale_barrier_works_in_async_mode() {
    let (session, views) = setup(MaintenanceMode::Async);
    sql(&session, "CREATE TABLE ad (k BIGINT, v BIGINT)");
    sql(&session, "INSERT INTO ad VALUES (1, 1), (2, 2)");
    let defining = "SELECT k, v FROM ad WHERE v > 0";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW adv AS {defining}"),
    );
    sql(&session, "DELETE FROM ad WHERE k = 1");
    views.wait_idle();
    assert_eq!(views.stale_views(), ["adv"]);
    sql(&session, "REFRESH MATERIALIZED VIEW adv");
    assert_matches_query(&session, "adv", defining);
    assert_eq!(sql(&session, "SELECT k FROM adv").len(), 1);
}
