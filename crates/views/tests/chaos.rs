//! Deterministic chaos suite for view maintenance: faults seeded at
//! every registered `idf-views` failpoint site while appends stream in,
//! asserting the exactly-once invariant the whole time — after every
//! storm (and a REFRESH for any view that went stale) each view's
//! contents are bit-for-bit equal to re-running its defining query, with
//! no lost and no double-applied deltas.
//!
//! Rounds are capped so the suite rides in tier-1 `cargo test`; set
//! `IDF_CHAOS_ROUNDS` to run longer locally (see EXPERIMENTS.md).

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use idf_core::prelude::*;
use idf_engine::chunk::Chunk;
use idf_engine::session::Session;
use idf_engine::types::Value;
use idf_fail::{FailConfig, FailGuard};
use idf_views::failpoints as fp;
use idf_views::{install, ViewsConfig, ViewsSystem};

/// The failpoint registry is process-global; every test here serializes
/// on this lock (poison tolerated so one failure doesn't cascade).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    idf_fail::reset();
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn rounds() -> usize {
    std::env::var("IDF_CHAOS_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// An operation outcome under chaos: success, a tolerated injected
/// failure, or an intolerable error (which fails the test).
fn tolerated(result: Result<(), String>) -> bool {
    match result {
        Ok(()) => true,
        Err(msg) => {
            assert!(
                msg.contains("injected") || msg.contains("panicked") || msg.contains("failpoint"),
                "non-injected failure under chaos: {msg}"
            );
            false
        }
    }
}

/// Run `f`, flattening engine errors and panics into a message.
fn run_op(f: impl FnOnce() -> idf_engine::error::Result<()>) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(idf_engine::error::panic_message(payload.as_ref())),
    }
}

fn setup() -> (Session, Arc<ViewsSystem>) {
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    let views = install(&session, ViewsConfig::default());
    (session, views)
}

fn sql(session: &Session, query: &str) -> Chunk {
    session
        .sql(query)
        .unwrap_or_else(|e| panic!("{query}: {e}"))
        .collect()
        .unwrap_or_else(|e| panic!("{query}: {e}"))
}

fn rows_of(chunk: &Chunk) -> Vec<Vec<Value>> {
    let mut rows = chunk.to_rows();
    rows.sort();
    rows
}

fn assert_matches_query(session: &Session, view: &str, defining: &str) {
    let view_rows = rows_of(&sql(session, &format!("SELECT * FROM {view}")));
    let fresh_rows = rows_of(&sql(session, defining));
    assert_eq!(view_rows, fresh_rows, "view {view} diverged from its query");
}

/// Clear all faults, refresh every stale view, and prove each view is
/// bit-for-bit equal to its defining query.
fn heal_and_audit(session: &Session, views: &ViewsSystem, defs: &[(&str, &str)]) {
    idf_fail::reset();
    for name in views.stale_views() {
        sql(session, &format!("REFRESH MATERIALIZED VIEW {name}"));
    }
    assert!(views.stale_views().is_empty(), "refresh must clear stale");
    for (view, defining) in defs {
        assert_matches_query(session, view, defining);
    }
}

#[test]
fn registered_sites_cover_apply_and_refresh() {
    assert_eq!(fp::SITES, ["views::maintain::apply", "views::refresh"]);
}

/// The core storm: bounded error/panic/delay faults at the apply site
/// (and errors at the refresh site) while appends stream into filter,
/// aggregate, and join views. Appends themselves must never fail —
/// maintenance faults are retried or contained, never propagated into
/// the commit path — and after healing every view matches its query
/// exactly, which rules out both lost and double-applied deltas.
#[test]
fn fault_storm_preserves_exactly_once_maintenance() {
    let _guard = serial();
    let (session, views) = setup();
    sql(&session, "CREATE TABLE t (k BIGINT, v BIGINT)");
    sql(&session, "CREATE TABLE d (k BIGINT, w BIGINT)");
    sql(
        &session,
        "INSERT INTO d VALUES (0, 100), (1, 101), (2, 102)",
    );
    let defs: &[(&str, &str)] = &[
        ("cv_filter", "SELECT k, v FROM t WHERE v % 3 = 0"),
        (
            "cv_agg",
            "SELECT k, count(*), sum(v), min(v), max(v) FROM t GROUP BY k",
        ),
        ("cv_join", "SELECT t.k, t.v, d.w FROM t JOIN d ON t.k = d.k"),
    ];
    for (view, defining) in defs {
        sql(
            &session,
            &format!("CREATE MATERIALIZED VIEW {view} AS {defining}"),
        );
    }
    let mut inserted = 0i64;
    for round in 0..rounds() {
        let times = 1 + (round % 4) as u64;
        let skip = (round % 3) as u64;
        let config = match round % 3 {
            0 => FailConfig::error("chaos apply error")
                .skip(skip)
                .times(times),
            1 => FailConfig::panic("chaos apply panic")
                .skip(skip)
                .times(times),
            _ => FailConfig::delay(1).times(times),
        };
        let _apply = FailGuard::new(fp::MAINTAIN_APPLY, config);
        // The append path must stay fault-free: maintenance retries
        // absorb the storm.
        for i in 0..4i64 {
            let k = (inserted + i) % 3;
            let v = inserted + i;
            sql(&session, &format!("INSERT INTO t VALUES ({k}, {v})"));
        }
        inserted += 4;
        // Every third round, a refresh races the storm too; an injected
        // refusal is tolerated and must leave state consistent.
        if round % 3 == 0 {
            let _refresh = FailGuard::new(
                fp::REFRESH,
                FailConfig::error("chaos refresh error").times(1),
            );
            tolerated(run_op(|| {
                session
                    .sql("REFRESH MATERIALIZED VIEW cv_filter")
                    .map(|_| ())
            }));
        }
    }
    heal_and_audit(&session, &views, defs);
    // Count-exactness: the aggregate view's counts must sum to exactly
    // the number of committed rows (lost deltas would undercount,
    // double-applied deltas would overcount).
    let chunk = sql(&session, "SELECT * FROM cv_agg");
    let total: i64 = (0..chunk.len())
        .map(|r| match chunk.value_at(1, r) {
            Value::Int64(n) => n,
            other => panic!("count column: {other:?}"),
        })
        .sum();
    assert_eq!(total, inserted, "lost or double-applied deltas");
}

/// Retry exhaustion: an unbounded error fault at the apply site marks
/// the views stale instead of wedging the append path; stale views keep
/// serving their last consistent state and REFRESH fully recovers them.
#[test]
fn exhausted_retries_go_stale_and_refresh_recovers() {
    let _guard = serial();
    let (session, views) = setup();
    sql(&session, "CREATE TABLE s (k BIGINT, v BIGINT)");
    sql(&session, "INSERT INTO s VALUES (1, 1), (2, 2)");
    let defining = "SELECT k, sum(v) FROM s GROUP BY k";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW sv AS {defining}"),
    );
    let before = rows_of(&sql(&session, "SELECT * FROM sv"));
    {
        let _apply = FailGuard::new(fp::MAINTAIN_APPLY, FailConfig::error("chaos wedge"));
        sql(&session, "INSERT INTO s VALUES (1, 10), (3, 30)");
        assert_eq!(views.stale_views(), vec!["sv".to_string()]);
        // The stale view serves its last consistent state, not a torn one.
        assert_eq!(rows_of(&sql(&session, "SELECT * FROM sv")), before);
        // A refresh attempt under the same storm at the refresh site is
        // a clean typed refusal.
        let _refresh = FailGuard::new(fp::REFRESH, FailConfig::error("chaos refresh"));
        assert!(!tolerated(run_op(|| {
            session.sql("REFRESH MATERIALIZED VIEW sv").map(|_| ())
        })));
        assert_eq!(rows_of(&sql(&session, "SELECT * FROM sv")), before);
    }
    heal_and_audit(&session, &views, &[("sv", defining)]);
    // Maintenance resumes incrementally after recovery.
    sql(&session, "INSERT INTO s VALUES (2, 20)");
    assert_matches_query(&session, "sv", defining);
}

/// Concurrent writers under a delay storm: slowed-down apply windows
/// must never let a reader observe a half-applied delta, and the final
/// state is exact.
#[test]
fn delay_storm_with_concurrent_writers_stays_consistent() {
    let _guard = serial();
    let (session, views) = setup();
    sql(&session, "CREATE TABLE w (k BIGINT, v BIGINT)");
    let defining = "SELECT k, count(*), sum(v) FROM w GROUP BY k";
    sql(
        &session,
        &format!("CREATE MATERIALIZED VIEW wv AS {defining}"),
    );
    let writers = 3usize;
    let per_writer = 3 * rounds() as i64;
    {
        let _apply = FailGuard::new(fp::MAINTAIN_APPLY, FailConfig::delay(1));
        std::thread::scope(|scope| {
            for w in 0..writers {
                let session = session.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let k = i % 4;
                        let v = w as i64 * per_writer + i;
                        session
                            .sql(&format!("INSERT INTO w VALUES ({k}, {v})"))
                            .unwrap()
                            .collect()
                            .unwrap();
                    }
                });
            }
            let reader = session.clone();
            scope.spawn(move || {
                let mut last_total = 0i64;
                for _ in 0..20 {
                    let chunk = sql(&reader, "SELECT * FROM wv");
                    let total: i64 = (0..chunk.len())
                        .map(|r| match chunk.value_at(1, r) {
                            Value::Int64(n) => n,
                            other => panic!("count column: {other:?}"),
                        })
                        .sum();
                    assert!(total >= last_total, "view went backwards");
                    last_total = total;
                    std::thread::yield_now();
                }
            });
        });
    }
    heal_and_audit(&session, &views, &[("wv", defining)]);
    let chunk = sql(&session, "SELECT * FROM wv");
    let total: i64 = (0..chunk.len())
        .map(|r| match chunk.value_at(1, r) {
            Value::Int64(n) => n,
            other => panic!("count column: {other:?}"),
        })
        .sum();
    assert_eq!(total, writers as i64 * per_writer, "lost or double deltas");
}
