//! Intra-crate concurrency analysis over the token stream.
//!
//! The concurrency rules (`lock-order`, `blocking-under-lock`,
//! `condvar-discipline`) need more than per-line token matching: they
//! must know *which guards are live* at each call site. This module
//! builds that model without a syntax tree, using three approximations
//! that are each conservative in a documented direction:
//!
//! 1. **Function bodies** are brace-matched spans starting at `fn name`.
//! 2. **Guard lifetime** is approximated by scope depth. A guard bound
//!    with `let g = …` lives until its enclosing brace closes or an
//!    explicit `drop(g)`. An *unbound* guard (a temporary, e.g. the
//!    scrutinee of `if let Some(x) = lock(&m).take()`) lives until the
//!    next `;` at its depth or until the statement's block closes back
//!    to its depth — which models Rust's temporary-lifetime extension
//!    through `match`/`if let` blocks.
//! 3. **One level of intra-crate call inlining**: a direct call to a
//!    crate function whose body itself acquires, blocks, or waits is
//!    surfaced at the call site via [`CrateModel::resolve`]. Calls are
//!    resolved by bare name, only when the name maps to exactly one
//!    effectful function in the crate; method calls only on a literal
//!    `self` receiver, and `Type::fn()` calls only when `Type` is
//!    declared in the crate — both guards against name collisions with
//!    std/foreign methods.
//!
//! Two wrapper shapes are recognized so the workspace's poison-recovering
//! helpers don't hide the protocol from the walker:
//!
//! * a **lock wrapper** (`fn lock<T>(m: &Mutex<T>) -> MutexGuard<T>`)
//!   whose body acquires on its own parameter — call sites become
//!   acquisitions of the lock named by the argument;
//! * a **wait wrapper** (`fn wait(cv: &Condvar, g: MutexGuard<T>)`)
//!   whose `.wait(g)` guard argument is a parameter — call sites become
//!   condvar waits, and the loop-discipline obligation moves to them.
//!
//! Known false-negative shapes (see DESIGN.md §8): calls through `dyn`
//! trait objects, guards returned from accessors, guards moved into
//! struct fields, destructuring `let` patterns, and anything deeper than
//! one call level.

use crate::{SourceFile, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// The lock name a guard protects. Receiver paths are normalized to
/// their **last segment** (`self.inner.state` → `state`), so the same
/// lock reached through a field and through a local `Arc` clone unifies;
/// same-named fields on different types within one crate merge into one
/// graph node (a documented over-approximation).
pub type LockName = String;

/// Wrapper classification for a crate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wrapper {
    /// Body acquires on its own parameter `param`; call sites acquire
    /// the lock named by that argument.
    Lock {
        /// Zero-based index of the `&Mutex<T>`/`&RwLock<T>` parameter.
        param: usize,
    },
    /// Body condvar-waits on a guard passed as parameter `guard_param`;
    /// call sites are waits and carry the while-loop obligation.
    Wait {
        /// Zero-based index of the `MutexGuard` parameter.
        guard_param: usize,
    },
}

/// A guard live at an operation, with where it was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Held {
    /// Normalized lock name.
    pub lock: LockName,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// What an operation does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A `Mutex`/`RwLock` acquisition (`held` excludes the new guard).
    Acquire {
        /// Normalized lock name being acquired.
        lock: LockName,
    },
    /// A condvar wait; the waited guard stays live across it.
    Wait {
        /// Lock whose guard is handed to the wait, when resolvable.
        guard_lock: Option<LockName>,
    },
    /// A `notify_one`/`notify_all` call.
    Notify {
        /// The notify method name.
        method: String,
    },
    /// A known-blocking call (I/O, join, channel recv, sleep).
    Blocking {
        /// The blocking method/function name.
        what: String,
    },
    /// An unresolved call made while guards are held — a candidate for
    /// one-level inlining via [`CrateModel::resolve`].
    Call {
        /// Bare callee name.
        callee: String,
        /// `Type::callee(…)` qualifier, when the call was path-qualified.
        /// Resolution requires the qualifier to be a type declared in
        /// this crate — `EngineError::corrupt(…)` must not resolve to an
        /// unrelated local `fn corrupt`.
        qualifier: Option<String>,
    },
}

/// One operation observed in a function body.
#[derive(Debug, Clone)]
pub struct Op {
    /// 1-based source line.
    pub line: u32,
    /// What happened.
    pub kind: OpKind,
    /// Guards live at this point, in acquisition order.
    pub held: Vec<Held>,
    /// True when the op sits lexically inside a `while`/`loop` body.
    pub in_loop: bool,
}

/// The analysis result for one function.
#[derive(Debug)]
pub struct FnAnalysis {
    /// Index into the analyzed file slice.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Operations in source order.
    pub ops: Vec<Op>,
    /// Wrapper classification, if any.
    pub wrapper: Option<Wrapper>,
}

impl FnAnalysis {
    /// Direct lock acquisitions in this body: `(lock, line)`.
    pub fn direct_acquires(&self) -> impl Iterator<Item = (&str, u32)> {
        self.ops.iter().filter_map(|op| match &op.kind {
            OpKind::Acquire { lock } => Some((lock.as_str(), op.line)),
            _ => None,
        })
    }

    /// Direct blocking calls in this body: `(what, line)`.
    pub fn direct_blocking(&self) -> impl Iterator<Item = (&str, u32)> {
        self.ops.iter().filter_map(|op| match &op.kind {
            OpKind::Blocking { what } => Some((what.as_str(), op.line)),
            _ => None,
        })
    }

    /// Direct condvar waits in this body (wrapper waits excluded at the
    /// crate level, not here).
    pub fn direct_waits(&self) -> impl Iterator<Item = u32> + '_ {
        self.ops.iter().filter_map(|op| match &op.kind {
            OpKind::Wait { .. } => Some(op.line),
            _ => None,
        })
    }

    fn is_effectful(&self) -> bool {
        self.ops.iter().any(|op| {
            matches!(
                op.kind,
                OpKind::Acquire { .. } | OpKind::Blocking { .. } | OpKind::Wait { .. }
            )
        })
    }
}

/// The per-crate model: every analyzed function plus name resolution for
/// one-level inlining.
#[derive(Debug)]
pub struct CrateModel {
    /// Crate path prefix, e.g. `crates/durable`.
    pub name: String,
    /// Analyzed functions across the crate's `src/` files.
    pub fns: Vec<FnAnalysis>,
    /// name → index into `fns`, only for unique effectful names.
    effectful: BTreeMap<String, usize>,
    /// Type names (`struct`/`enum`/`trait`/`union`) declared in the
    /// crate, used to vet `Type::fn()` call resolution.
    types: BTreeSet<String>,
}

impl CrateModel {
    /// Resolve a bare callee name to the crate's unique effectful
    /// function of that name, if any.
    pub fn effectful(&self, name: &str) -> Option<&FnAnalysis> {
        self.effectful.get(name).map(|&i| &self.fns[i])
    }

    /// Resolve a [`OpKind::Call`] for one-level inlining. Unqualified and
    /// `Self`/`self`-qualified calls resolve by name; `Type::fn()` calls
    /// resolve only when `Type` is declared in this crate (a foreign
    /// type's associated fn sharing a local fn's name must not inline).
    pub fn resolve(&self, callee: &str, qualifier: Option<&str>) -> Option<&FnAnalysis> {
        match qualifier {
            None | Some("Self") | Some("self") | Some("crate") => self.effectful(callee),
            Some(q) if self.types.contains(q) => self.effectful(callee),
            Some(_) => None,
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/<…>` up to
/// `/src/`), or `None` for tests, benches, and out-of-crate files.
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let idx = rest.find("/src/")?;
    Some(&path[..("crates/".len() + idx)])
}

/// Build per-crate models for every non-test `crates/*/src/` file.
/// Returned file indices point into `files`.
pub fn analyze(files: &[SourceFile]) -> Vec<CrateModel> {
    // Group file indices by crate.
    let mut by_crate: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, sf) in files.iter().enumerate() {
        if sf.is_test_path() {
            continue;
        }
        if let Some(c) = crate_of(&sf.path) {
            by_crate.entry(c.to_string()).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for (name, file_idxs) in by_crate {
        let mut raw: Vec<(usize, RawFn)> = Vec::new();
        for &fi in &file_idxs {
            for f in extract_fns(&files[fi]) {
                raw.push((fi, f));
            }
        }
        // Wrapper classification across the crate; same-named functions
        // must agree on a classification or none applies.
        let mut wrappers: BTreeMap<String, Option<Wrapper>> = BTreeMap::new();
        for (fi, f) in &raw {
            let w = classify_wrapper(&files[*fi], f);
            match wrappers.get(&f.name) {
                None => {
                    wrappers.insert(f.name.clone(), w);
                }
                Some(prev) if *prev != w => {
                    wrappers.insert(f.name.clone(), None);
                }
                Some(_) => {}
            }
        }
        let wrappers: BTreeMap<String, Wrapper> = wrappers
            .into_iter()
            .filter_map(|(k, v)| v.map(|w| (k, w)))
            .collect();
        let mut fns: Vec<FnAnalysis> = raw
            .iter()
            .map(|(fi, f)| FnAnalysis {
                file: *fi,
                name: f.name.clone(),
                line: f.line,
                ops: walk_fn(&files[*fi], f, &wrappers),
                wrapper: wrappers.get(&f.name).copied(),
            })
            .collect();
        fns.sort_by_key(|f| (f.file, f.line));
        // Effectful-name resolution: unique names only.
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for f in &fns {
            if f.is_effectful() {
                *counts.entry(f.name.clone()).or_default() += 1;
            }
        }
        let mut effectful: BTreeMap<String, usize> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_effectful() && counts[&f.name] == 1 {
                effectful.insert(f.name.clone(), i);
            }
        }
        // Declared type names, for vetting `Type::fn()` resolution.
        let mut types = BTreeSet::new();
        for &fi in &file_idxs {
            let toks = &files[fi].lexed.toks;
            for (i, t) in toks.iter().enumerate() {
                if t.kind == TokKind::Ident
                    && matches!(
                        t.text.as_str(),
                        "struct" | "enum" | "trait" | "union" | "type"
                    )
                {
                    if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        types.insert(n.text.clone());
                    }
                }
            }
        }
        out.push(CrateModel {
            name,
            fns,
            effectful,
            types,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------

struct RawFn {
    name: String,
    line: u32,
    params: Vec<String>,
    /// Token index range of the body, *inside* the braces.
    body: (usize, usize),
}

fn is_punct(sf: &SourceFile, i: usize, p: &str) -> bool {
    sf.lexed
        .toks
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

fn ident_at(sf: &SourceFile, i: usize) -> Option<&str> {
    sf.lexed
        .toks
        .get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

/// Extract brace-matched `fn` bodies, skipping test-masked regions.
fn extract_fns(sf: &SourceFile) -> Vec<RawFn> {
    let toks = &sf.lexed.toks;
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if ident_at(sf, i) != Some("fn") || sf.test_mask[i] {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(sf, i + 1) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        let line = toks[i].line;
        let mut j = i + 2;
        // Skip a generic parameter list, tolerating `->` inside bounds.
        if is_punct(sf, j, "<") {
            let mut depth = 1usize;
            j += 1;
            while j < n && depth > 0 {
                if is_punct(sf, j, "-") && is_punct(sf, j + 1, ">") {
                    j += 2;
                    continue;
                }
                if is_punct(sf, j, "<") {
                    depth += 1;
                } else if is_punct(sf, j, ">") {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if !is_punct(sf, j, "(") {
            i += 1;
            continue;
        }
        // Parameter names: `ident :` at paren depth 1 (skipping `mut`,
        // and the `self` receiver which is never a named parameter).
        let mut params = Vec::new();
        let mut depth = 1usize;
        j += 1;
        while j < n && depth > 0 {
            if is_punct(sf, j, "(") {
                depth += 1;
            } else if is_punct(sf, j, ")") {
                depth -= 1;
            } else if depth == 1 && is_punct(sf, j + 1, ":") {
                if let Some(id) = ident_at(sf, j) {
                    if id != "self" && id != "mut" {
                        params.push(id.to_string());
                    }
                }
            }
            j += 1;
        }
        // Find the body: first `{` before any `;` (a `;` means a
        // bodiless trait method / extern decl).
        let mut open = None;
        while j < n {
            if is_punct(sf, j, "{") {
                open = Some(j);
                break;
            }
            if is_punct(sf, j, ";") {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let mut depth = 1usize;
        let mut e = open + 1;
        while e < n && depth > 0 {
            if is_punct(sf, e, "{") {
                depth += 1;
            } else if is_punct(sf, e, "}") {
                depth -= 1;
            }
            e += 1;
        }
        out.push(RawFn {
            name,
            line,
            params,
            body: (open + 1, e.saturating_sub(1)),
        });
        // Continue scanning *inside* the body too, so nested fns are
        // extracted in their own right (the walker skips nested bodies).
        i += 2;
    }
    out
}

// ---------------------------------------------------------------------
// Wrapper classification
// ---------------------------------------------------------------------

/// Token budget above which a function is too big to be a trivial
/// lock/wait helper — wrappers must be single-expression shims.
const WRAPPER_MAX_TOKS: usize = 60;

fn classify_wrapper(sf: &SourceFile, f: &RawFn) -> Option<Wrapper> {
    let (start, end) = f.body;
    if end.saturating_sub(start) > WRAPPER_MAX_TOKS || f.params.is_empty() {
        return None;
    }
    let mut i = start;
    while i < end {
        // `param.lock()` / `param.read()` / `param.write()`
        if let Some(id) = ident_at(sf, i) {
            if ACQUIRE_METHODS.contains(&id)
                && is_punct(sf, i.wrapping_sub(1), ".")
                && is_punct(sf, i + 1, "(")
                && is_punct(sf, i + 2, ")")
            {
                if let Some(recv) = ident_at(sf, i - 2) {
                    if !is_punct(sf, i.wrapping_sub(3), ".") {
                        if let Some(p) = f.params.iter().position(|p| p == recv) {
                            return Some(Wrapper::Lock { param: p });
                        }
                    }
                }
            }
            // `cv.wait(g)` where `g` is a parameter.
            if (id == "wait" || id == "wait_timeout" || id == "wait_while")
                && is_punct(sf, i.wrapping_sub(1), ".")
                && is_punct(sf, i + 1, "(")
            {
                if let Some(g) = ident_at(sf, i + 2) {
                    if is_punct(sf, i + 3, ")") || is_punct(sf, i + 3, ",") {
                        if let Some(p) = f.params.iter().position(|p| p == g) {
                            return Some(Wrapper::Wait { guard_param: p });
                        }
                    }
                }
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// The guard-liveness walker
// ---------------------------------------------------------------------

/// Methods whose empty-argument form acquires a guard. The empty-parens
/// requirement disambiguates from `io::Read::read(&mut buf)` and
/// friends, which always take arguments.
pub const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Method names that block the calling thread. `join` and `recv`
/// additionally require empty argument lists (`PathBuf::join(p)` and
/// `read(&mut buf)`-style callees take arguments).
const BLOCKING_METHODS: [&str; 12] = [
    "write_all",
    "read_exact",
    "read_to_end",
    "sync_all",
    "sync_data",
    "fsync",
    "fdatasync",
    "flush",
    "recv_timeout",
    "sleep",
    "connect",
    "accept",
];

const KEYWORDS: [&str; 30] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "move", "in", "as",
    "ref", "mut", "break", "continue", "unsafe", "impl", "pub", "use", "where", "struct", "enum",
    "trait", "type", "const", "static", "dyn", "async", "await",
];

struct GuardState {
    lock: LockName,
    binding: Option<String>,
    depth: usize,
    line: u32,
}

struct Walker<'a> {
    sf: &'a SourceFile,
    wrappers: &'a BTreeMap<String, Wrapper>,
    scopes: Vec<bool>, // true = loop body
    pending_loop: bool,
    guards: Vec<GuardState>,
    ops: Vec<Op>,
}

impl<'a> Walker<'a> {
    fn held(&self) -> Vec<Held> {
        self.guards
            .iter()
            .map(|g| Held {
                lock: g.lock.clone(),
                line: g.line,
            })
            .collect()
    }

    fn in_loop(&self) -> bool {
        self.scopes.iter().any(|&l| l)
    }

    fn push_op(&mut self, line: u32, kind: OpKind) {
        let held = self.held();
        let in_loop = self.in_loop();
        self.ops.push(Op {
            line,
            kind,
            held,
            in_loop,
        });
    }

    /// Kill guards on scope exit: everything acquired in the closing
    /// scope, plus unbound temporaries whose owning statement (a
    /// `match`/`if let` with a block) just ended.
    fn close_scope(&mut self) {
        let d = self.scopes.len();
        self.guards.retain(|g| g.depth < d);
        self.scopes.pop();
        let d = self.scopes.len();
        self.guards.retain(|g| g.binding.is_some() || g.depth < d);
    }

    /// Kill unbound temporaries at a statement boundary.
    fn end_statement(&mut self) {
        let d = self.scopes.len();
        self.guards.retain(|g| g.binding.is_some() || g.depth < d);
    }
}

/// The receiver path ending just before token `dot` (which holds `.`),
/// normalized to its last segment. Returns `None` when no identifier
/// precedes the dot.
fn receiver_last_segment(sf: &SourceFile, dot: usize) -> Option<(String, usize)> {
    // Walk backwards over `ident (. ident|num)*`; remember the start.
    let toks = &sf.lexed.toks;
    let mut i = dot; // points at `.`
    let mut last: Option<String> = None;
    let mut start = dot;
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        let is_seg = prev.kind == TokKind::Ident || prev.kind == TokKind::Num;
        if !is_seg {
            break;
        }
        if last.is_none() && !(prev.kind == TokKind::Ident && prev.text == "self") {
            last = Some(prev.text.clone());
        }
        start = i - 1;
        if i >= 2 && toks[i - 2].kind == TokKind::Punct && toks[i - 2].text == "." {
            i -= 2;
        } else {
            break;
        }
    }
    let seg = last.or_else(|| {
        // Pure-`self` receivers normalize to "self".
        (start < dot).then(|| "self".to_string())
    })?;
    Some((seg, start))
}

/// Detect a `let [mut] NAME =` (or `NAME =` reassignment) immediately
/// before token `start`, returning the bound name.
fn binding_before(sf: &SourceFile, start: usize) -> Option<String> {
    let toks = &sf.lexed.toks;
    let mut i = start;
    // Skip over `&`, `*`, `mut` between `=` and the expression.
    while i > 0 {
        let t = &toks[i - 1];
        let skip = (t.kind == TokKind::Punct && (t.text == "&" || t.text == "*"))
            || (t.kind == TokKind::Ident && t.text == "mut");
        if skip {
            i -= 1;
        } else {
            break;
        }
    }
    if i == 0 || !(toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "=") {
        return None;
    }
    // `==`, `!=`, `>=` etc. are two Punct tokens; reject comparisons.
    if i >= 2
        && toks[i - 2].kind == TokKind::Punct
        && matches!(toks[i - 2].text.as_str(), "=" | "!" | "<" | ">" | "+" | "-")
    {
        return None;
    }
    let name = toks.get(i.wrapping_sub(2))?;
    if name.kind != TokKind::Ident || KEYWORDS.contains(&name.text.as_str()) {
        return None;
    }
    Some(name.text.clone())
}

/// True when the acquire expression ending at `close` (the `)` token) is
/// immediately projected — `lock(&m).field` or `m.lock().len()` — so any
/// preceding `let` binds the projection, not the guard, and the guard is
/// a statement temporary. `.unwrap()`/`.expect(…)` return the guard
/// itself and do not count as projections.
fn projected_away(sf: &SourceFile, close: usize) -> bool {
    let mut close = close;
    loop {
        if !is_punct(sf, close + 1, ".") {
            return false;
        }
        match ident_at(sf, close + 2) {
            // These return the guard itself; skip over their `(…)` and
            // look at what follows.
            Some("unwrap") | Some("expect") if is_punct(sf, close + 3, "(") => {
                let (_, c) = split_args(sf, close + 3);
                close = c;
            }
            Some(_) => return true,
            None => return false,
        }
    }
}

/// Last path segment of a call argument (`&self.inner.state` → `state`).
fn arg_last_segment(sf: &SourceFile, args: &[(usize, usize)], idx: usize) -> Option<String> {
    let &(start, end) = args.get(idx)?;
    let toks = &sf.lexed.toks;
    let mut last = None;
    for t in &toks[start..end] {
        match t.kind {
            TokKind::Ident if t.text != "self" && t.text != "mut" => {
                last = Some(t.text.clone());
            }
            TokKind::Num => last = Some(t.text.clone()),
            _ => {}
        }
    }
    last
}

/// Split the argument tokens of a call whose `(` is at `open` into
/// top-level comma-separated ranges; returns the ranges and the index of
/// the closing `)`.
fn split_args(sf: &SourceFile, open: usize) -> (Vec<(usize, usize)>, usize) {
    let toks = &sf.lexed.toks;
    let n = toks.len();
    let mut depth = 1usize;
    let mut i = open + 1;
    let mut start = i;
    let mut out = Vec::new();
    while i < n && depth > 0 {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        if i > start {
                            out.push((start, i));
                        }
                        return (out, i);
                    }
                }
                "," if depth == 1 => {
                    out.push((start, i));
                    start = i + 1;
                }
                _ => {}
            }
        }
        i += 1;
    }
    (out, i.min(n.saturating_sub(1)))
}

fn walk_fn(sf: &SourceFile, f: &RawFn, wrappers: &BTreeMap<String, Wrapper>) -> Vec<Op> {
    let toks = &sf.lexed.toks;
    let mut w = Walker {
        sf,
        wrappers,
        scopes: vec![false], // the fn body itself
        pending_loop: false,
        guards: Vec::new(),
        ops: Vec::new(),
    };
    let (start, end) = f.body;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                w.scopes.push(std::mem::take(&mut w.pending_loop));
            }
            (TokKind::Punct, "}") => {
                w.close_scope();
                w.pending_loop = false;
            }
            (TokKind::Punct, ";") => {
                w.end_statement();
                w.pending_loop = false;
            }
            (TokKind::Ident, "while") | (TokKind::Ident, "loop") => {
                w.pending_loop = true;
            }
            (TokKind::Ident, "fn") => {
                // Skip nested fn bodies — they're analyzed separately.
                let mut j = i + 1;
                while j < end && !is_punct(sf, j, "{") && !is_punct(sf, j, ";") {
                    j += 1;
                }
                if is_punct(sf, j, "{") {
                    let mut depth = 1usize;
                    j += 1;
                    while j < end && depth > 0 {
                        if is_punct(sf, j, "{") {
                            depth += 1;
                        } else if is_punct(sf, j, "}") {
                            depth -= 1;
                        }
                        j += 1;
                    }
                }
                i = j;
                continue;
            }
            (TokKind::Ident, "drop") if is_punct(sf, i + 1, "(") && is_punct(sf, i + 3, ")") => {
                if let Some(name) = ident_at(sf, i + 2) {
                    if let Some(pos) = w
                        .guards
                        .iter()
                        .rposition(|g| g.binding.as_deref() == Some(name))
                    {
                        w.guards.remove(pos);
                    }
                }
                i += 4;
                continue;
            }
            (TokKind::Ident, id) if is_punct(sf, i + 1, "(") => {
                let method = i > 0 && is_punct(sf, i - 1, ".");
                let qualified = i > 0 && is_punct(sf, i - 1, ":");
                if method {
                    if let Some(advance) = w.method_call(i, id) {
                        i = advance;
                        continue;
                    }
                } else if let Some(advance) = w.free_call(i, id, qualified) {
                    i = advance;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    w.ops
}

impl<'a> Walker<'a> {
    /// Handle `recv.NAME(…)`; returns the token index to resume at.
    fn method_call(&mut self, i: usize, id: &str) -> Option<usize> {
        let sf = self.sf;
        let line = sf.tok(i).line;
        let empty = is_punct(sf, i + 2, ")");
        if ACQUIRE_METHODS.contains(&id) && empty {
            let (lock, recv_start) = receiver_last_segment(sf, i - 1)?;
            let binding = if projected_away(sf, i + 2) {
                None
            } else {
                binding_before(sf, recv_start)
            };
            self.push_op(line, OpKind::Acquire { lock: lock.clone() });
            let depth = self.scopes.len();
            self.guards.push(GuardState {
                lock,
                binding,
                depth,
                line,
            });
            return Some(i + 3);
        }
        if matches!(id, "wait" | "wait_timeout" | "wait_while") && !empty {
            if let Some(g) = ident_at(sf, i + 2) {
                if is_punct(sf, i + 3, ")") || is_punct(sf, i + 3, ",") {
                    let guard_lock = self
                        .guards
                        .iter()
                        .rev()
                        .find(|gs| gs.binding.as_deref() == Some(g))
                        .map(|gs| gs.lock.clone());
                    self.push_op(line, OpKind::Wait { guard_lock });
                    let (_, close) = split_args(sf, i + 1);
                    return Some(close + 1);
                }
            }
        }
        if id == "notify_one" || id == "notify_all" {
            self.push_op(
                line,
                OpKind::Notify {
                    method: id.to_string(),
                },
            );
            return Some(i + 2);
        }
        if self.is_blocking(id, empty) {
            self.push_op(
                line,
                OpKind::Blocking {
                    what: id.to_string(),
                },
            );
            return Some(i + 2);
        }
        // Unresolved method call with guards held → inline candidate.
        // Only `self.method()` resolves reliably; `map.get()` or
        // `path.exists()` would collide with same-named crate functions.
        if !self.guards.is_empty() && !KEYWORDS.contains(&id) {
            let self_recv = ident_at(sf, i.wrapping_sub(2)) == Some("self")
                && !is_punct(sf, i.wrapping_sub(3), ".");
            if self_recv {
                self.push_op(
                    line,
                    OpKind::Call {
                        callee: id.to_string(),
                        qualifier: None,
                    },
                );
            }
        }
        None
    }

    /// Handle a free or `::`-qualified call; returns the resume index.
    fn free_call(&mut self, i: usize, id: &str, qualified: bool) -> Option<usize> {
        let sf = self.sf;
        let line = sf.tok(i).line;
        match self.wrappers.get(id) {
            Some(&Wrapper::Lock { param }) => {
                let (args, close) = split_args(sf, i + 1);
                let lock = arg_last_segment(sf, &args, param)?;
                let binding = if projected_away(sf, close) {
                    None
                } else {
                    binding_before(sf, i)
                };
                self.push_op(line, OpKind::Acquire { lock: lock.clone() });
                let depth = self.scopes.len();
                self.guards.push(GuardState {
                    lock,
                    binding,
                    depth,
                    line,
                });
                return Some(close + 1);
            }
            Some(&Wrapper::Wait { guard_param }) => {
                let (args, close) = split_args(sf, i + 1);
                let guard_lock = args.get(guard_param).and_then(|&(s, e)| {
                    self.sf.lexed.toks[s..e]
                        .iter()
                        .rev()
                        .find(|t| t.kind == TokKind::Ident)
                        .and_then(|t| {
                            self.guards
                                .iter()
                                .rev()
                                .find(|gs| gs.binding.as_deref() == Some(t.text.as_str()))
                                .map(|gs| gs.lock.clone())
                        })
                });
                self.push_op(line, OpKind::Wait { guard_lock });
                return Some(close + 1);
            }
            None => {}
        }
        let empty = is_punct(sf, i + 2, ")");
        if qualified && self.is_blocking(id, empty) {
            self.push_op(
                line,
                OpKind::Blocking {
                    what: id.to_string(),
                },
            );
            return Some(i + 2);
        }
        if !self.guards.is_empty() && !KEYWORDS.contains(&id) {
            // `Type::fn(…)` — record the path qualifier so resolution can
            // reject associated fns of types not declared in this crate.
            let qualifier = (qualified && is_punct(sf, i.wrapping_sub(2), ":"))
                .then(|| ident_at(sf, i.wrapping_sub(3)).map(str::to_string))
                .flatten();
            self.push_op(
                line,
                OpKind::Call {
                    callee: id.to_string(),
                    qualifier,
                },
            );
        }
        None
    }

    fn is_blocking(&self, id: &str, empty_args: bool) -> bool {
        if id == "join" || id == "recv" {
            // `PathBuf::join(p)` / `Read::read`-style callees take args;
            // only the empty-argument forms block.
            return empty_args;
        }
        BLOCKING_METHODS.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> CrateModel {
        let files = vec![SourceFile::new("crates/demo/src/lib.rs".into(), src)];
        let mut models = analyze(&files);
        assert_eq!(models.len(), 1);
        models.remove(0)
    }

    fn find<'m>(m: &'m CrateModel, name: &str) -> &'m FnAnalysis {
        m.fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn crate_of_parses_paths() {
        assert_eq!(
            crate_of("crates/durable/src/wal.rs"),
            Some("crates/durable")
        );
        assert_eq!(
            crate_of("crates/shims/parking_lot/src/lib.rs"),
            Some("crates/shims/parking_lot")
        );
        assert_eq!(crate_of("crates/core/tests/chaos.rs"), None);
        assert_eq!(crate_of("examples/demo.rs"), None);
    }

    #[test]
    fn nested_acquisition_records_held_set() {
        let m = model(
            "fn f(a: &M, b: &M) {\n\
             let g1 = a.lock();\n\
             let g2 = b.lock();\n\
             }\n",
        );
        let f = find(&m, "f");
        let acquires: Vec<_> = f
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Acquire { .. }))
            .collect();
        assert_eq!(acquires.len(), 2);
        assert!(acquires[0].held.is_empty());
        assert_eq!(acquires[1].held.len(), 1);
        assert_eq!(acquires[1].held[0].lock, "a");
    }

    #[test]
    fn scoped_guard_dies_before_second_acquire() {
        let m = model(
            "fn f(s: &S) {\n\
             { let r = s.batches.read(); r.len(); }\n\
             let w = s.batches.write();\n\
             }\n",
        );
        let f = find(&m, "f");
        let acquires: Vec<_> = f
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Acquire { .. }))
            .collect();
        assert_eq!(acquires.len(), 2);
        assert!(acquires[1].held.is_empty(), "{:?}", acquires[1]);
    }

    #[test]
    fn drop_releases_bound_guard() {
        let m = model(
            "fn f(s: &S) {\n\
             let g = s.m.lock();\n\
             drop(g);\n\
             s.file.write_all(b\"x\");\n\
             }\n",
        );
        let f = find(&m, "f");
        let blocking = f
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Blocking { .. }))
            .unwrap();
        assert!(blocking.held.is_empty());
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let m = model(
            "fn f(s: &S) {\n\
             s.m.lock().push(1);\n\
             s.file.sync_data();\n\
             }\n",
        );
        let f = find(&m, "f");
        let blocking = f
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Blocking { .. }))
            .unwrap();
        assert!(blocking.held.is_empty());
    }

    #[test]
    fn if_let_scrutinee_temporary_lives_through_block() {
        let m = model(
            "fn f(s: &S) {\n\
             if let Some(h) = s.writer.lock().take() {\n\
             h.join();\n\
             }\n\
             s.file.sync_data();\n\
             }\n",
        );
        let f = find(&m, "f");
        let join = f
            .ops
            .iter()
            .find(|o| matches!(&o.kind, OpKind::Blocking { what } if what == "join"))
            .unwrap();
        assert_eq!(join.held.len(), 1, "{:?}", f.ops);
        assert_eq!(join.held[0].lock, "writer");
        let sync = f
            .ops
            .iter()
            .find(|o| matches!(&o.kind, OpKind::Blocking { what } if what == "sync_data"))
            .unwrap();
        assert!(sync.held.is_empty(), "temp must die when the if-let closes");
    }

    #[test]
    fn lock_wrapper_resolves_at_call_sites() {
        let m = model(
            "fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {\n\
             m.lock().unwrap_or_else(PoisonError::into_inner)\n\
             }\n\
             fn f(s: &S) {\n\
             let st = lock(&s.inner.state);\n\
             let q = lock(&s.queue);\n\
             }\n",
        );
        assert_eq!(find(&m, "lock").wrapper, Some(Wrapper::Lock { param: 0 }));
        let f = find(&m, "f");
        let acquires: Vec<_> = f
            .ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Acquire { lock } => Some((lock.clone(), o.held.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(acquires.len(), 2);
        assert_eq!(acquires[0].0, "state");
        assert_eq!(acquires[1].0, "queue");
        assert_eq!(acquires[1].1[0].lock, "state");
    }

    #[test]
    fn wait_wrapper_moves_obligation_to_call_site() {
        let m = model(
            "fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {\n\
             cv.wait(g).unwrap_or_else(PoisonError::into_inner)\n\
             }\n\
             fn looped(s: &S) {\n\
             let mut st = s.state.lock();\n\
             while st.busy {\n\
             st = wait(&s.cv, st);\n\
             }\n\
             }\n\
             fn unlooped(s: &S) {\n\
             let mut st = s.state.lock();\n\
             st = wait(&s.cv, st);\n\
             }\n",
        );
        assert_eq!(
            find(&m, "wait").wrapper,
            Some(Wrapper::Wait { guard_param: 1 })
        );
        let looped = find(&m, "looped");
        let wait_op = looped
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Wait { .. }))
            .unwrap();
        assert!(wait_op.in_loop);
        assert_eq!(
            wait_op.kind,
            OpKind::Wait {
                guard_lock: Some("state".into())
            }
        );
        let unlooped = find(&m, "unlooped");
        let wait_op = unlooped
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Wait { .. }))
            .unwrap();
        assert!(!wait_op.in_loop);
    }

    #[test]
    fn direct_wait_in_while_is_in_loop() {
        let m = model(
            "fn f(s: &S) {\n\
             let mut g = s.m.lock();\n\
             while !*g {\n\
             g = s.cv.wait(g).unwrap();\n\
             }\n\
             }\n",
        );
        let f = find(&m, "f");
        let wait_op = f
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Wait { .. }))
            .unwrap();
        assert!(wait_op.in_loop);
        assert_eq!(
            wait_op.kind,
            OpKind::Wait {
                guard_lock: Some("m".into())
            }
        );
    }

    #[test]
    fn notify_and_call_record_held() {
        let m = model(
            "fn helper(s: &S) { s.other.lock(); }\n\
             fn f(s: &S) {\n\
             let g = s.m.lock();\n\
             helper(s);\n\
             drop(g);\n\
             s.cv.notify_all();\n\
             }\n",
        );
        let f = find(&m, "f");
        let call = f
            .ops
            .iter()
            .find(|o| matches!(&o.kind, OpKind::Call { callee, .. } if callee == "helper"))
            .unwrap();
        assert_eq!(call.held.len(), 1);
        let notify = f
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Notify { .. }))
            .unwrap();
        assert!(notify.held.is_empty());
        assert!(m.effectful("helper").is_some());
    }

    #[test]
    fn test_mask_and_test_paths_are_skipped() {
        let files = vec![
            SourceFile::new(
                "crates/demo/src/lib.rs".into(),
                "#[cfg(test)]\nmod tests {\nfn t(s: &S) { s.m.lock(); }\n}\n",
            ),
            SourceFile::new(
                "crates/demo/tests/x.rs".into(),
                "fn f(s: &S) { s.m.lock(); }\n",
            ),
        ];
        let models = analyze(&files);
        assert!(models
            .iter()
            .all(|m| m.fns.iter().all(|f| f.ops.is_empty())));
    }

    #[test]
    fn projected_acquire_is_a_statement_temporary() {
        // `let synced = s.state.lock().synced_len;` binds the projection,
        // not the guard — the guard must be gone by the next statement.
        let m = model(
            "fn f(s: &S) {\n\
             let synced = s.state.lock().synced_len;\n\
             let g = s.path.lock();\n\
             }\n",
        );
        let f = find(&m, "f");
        let acq: Vec<_> = f
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Acquire { .. }))
            .collect();
        assert_eq!(acq.len(), 2);
        assert!(
            acq[1].held.is_empty(),
            "projected guard must not outlive its statement: {:?}",
            acq[1].held
        );
    }

    #[test]
    fn unwrap_chain_still_binds_the_guard() {
        let m = model(
            "fn f(s: &S) {\n\
             let g = s.state.lock().unwrap();\n\
             let h = s.path.lock();\n\
             }\n",
        );
        let f = find(&m, "f");
        let acq: Vec<_> = f
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Acquire { .. }))
            .collect();
        assert_eq!(acq[1].held.len(), 1, "unwrap() returns the guard itself");
        assert_eq!(acq[1].held[0].lock, "state");
    }

    #[test]
    fn foreign_type_qualified_call_does_not_resolve() {
        // `Other::effect()` where `Other` is not declared in the crate
        // must not inline the local effectful `fn effect`.
        let m = model(
            "fn effect(s: &S) { s.inner.lock(); }\n\
             fn f(s: &S) {\n\
             let g = s.outer.lock();\n\
             let e = Other::effect(s);\n\
             }\n",
        );
        let f = find(&m, "f");
        let call = f
            .ops
            .iter()
            .find(|o| matches!(&o.kind, OpKind::Call { callee, .. } if callee == "effect"))
            .expect("call op recorded");
        let OpKind::Call { callee, qualifier } = &call.kind else {
            unreachable!()
        };
        assert_eq!(qualifier.as_deref(), Some("Other"));
        assert!(m.resolve(callee, qualifier.as_deref()).is_none());
        // Unqualified resolution still works.
        assert!(m.resolve(callee, None).is_some());
    }

    #[test]
    fn local_type_qualified_call_resolves() {
        let m = model(
            "struct Gate;\n\
             fn close(s: &S) { s.gate.lock(); }\n\
             fn f(s: &S) {\n\
             let g = s.outer.lock();\n\
             let c = Gate::close(s);\n\
             }\n",
        );
        assert!(m.resolve("close", Some("Gate")).is_some());
        assert!(m.resolve("close", Some("Elsewhere")).is_none());
    }

    #[test]
    fn non_self_method_call_is_not_an_inline_candidate() {
        let m = model(
            "fn get(s: &S) { s.inner.lock(); }\n\
             fn f(s: &S, map: &Map) {\n\
             let g = s.outer.lock();\n\
             let v = map.get(1);\n\
             let w = s.get(2);\n\
             }\n",
        );
        let f = find(&m, "f");
        let calls: Vec<_> = f
            .ops
            .iter()
            .filter(|o| matches!(&o.kind, OpKind::Call { callee, .. } if callee == "get"))
            .collect();
        assert!(
            calls.is_empty(),
            "neither map.get() nor s.get() is a self-receiver call: {calls:?}"
        );
    }
}
