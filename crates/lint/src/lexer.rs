//! A lightweight Rust tokenizer for static analysis.
//!
//! The workspace builds fully offline, so `idf-lint` cannot depend on
//! `syn`/`proc-macro2`. This lexer implements just enough of the Rust
//! lexical grammar for invariant checking to be reliable:
//!
//! * line (`//`) and nested block (`/* */`) comments are captured
//!   separately from code tokens, so rules can match `SAFETY:` blocks and
//!   suppression comments without string literals confusing them;
//! * cooked, raw (`r#"…"#`), byte, and byte-raw string literals, char
//!   literals, and lifetimes are recognized, so an `unsafe` inside a
//!   string never registers as a keyword;
//! * every token carries its 1-based source line for findings.
//!
//! It deliberately does **not** build a syntax tree: rules operate on the
//! flat token stream plus brace matching, which is robust against the
//! subset of Rust this workspace uses and degrades loudly (token soup
//! simply fails to match a rule pattern) rather than silently.

/// Classification of one code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// Lifetime such as `'g` (text excludes the quote).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal of any flavor; `text` holds the unquoted content.
    Str,
    /// Char or byte literal; `text` holds the raw inner content.
    Char,
    /// Single punctuation character (`text` is that one char).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its covered line range.
#[derive(Debug, Clone)]
pub struct Comment {
    /// First 1-based line of the comment.
    pub line_start: u32,
    /// Last 1-based line of the comment.
    pub line_end: u32,
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comments that cover `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line_start <= line && line <= c.line_end)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated literals simply consume the
/// rest of the file, which keeps the linter total on malformed fixtures.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Peek helper closures cannot borrow `i`/`line` mutably, so the loop
    // body manipulates indices directly.
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line_start: line,
                line_end: line,
                text: chars[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let line_start = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                    text.push_str("/*");
                    continue;
                }
                if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    continue;
                }
                if chars[j] == '\n' {
                    line += 1;
                }
                text.push(chars[j]);
                j += 1;
            }
            out.comments.push(Comment {
                line_start,
                line_end: line,
                text,
            });
            i = j;
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r" r#" b" br" b' …
        if is_ident_start(c) {
            // Check literal prefixes before consuming a plain identifier.
            let rest = |k: usize| -> Option<char> { chars.get(i + k).copied() };
            let raw_string_after = |k: usize| -> bool {
                // At offset k expect `#*"` (zero or more hashes then a quote).
                let mut j = i + k;
                while j < n && chars[j] == '#' {
                    j += 1;
                }
                j < n && chars[j] == '"'
            };
            if c == 'r' && (rest(1) == Some('"') || (rest(1) == Some('#') && raw_string_after(1))) {
                let (tok, ni, nl) = lex_raw_string(&chars, i + 1, line);
                out.toks.push(tok);
                i = ni;
                line = nl;
                continue;
            }
            if c == 'r' && rest(1) == Some('#') && rest(2).is_some_and(is_ident_start) {
                // Raw identifier r#ident.
                let mut j = i + 2;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[i + 2..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            if (c == 'b' || c == 'c') && rest(1) == Some('"') {
                let (tok, ni, nl) = lex_cooked_string(&chars, i + 1, line);
                out.toks.push(tok);
                i = ni;
                line = nl;
                continue;
            }
            if c == 'b'
                && rest(1) == Some('r')
                && (rest(2) == Some('"') || (rest(2) == Some('#') && raw_string_after(2)))
            {
                let (tok, ni, nl) = lex_raw_string(&chars, i + 2, line);
                out.toks.push(tok);
                i = ni;
                line = nl;
                continue;
            }
            if c == 'b' && rest(1) == Some('\'') {
                let (tok, ni) = lex_char(&chars, i + 1, line);
                out.toks.push(tok);
                i = ni;
                continue;
            }
            // Plain identifier/keyword.
            let mut j = i;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Cooked string.
        if c == '"' {
            let (tok, ni, nl) = lex_cooked_string(&chars, i, line);
            out.toks.push(tok);
            i = ni;
            line = nl;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = match next {
                Some('\\') => false,
                Some(ch) if is_ident_start(ch) => after != Some('\''),
                _ => false,
            };
            if is_lifetime {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            let (tok, ni) = lex_char(&chars, i, line);
            out.toks.push(tok);
            i = ni;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n {
                let ch = chars[j];
                if is_ident_continue(ch) {
                    j += 1;
                    continue;
                }
                // Consume a decimal point only when followed by a digit
                // (so `0..10` stays three tokens).
                if ch == '.' && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                    j += 2;
                    continue;
                }
                break;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Single punctuation char.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Lex a cooked (escaped) string whose opening quote is at `start`.
/// Returns the token, the index past the closing quote, and the new line.
fn lex_cooked_string(chars: &[char], start: usize, mut line: u32) -> (Tok, usize, u32) {
    let tok_line = line;
    let n = chars.len();
    let mut j = start + 1;
    let mut text = String::new();
    while j < n {
        match chars[j] {
            '\\' => {
                // Keep the escaped char verbatim; rules only substring-match.
                if let Some(&e) = chars.get(j + 1) {
                    text.push(e);
                    if e == '\n' {
                        line += 1;
                    }
                }
                j += 2;
            }
            '"' => {
                j += 1;
                break;
            }
            ch => {
                if ch == '\n' {
                    line += 1;
                }
                text.push(ch);
                j += 1;
            }
        }
    }
    (
        Tok {
            kind: TokKind::Str,
            text,
            line: tok_line,
        },
        j,
        line,
    )
}

/// Lex a raw string whose hashes/quote begin at `start` (past `r`/`br`).
fn lex_raw_string(chars: &[char], start: usize, mut line: u32) -> (Tok, usize, u32) {
    let tok_line = line;
    let n = chars.len();
    let mut hashes = 0usize;
    let mut j = start;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let content_start = j;
    let mut content_end = n;
    while j < n {
        if chars[j] == '"' {
            // Need `hashes` following '#'.
            let mut k = 0usize;
            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                content_end = j;
                j += 1 + hashes;
                break;
            }
        }
        if chars[j] == '\n' {
            line += 1;
        }
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Str,
            text: chars[content_start..content_end.min(n)].iter().collect(),
            line: tok_line,
        },
        j,
        line,
    )
}

/// Lex a char/byte-char literal whose opening quote is at `start`.
fn lex_char(chars: &[char], start: usize, line: u32) -> (Tok, usize) {
    let n = chars.len();
    let mut j = start + 1;
    let mut text = String::new();
    while j < n {
        match chars[j] {
            '\\' => {
                if let Some(&e) = chars.get(j + 1) {
                    text.push(e);
                }
                j += 2;
            }
            '\'' => {
                j += 1;
                break;
            }
            ch => {
                text.push(ch);
                j += 1;
            }
        }
    }
    (
        Tok {
            kind: TokKind::Char,
            text,
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn keywords_in_strings_and_comments_are_not_tokens() {
        let src = r##"
            // unsafe in a comment
            /* unsafe in a block */
            let a = "unsafe in a string";
            let b = r#"unsafe in a raw string"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "got {ids:?}");
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn comments_carry_lines_and_text() {
        let src = "let x = 1;\n// SAFETY: fine\nlet y = 2;\n/* multi\nline */\n";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].line_start, 2);
        assert!(lx.comments[0].text.contains("SAFETY:"));
        assert_eq!(lx.comments[1].line_start, 4);
        assert_eq!(lx.comments[1].line_end, 5);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'g>(x: &'g str) -> char { 'g' }");
        let lifetimes: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lx.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "g");
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let lx = lex(r####"let s = r##"has "quote" and # inside"##;"####);
        let strs: Vec<_> = lx.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("\"quote\""));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let lx = lex(r#"let a = b"bytes"; let r#unsafe = 1;"#);
        let strs: Vec<_> = lx.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "bytes");
        // The raw identifier is an Ident token (not the `unsafe` keyword
        // as far as rules are concerned — rules see text "unsafe" though,
        // which is acceptable for this workspace: raw idents are unused).
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lx = lex("for i in 0..10 { a[i] }");
        let nums: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn string_values_survive_for_matching() {
        let lx = lex(r#"pub const X: &str = "core::append::encode";"#);
        let strs: Vec<_> = lx.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "core::append::encode");
    }

    #[test]
    fn line_numbers_advance_through_all_literal_kinds() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let lx = lex(src);
        let b = lx.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
