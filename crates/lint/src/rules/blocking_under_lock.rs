//! Rule `blocking-under-lock`: no blocking call while a hot-path
//! `Mutex`/`RwLock` guard is live.
//!
//! A guard held across `fsync`/socket I/O/`join`/channel-recv turns one
//! slow syscall into a convoy: every thread that touches that lock
//! queues behind the storage stack. The serving paths (ctrie, core
//! storage, serve, durable, views — [`LintConfig::blocking_lock_prefixes`])
//! must keep guard scopes free of blocking calls; deliberate cases (the
//! WAL group-commit drain writes under the file lock *by design*) carry
//! an inline allow with a one-line why, which is the audit trail this
//! rule exists to force.

use crate::analysis::{self, OpKind};
use crate::{Finding, LintConfig, Rule, SourceFile};

/// See module docs.
pub struct BlockingUnderLock;

const ID: &str = "blocking-under-lock";

/// `--explain` text; DESIGN.md §8 carries the same contract.
pub const EXPLAIN: &str = "\
Flags blocking calls made while a Mutex/RwLock guard is live in a\n\
hot-path crate (ctrie, core, serve, durable, views). Blocking means:\n\
file I/O (write_all/read_exact/read_to_end/flush/sync_all/sync_data/\n\
fsync/fdatasync), TcpStream connect/accept, JoinHandle::join (empty\n\
args), channel recv/recv_timeout, thread::sleep, and condvar waits\n\
while *another* guard is held. One level of direct intra-crate call\n\
inlining applies: calling a crate function that itself blocks is\n\
flagged at the call site.\n\
\n\
Deliberate cases carry the audit trail inline:\n\
\n\
    // idf-lint: allow(blocking-under-lock) -- group commit: the drain\n\
    // owns the file lock while batching fsyncs by design\n\
\n\
on the flagged line. Fix the rest by shrinking the guard scope\n\
(drop(guard) before the call, or a `{ }` block).";

impl Rule for BlockingUnderLock {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "no blocking I/O, join, recv, or sleep while a hot-path lock guard is live"
    }

    fn explain(&self) -> &'static str {
        EXPLAIN
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        for model in analysis::analyze(files) {
            for f in &model.fns {
                let path = &files[f.file].path;
                if !cfg
                    .blocking_lock_prefixes
                    .iter()
                    .any(|p| path.starts_with(p))
                {
                    continue;
                }
                for op in &f.ops {
                    match &op.kind {
                        OpKind::Blocking { what } if !op.held.is_empty() => {
                            out.push(Finding {
                                rule: ID,
                                file: path.clone(),
                                line: op.line,
                                message: format!(
                                    "blocking call `{what}` while holding {}; shrink the \
                                     guard scope or allow with a why",
                                    held_list(&op.held)
                                ),
                            });
                        }
                        OpKind::Wait { guard_lock } => {
                            // Waiting releases *its own* guard; any other
                            // held guard blocks strangers for the wait.
                            let mut others = op.held.clone();
                            if let Some(g) = guard_lock {
                                if let Some(pos) = others.iter().position(|h| &h.lock == g) {
                                    others.remove(pos);
                                }
                            }
                            if !others.is_empty() {
                                out.push(Finding {
                                    rule: ID,
                                    file: path.clone(),
                                    line: op.line,
                                    message: format!(
                                        "condvar wait parks the thread while still holding \
                                         {}; only the waited guard is released",
                                        held_list(&others)
                                    ),
                                });
                            }
                        }
                        OpKind::Call { callee, qualifier } => {
                            let Some(g) = model.resolve(callee, qualifier.as_deref()) else {
                                continue;
                            };
                            if g.name == f.name {
                                continue;
                            }
                            if let Some((what, bline)) = g.direct_blocking().next() {
                                out.push(Finding {
                                    rule: ID,
                                    file: path.clone(),
                                    line: op.line,
                                    message: format!(
                                        "`{callee}()` blocks (`{what}`, {}:{bline}) while the \
                                         caller holds {}",
                                        files[g.file].path,
                                        held_list(&op.held)
                                    ),
                                });
                            } else if let Some(wline) = g.direct_waits().next() {
                                out.push(Finding {
                                    rule: ID,
                                    file: path.clone(),
                                    line: op.line,
                                    message: format!(
                                        "`{callee}()` waits on a condvar ({}:{wline}) while \
                                         the caller holds {}",
                                        files[g.file].path,
                                        held_list(&op.held)
                                    ),
                                });
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

fn held_list(held: &[analysis::Held]) -> String {
    let locks: Vec<String> = held
        .iter()
        .map(|h| format!("'{}' (line {})", h.lock, h.line))
        .collect();
    format!("lock {}", locks.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, LintConfig};

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![("crates/durable/src/demo.rs".to_string(), src.to_string())];
        lint_files(&files, &LintConfig::workspace_default())
            .into_iter()
            .filter(|f| f.rule == ID)
            .collect()
    }

    #[test]
    fn fsync_under_guard_is_flagged() {
        let f = run("fn f(s: &S) { let g = s.file.lock(); g.sync_data(); }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("sync_data"));
        assert!(f[0].message.contains("'file'"));
    }

    #[test]
    fn io_after_drop_is_fine() {
        assert!(
            run("fn f(s: &S) { let g = s.m.lock(); drop(g); s.file.sync_data(); }\n").is_empty()
        );
    }

    #[test]
    fn join_under_guard_is_flagged() {
        let f = run("fn f(s: &S) { if let Some(h) = s.writer.lock().take() { h.join(); } }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("join"));
    }

    #[test]
    fn pathbuf_join_is_not_blocking() {
        assert!(run("fn f(s: &S) { let g = s.m.lock(); let p = s.dir.join(name); }\n").is_empty());
    }

    #[test]
    fn wait_holding_second_guard_is_flagged() {
        let f = run("fn f(s: &S) {\n\
             let a = s.a.lock();\n\
             let mut b = s.b.lock();\n\
             while b.busy { b = s.cv.wait(b).unwrap(); }\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("'a'"));
    }

    #[test]
    fn wait_holding_only_its_guard_is_fine() {
        assert!(run("fn f(s: &S) {\n\
             let mut b = s.b.lock();\n\
             while b.busy { b = s.cv.wait(b).unwrap(); }\n\
             }\n")
        .is_empty());
    }

    #[test]
    fn blocking_callee_is_flagged_at_call_site() {
        let f = run("fn flush_disk(s: &S) { s.file.sync_all(); }\n\
             fn f(s: &S) { let g = s.m.lock(); flush_disk(s); }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("flush_disk"));
    }

    #[test]
    fn out_of_scope_crate_is_ignored() {
        let files = vec![(
            "crates/bench/src/demo.rs".to_string(),
            "fn f(s: &S) { let g = s.file.lock(); g.sync_data(); }\n".to_string(),
        )];
        let f: Vec<Finding> = lint_files(&files, &LintConfig::workspace_default())
            .into_iter()
            .filter(|f| f.rule == ID)
            .collect();
        assert!(f.is_empty(), "{f:#?}");
    }
}
