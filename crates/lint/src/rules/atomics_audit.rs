//! Rule `atomics-audit`: every memory-ordering choice is either in an
//! allowlisted counters/metrics module or carries a justification.
//!
//! `Ordering::Relaxed` provides no synchronization — correct for
//! monotonic counters that only feed metrics, wrong the moment a load
//! is used to justify reading other memory. `Ordering::SeqCst` on a
//! hot path buys a full fence nobody may need and hides the actual
//! protocol (TSan reports on the cTrie root cell almost always trace
//! back to a weakened or over-strong ordering — see DESIGN.md §8).
//! This rule surfaces both the way `safety-comment` surfaces `unsafe`:
//! each site is allowlisted by module, or carries an inline allow with
//! a one-line why.

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};

/// See module docs.
pub struct AtomicsAudit;

const ID: &str = "atomics-audit";

/// `--explain` text; DESIGN.md §8 carries the same contract.
pub const EXPLAIN: &str = "\
Two checks over every `Ordering::` token in non-test code:\n\
\n\
1. `Ordering::Relaxed` is only allowed in the counters/metrics modules\n\
   (`relaxed_ok_prefixes`: obs, bench, the physical-operator metrics\n\
   file). Anywhere else each site needs\n\
   `// idf-lint: allow(atomics-audit) -- why unordered is safe`\n\
   (e.g. a monotonic ID counter, or a single-writer length published\n\
   with a Release store elsewhere).\n\
2. `Ordering::SeqCst` on the hot paths (`hot_path_prefixes`: ctrie,\n\
   core storage files, physical operators) needs the same treatment —\n\
   the allow states why acquire/release is insufficient (e.g. the\n\
   GCAS/RDCSS protocol needs a total store order across three cells).\n\
\n\
The point is the inventory: `grep 'allow(atomics-audit)'` lists every\n\
deliberate ordering decision with its rationale.";

impl Rule for AtomicsAudit {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "Relaxed only in counters/metrics modules; SeqCst on hot paths needs a justification"
    }

    fn explain(&self) -> &'static str {
        EXPLAIN
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        for sf in files {
            if sf.is_test_path() {
                continue;
            }
            let relaxed_ok = cfg
                .relaxed_ok_prefixes
                .iter()
                .any(|p| sf.path.starts_with(p));
            let hot = cfg.hot_path_prefixes.iter().any(|p| sf.path.starts_with(p));
            if relaxed_ok && !hot {
                continue;
            }
            let toks = &sf.lexed.toks;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || sf.test_mask[i] {
                    continue;
                }
                // Match `Ordering :: Relaxed` / `Ordering :: SeqCst`.
                let qualified = i >= 3
                    && toks[i - 1].text == ":"
                    && toks[i - 2].text == ":"
                    && toks[i - 3].kind == TokKind::Ident
                    && toks[i - 3].text == "Ordering";
                if !qualified {
                    continue;
                }
                match t.text.as_str() {
                    "Relaxed" if !relaxed_ok => out.push(Finding {
                        rule: ID,
                        file: sf.path.clone(),
                        line: t.line,
                        message: "Ordering::Relaxed outside the counters/metrics allowlist; \
                                  use acquire/release or allow with a why stating what makes \
                                  the unordered access safe"
                            .to_string(),
                    }),
                    "SeqCst" if hot => out.push(Finding {
                        rule: ID,
                        file: sf.path.clone(),
                        line: t.line,
                        message: "Ordering::SeqCst on a hot path; prefer acquire/release or \
                                  allow with a why stating what needs the total order"
                            .to_string(),
                    }),
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, LintConfig};

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        let files = vec![(path.to_string(), src.to_string())];
        lint_files(&files, &LintConfig::workspace_default())
            .into_iter()
            .filter(|f| f.rule == ID)
            .collect()
    }

    #[test]
    fn relaxed_in_metrics_module_passes() {
        assert!(run_at(
            "crates/obs/src/counter.rs",
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n"
        )
        .is_empty());
    }

    #[test]
    fn relaxed_elsewhere_is_flagged() {
        let f = run_at(
            "crates/durable/src/wal.rs",
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("Relaxed"));
    }

    #[test]
    fn seqcst_on_hot_path_is_flagged() {
        let f = run_at(
            "crates/ctrie/src/trie.rs",
            "fn f(c: &AtomicUsize) { c.store(1, Ordering::SeqCst); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("SeqCst"));
    }

    #[test]
    fn seqcst_off_hot_path_passes() {
        assert!(run_at(
            "crates/serve/src/server.rs",
            "fn f(c: &AtomicUsize) { c.store(1, Ordering::SeqCst); }\n"
        )
        .is_empty());
    }

    #[test]
    fn acquire_release_pass_everywhere() {
        assert!(run_at(
            "crates/ctrie/src/node.rs",
            "fn f(c: &AtomicUsize) { c.load(Ordering::Acquire); c.store(1, Ordering::Release); }\n"
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run_at(
            "crates/durable/src/wal.rs",
            "#[cfg(test)]\nmod tests {\n fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n"
        )
        .is_empty());
        assert!(run_at(
            "crates/durable/tests/chaos.rs",
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n"
        )
        .is_empty());
    }

    #[test]
    fn allow_with_why_suppresses() {
        assert!(run_at(
            "crates/durable/src/wal.rs",
            "fn f(c: &AtomicU64) {\n\
             // idf-lint: allow(atomics-audit) -- monotonic stat counter, metrics only\n\
             c.fetch_add(1, Ordering::Relaxed);\n\
             }\n"
        )
        .is_empty());
    }
}
