//! Rule `hot-path-panic`: no `unwrap`/`expect`/`panic!`-family macros in
//! non-test code on the query hot paths (`idf-ctrie`, the `idf-core`
//! storage modules, `idf-engine` physical operators), and no panicking
//! slice indexing in the binary row decode files (`batch.rs`,
//! `layout.rs`) where payload bytes may be corrupt.
//!
//! A point lookup that panics poisons the append mutex and kills the
//! worker; PR 2 made these paths return typed errors instead, and this
//! rule keeps them that way. `assert!`/`debug_assert!` are allowed —
//! invariant checks on programmer error are in-contract — and intentional
//! exceptions carry an inline `// idf-lint: allow(hot-path-panic)` with a
//! justification, which doubles as the audit trail the issue calls an
//! "explicit allowlist".

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};

/// See module docs.
pub struct HotPathPanic;

const ID: &str = "hot-path-panic";

/// Panicking macros (when followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Panicking methods (when preceded by `.`).
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl Rule for HotPathPanic {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/indexing panics in hot-path non-test code"
    }

    fn explain(&self) -> &'static str {
        "Non-test code on the hot paths (`hot_path_prefixes`: ctrie, core\n\
         storage files, physical operators) must not call unwrap/expect or\n\
         panic!-family macros, and the binary row-decode files\n\
         (`index_check_files`) must not use panicking slice indexing — a\n\
         corrupt payload must surface as a typed error, not a crash in the\n\
         serving thread. Suppress a proven-safe site with\n\
         `// idf-lint: allow(hot-path-panic) -- why` (e.g. length pre-checked\n\
         on the line above)."
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        for sf in files {
            let in_scope = cfg.hot_path_prefixes.iter().any(|p| sf.path.starts_with(p));
            if !in_scope || sf.is_test_path() {
                continue;
            }
            let index_checked = cfg.index_check_files.iter().any(|p| sf.path == *p);
            check_file(sf, index_checked, out);
        }
    }
}

fn check_file(sf: &SourceFile, index_checked: bool, out: &mut Vec<Finding>) {
    let toks = &sf.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let next = toks.get(i + 1);
                let is_method_call = prev
                    .is_some_and(|p| p.kind == TokKind::Punct && p.text == ".")
                    && next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
                if is_method_call && PANIC_METHODS.contains(&t.text.as_str()) {
                    out.push(finding(
                        sf,
                        t.line,
                        format!(
                            ".{}() can panic on a hot path; return a typed error",
                            t.text
                        ),
                    ));
                    continue;
                }
                let is_macro = next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "!");
                if is_macro && PANIC_MACROS.contains(&t.text.as_str()) {
                    out.push(finding(
                        sf,
                        t.line,
                        format!("{}! aborts the query worker on a hot path", t.text),
                    ));
                }
            }
            TokKind::Punct if index_checked && t.text == "[" => {
                // `expr[...]` indexing: `[` directly after an ident or a
                // closing bracket. Attribute `#[...]`, slice patterns and
                // array literals have other predecessors.
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
                    continue;
                };
                let is_index = match prev.kind {
                    TokKind::Ident => !is_keyword(&prev.text),
                    TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                    _ => false,
                };
                if is_index {
                    out.push(finding(
                        sf,
                        t.line,
                        "slice indexing can panic on corrupt payload bytes; use get()/split checks"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (e.g. `return [..]`, `let [a, b] = ..`, `in [..]`).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "in"
            | "if"
            | "else"
            | "match"
            | "break"
            | "mut"
            | "const"
            | "static"
            | "let"
            | "ref"
            | "box"
    )
}

fn finding(sf: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: ID,
        file: sf.path.clone(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        lint_files(
            &[(path.to_string(), src.to_string())],
            &LintConfig::workspace_default(),
        )
        .into_iter()
        .filter(|f| f.rule == ID)
        .collect()
    }

    #[test]
    fn unwrap_in_hot_path_is_flagged() {
        let f = run_at("crates/ctrie/src/x.rs", "fn f() { a.unwrap(); }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unwrap_outside_scope_is_fine() {
        assert!(run_at("crates/bench/src/x.rs", "fn f() { a.unwrap(); }").is_empty());
    }

    #[test]
    fn panic_macros_flagged_asserts_allowed() {
        let src = "fn f() { assert!(x); debug_assert!(y); panic!(\"no\"); unreachable!(); }";
        let f = run_at("crates/engine/src/physical/x.rs", src);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { a.unwrap(); panic!(); }\n}";
        assert!(run_at("crates/ctrie/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexing_only_flagged_in_decode_files() {
        let idx = "fn f(p: &[u8]) -> u8 { p[0] }";
        assert_eq!(run_at("crates/core/src/layout.rs", idx).len(), 1);
        assert!(run_at("crates/core/src/partition.rs", idx).is_empty());
    }

    #[test]
    fn attributes_and_array_literals_are_not_indexing() {
        let src = "#[derive(Debug)]\nfn f() -> [u8; 2] { let a = [1, 2]; a.into() }";
        assert!(run_at("crates/core/src/batch.rs", src).is_empty());
    }

    #[test]
    fn slice_patterns_are_not_indexing() {
        let src = "fn f(p: &[u8]) -> Result<u8> { let [b] = fixed::<1>(p, 0)?; Ok(b) }";
        assert!(run_at("crates/core/src/layout.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_suppresses() {
        let src = "fn f() {\n    // idf-lint: allow(hot-path-panic) -- len checked above\n    a.unwrap();\n}";
        assert!(run_at("crates/ctrie/src/x.rs", src).is_empty());
    }
}
