//! Rule `safety-comment`: every `unsafe` block, impl, and trait carries a
//! `// SAFETY:` justification, and every `unsafe fn` documents its
//! contract with a `# Safety` doc section.
//!
//! The comment may sit on the same line as the `unsafe` keyword or in the
//! contiguous comment block above it. The upward walk crosses attribute
//! lines (`#[...]`) and statement-continuation lines (a line whose last
//! token is one of `= ( , . & | <`), so the common
//!
//! ```text
//! // SAFETY: …
//! let value =
//!     unsafe { … };
//! ```
//!
//! shape is recognized. This is deliberately stricter in scope than
//! `clippy::undocumented_unsafe_blocks` (it also covers `unsafe fn` and
//! `unsafe trait`) and runs on every file in the workspace, tests
//! included: an unjustified `unsafe` in a test can still be UB.

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};

/// See module docs.
pub struct SafetyComment;

const ID: &str = "safety-comment";

impl Rule for SafetyComment {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "unsafe blocks/impls need a SAFETY: comment; unsafe fns need a # Safety doc"
    }

    fn explain(&self) -> &'static str {
        "Every `unsafe` block, `unsafe impl`, and `unsafe trait` must carry a\n\
         `// SAFETY: …` comment on or directly above the flagged line stating\n\
         the invariant that makes the operation sound; every `unsafe fn` must\n\
         document a `# Safety` section. The comments are the audit trail the\n\
         Miri job triages against. Suppress a deliberate exception with\n\
         `// idf-lint: allow(safety-comment) -- why`."
    }

    fn check(&self, files: &[SourceFile], _cfg: &LintConfig, out: &mut Vec<Finding>) {
        for sf in files {
            check_file(sf, out);
        }
    }
}

fn check_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // Classify the site from the next token.
        let next = toks.get(i + 1);
        let kind = match next.map(|n| (n.kind, n.text.as_str())) {
            Some((TokKind::Punct, "{")) => Site::Block,
            Some((TokKind::Ident, "impl")) => Site::Impl,
            Some((TokKind::Ident, "trait")) => Site::Trait,
            Some((TokKind::Ident, "fn")) | Some((TokKind::Ident, "extern")) => Site::Fn,
            // `unsafe` inside a type position (`unsafe fn` pointer types)
            // or anything unrecognized: treat as a block for safety.
            _ => Site::Block,
        };
        let line = t.line;
        let ok = match kind {
            Site::Fn => has_marker(sf, line, &["# Safety", "SAFETY:"]),
            _ => has_marker(sf, line, &["SAFETY:"]),
        };
        if !ok {
            let what = match kind {
                Site::Block => "unsafe block",
                Site::Impl => "unsafe impl",
                Site::Trait => "unsafe trait",
                Site::Fn => "unsafe fn",
            };
            let want = match kind {
                Site::Fn => "`# Safety` doc section (or SAFETY: comment)",
                _ => "`// SAFETY:` comment",
            };
            out.push(Finding {
                rule: ID,
                file: sf.path.clone(),
                line,
                message: format!("{what} without a {want} justifying it"),
            });
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Site {
    Block,
    Impl,
    Trait,
    Fn,
}

/// True when a comment containing one of `markers` covers `line` or sits
/// in the contiguous comment block above it (crossing attribute and
/// continuation lines).
fn has_marker(sf: &SourceFile, line: u32, markers: &[&str]) -> bool {
    let contains = |l: u32| {
        sf.lexed
            .comments_on(l)
            .any(|c| markers.iter().any(|m| c.text.contains(m)))
    };
    if contains(line) {
        return true;
    }
    let mut cur = line;
    while cur > 1 {
        cur -= 1;
        if contains(cur) {
            return true;
        }
        let has_comment = sf.lexed.comments_on(cur).next().is_some();
        let toks = sf.tokens_on(cur);
        if toks.is_empty() {
            if has_comment {
                // Non-matching comment line: keep scanning the block.
                continue;
            }
            // Blank line ends the search.
            return false;
        }
        // Attribute-only line: `#[...]` — cross it.
        let first = sf.tok(toks[0]);
        if first.kind == TokKind::Punct && first.text == "#" {
            continue;
        }
        // Statement-continuation line: the unsafe expression started on a
        // later line of a multi-line statement; cross it.
        let last = sf.tok(*toks.last().expect("non-empty"));
        if last.kind == TokKind::Punct
            && matches!(last.text.as_str(), "=" | "(" | "," | "." | "&" | "|" | "<")
        {
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn run(src: &str) -> Vec<Finding> {
        lint_files(
            &[("crates/x/src/a.rs".to_string(), src.to_string())],
            &LintConfig::workspace_default(),
        )
        .into_iter()
        .filter(|f| f.rule == ID)
        .collect()
    }

    #[test]
    fn bare_unsafe_block_is_flagged() {
        let f = run("fn f() { unsafe { g() } }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn comment_above_satisfies() {
        assert!(
            run("fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}")
                .is_empty()
        );
    }

    #[test]
    fn same_line_comment_satisfies() {
        assert!(run("fn f() { unsafe { g() } /* SAFETY: fine */ }").is_empty());
    }

    #[test]
    fn walk_crosses_continuation_and_attributes() {
        let src = "// SAFETY: justified\n#[allow(dead_code)]\nlet x =\n    unsafe { g() };";
        assert!(run(src).is_empty());
    }

    #[test]
    fn blank_line_breaks_the_walk() {
        let src = "// SAFETY: stale\n\nunsafe { g() }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn unsafe_impl_needs_per_impl_comment() {
        let src = "// SAFETY: only covers the first\nunsafe impl Send for X {}\nunsafe impl Sync for X {}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unsafe_fn_wants_safety_doc() {
        assert_eq!(run("pub unsafe fn f() {}").len(), 1);
        assert!(run("/// # Safety\n/// caller ensures x\npub unsafe fn f() {}").is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        assert!(run("// unsafe\nfn f() { let s = \"unsafe {\"; }").is_empty());
    }

    #[test]
    fn suppression_comment_applies() {
        let src = "// idf-lint: allow(safety-comment) -- audited elsewhere\nunsafe { g() }";
        assert!(run(src).is_empty());
    }
}
