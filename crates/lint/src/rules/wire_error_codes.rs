//! Rule `wire-error-codes`: wire-protocol error enums keep unique,
//! explicit, contiguous-or-documented discriminants.
//!
//! `ErrorCode` values travel over the socket and are decoded by peers
//! built from other revisions — a reused discriminant silently changes
//! the meaning of old error frames, and an implicit discriminant moves
//! every later code when a variant is inserted. Codes 14/15 were added
//! ad hoc in the views PR; this rule makes the next addition a checked
//! edit: explicit value, no duplicates, and either contiguous with the
//! previous variant or carrying an allow that documents the gap.

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};
use std::collections::BTreeMap;

/// See module docs.
pub struct WireErrorCodes;

const ID: &str = "wire-error-codes";

/// `--explain` text; DESIGN.md §8 carries the same contract.
pub const EXPLAIN: &str = "\
Checks the wire-protocol error enums named in `wire_enums` (currently\n\
`ErrorCode` in crates/serve/src/wire.rs):\n\
\n\
1. every variant has an explicit `= N` discriminant (implicit ones\n\
   renumber silently when a variant is inserted above them);\n\
2. no two variants share a value (a reused code changes the meaning of\n\
   frames already in the wild);\n\
3. values are declared in ascending order and contiguous — a gap is\n\
   legal only when documented with\n\
   `// idf-lint: allow(wire-error-codes) -- why the range is reserved`.\n\
\n\
New codes go at the end with the next value; retired codes keep their\n\
slot via a documented gap, they are never reused.";

impl Rule for WireErrorCodes {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "wire error-code enums: explicit, unique, contiguous-or-documented discriminants"
    }

    fn explain(&self) -> &'static str {
        EXPLAIN
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        for (path, enum_name) in &cfg.wire_enums {
            let Some(sf) = files.iter().find(|sf| sf.path == *path) else {
                continue;
            };
            check_enum(sf, enum_name, out);
        }
    }
}

fn check_enum(sf: &SourceFile, enum_name: &str, out: &mut Vec<Finding>) {
    let toks = &sf.lexed.toks;
    let n = toks.len();
    // Locate `enum <name> {`.
    let mut start = None;
    for i in 0..n.saturating_sub(1) {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "enum"
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 1].text == enum_name
        {
            start = Some(i + 2);
            break;
        }
    }
    let Some(mut i) = start else {
        out.push(Finding {
            rule: ID,
            file: sf.path.clone(),
            line: 1,
            message: format!("configured wire enum `{enum_name}` not found in this file"),
        });
        return;
    };
    while i < n && toks[i].text != "{" {
        i += 1;
    }
    let mut depth = 1usize;
    i += 1;
    let mut seen: BTreeMap<u64, String> = BTreeMap::new();
    let mut prev: Option<(u64, String)> = None;
    while i < n && depth > 0 {
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => depth -= 1,
            (TokKind::Ident, _) if depth == 1 => {
                let name = toks[i].text.clone();
                let line = toks[i].line;
                if toks.get(i + 1).is_some_and(|t| t.text == "=") {
                    if let Some(num) = toks.get(i + 2).filter(|t| t.kind == TokKind::Num) {
                        if let Ok(v) = num.text.replace('_', "").parse::<u64>() {
                            if let Some(first) = seen.get(&v) {
                                out.push(Finding {
                                    rule: ID,
                                    file: sf.path.clone(),
                                    line,
                                    message: format!(
                                        "`{name} = {v}` reuses the discriminant of `{first}`; \
                                         wire codes are never reused"
                                    ),
                                });
                                // A reuse is already fatal; don't also
                                // report it as a contiguity break.
                                prev = Some((v, name));
                                i += 3;
                                continue;
                            }
                            seen.insert(v, name.clone());
                            if let Some((pv, pname)) = &prev {
                                if v != pv + 1 {
                                    out.push(Finding {
                                        rule: ID,
                                        file: sf.path.clone(),
                                        line,
                                        message: format!(
                                            "`{name} = {v}` is not contiguous with \
                                             `{pname} = {pv}`; renumber, or document the \
                                             reserved gap with an allow"
                                        ),
                                    });
                                }
                            }
                            prev = Some((v, name));
                            i += 3;
                            continue;
                        }
                    }
                    out.push(Finding {
                        rule: ID,
                        file: sf.path.clone(),
                        line,
                        message: format!(
                            "`{name}` has a non-literal discriminant; wire codes must be \
                             explicit integer literals"
                        ),
                    });
                } else if toks
                    .get(i + 1)
                    .is_some_and(|t| t.text == "," || t.text == "}")
                {
                    out.push(Finding {
                        rule: ID,
                        file: sf.path.clone(),
                        line,
                        message: format!(
                            "`{name}` has an implicit discriminant; inserting a variant \
                             above it would renumber the wire protocol — write `= N`"
                        ),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, LintConfig};

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![("crates/serve/src/wire.rs".to_string(), src.to_string())];
        lint_files(&files, &LintConfig::workspace_default())
            .into_iter()
            .filter(|f| f.rule == ID)
            .collect()
    }

    #[test]
    fn contiguous_explicit_enum_passes() {
        assert!(run("pub enum ErrorCode { A = 1, B = 2, C = 3 }\n").is_empty());
    }

    #[test]
    fn duplicate_discriminant_is_flagged() {
        let f = run("pub enum ErrorCode { A = 1, B = 1 }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("reuses"));
    }

    #[test]
    fn gap_is_flagged_unless_documented() {
        let f = run("pub enum ErrorCode { A = 1, B = 3 }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("not contiguous"));

        assert!(run("pub enum ErrorCode {\n\
             A = 1,\n\
             // idf-lint: allow(wire-error-codes) -- 2 was retired in v1, never reuse\n\
             B = 3,\n\
             }\n")
        .is_empty());
    }

    #[test]
    fn implicit_discriminant_is_flagged() {
        let f = run("pub enum ErrorCode { A = 1, B }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("implicit"));
    }

    #[test]
    fn missing_enum_is_flagged() {
        let f = run("pub enum Other { A = 1 }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("not found"));
    }
}
