//! Rule `lock-order`: the per-crate lock-acquisition graph must be
//! acyclic and every observed edge must match a checked-in `LOCK_ORDER`
//! manifest.
//!
//! The analysis layer (see [`crate::analysis`]) records every point
//! where a lock B is acquired while a guard for lock A is still live —
//! directly or one call level deep within the crate. Each such edge
//! `A → B` must appear in the crate's manifest:
//!
//! ```text
//! /// Crate-wide lock acquisition order …
//! pub const LOCK_ORDER: &[(&str, &str)] = &[
//!     ("file", "why this lock is level 0 …"),
//!     ("state", "why this may be taken under `file` …"),
//! ];
//! ```
//!
//! Array position *is* the order: an edge `A → B` is legal only when
//! `A` is listed before `B`. Every entry carries a one-line
//! justification — the manifest doubles as the deadlock-review record.
//! Re-acquiring a lock already held (a self-edge) is always an error:
//! `std::sync` primitives are not reentrant. Cycles are reported even
//! when no manifest exists.

use crate::analysis::{self, OpKind};
use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// See module docs.
pub struct LockOrder;

const ID: &str = "lock-order";

/// `--explain` text; DESIGN.md §8 carries the same contract.
pub const EXPLAIN: &str = "\
Builds a per-crate lock-acquisition graph: an edge A -> B is recorded\n\
whenever lock B is acquired while a guard for lock A is still live\n\
(guard lifetime approximated by scope depth; one level of direct\n\
intra-crate call inlining). Lock names are the last path segment of the\n\
receiver (`self.inner.state` -> `state`).\n\
\n\
Every edge must match a checked-in manifest in the same crate:\n\
\n\
    pub const LOCK_ORDER: &[(&str, &str)] = &[\n\
        (\"file\", \"level 0: held only by the writer drain\"),\n\
        (\"state\", \"may be taken under `file` during rotation\"),\n\
    ];\n\
\n\
Array position is the order (edges must go from earlier to later\n\
entries) and every entry needs a one-line justification. Re-acquiring a\n\
held lock is always flagged (std::sync is not reentrant); cycles are\n\
flagged even without a manifest. Suppress a deliberate violation with\n\
`// idf-lint: allow(lock-order) -- why` on the acquisition line.";

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "per-crate lock-acquisition graph is acyclic and matches the LOCK_ORDER manifest"
    }

    fn explain(&self) -> &'static str {
        EXPLAIN
    }

    fn check(&self, files: &[SourceFile], _cfg: &LintConfig, out: &mut Vec<Finding>) {
        for model in analysis::analyze(files) {
            let manifest = parse_manifest(files, &model, out);
            // Collect edges: (A, B) -> first site (file, line, detail).
            let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
            for f in &model.fns {
                let path = &files[f.file].path;
                for op in &f.ops {
                    match &op.kind {
                        OpKind::Acquire { lock } => {
                            for h in &op.held {
                                if h.lock == *lock {
                                    out.push(Finding {
                                        rule: ID,
                                        file: path.clone(),
                                        line: op.line,
                                        message: format!(
                                            "lock '{lock}' re-acquired while already held \
                                             (acquired line {}); std::sync locks are not \
                                             reentrant — this self-deadlocks",
                                            h.line
                                        ),
                                    });
                                } else {
                                    edges
                                        .entry((h.lock.clone(), lock.clone()))
                                        .or_insert_with(|| (path.clone(), op.line, String::new()));
                                }
                            }
                        }
                        OpKind::Call { callee, qualifier } => {
                            let Some(g) = model.resolve(callee, qualifier.as_deref()) else {
                                continue;
                            };
                            if g.name == f.name {
                                continue;
                            }
                            for (alock, _aline) in g.direct_acquires() {
                                for h in &op.held {
                                    if h.lock == alock {
                                        out.push(Finding {
                                            rule: ID,
                                            file: path.clone(),
                                            line: op.line,
                                            message: format!(
                                                "call to `{callee}()` re-acquires lock \
                                                 '{alock}' already held (acquired line {}); \
                                                 std::sync locks are not reentrant",
                                                h.line
                                            ),
                                        });
                                    } else {
                                        edges
                                            .entry((h.lock.clone(), alock.to_string()))
                                            .or_insert_with(|| {
                                                (
                                                    path.clone(),
                                                    op.line,
                                                    format!(" (via call to `{callee}()`)"),
                                                )
                                            });
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            // Manifest conformance.
            for ((a, b), (path, line, via)) in &edges {
                let ia = manifest.iter().position(|e| &e.name == a);
                let ib = manifest.iter().position(|e| &e.name == b);
                match (ia, ib) {
                    (Some(ia), Some(ib)) if ia < ib => {}
                    (Some(_), Some(_)) => out.push(Finding {
                        rule: ID,
                        file: path.clone(),
                        line: *line,
                        message: format!(
                            "lock '{b}' acquired while '{a}' held{via}, but the {} \
                             LOCK_ORDER manifest lists '{b}' before '{a}'",
                            model.name
                        ),
                    }),
                    _ => {
                        let missing = if ia.is_none() { a } else { b };
                        let hint = if manifest.is_empty() {
                            format!("no LOCK_ORDER manifest found in {}", model.name)
                        } else {
                            format!("'{missing}' is not a manifest entry")
                        };
                        out.push(Finding {
                            rule: ID,
                            file: path.clone(),
                            line: *line,
                            message: format!(
                                "lock '{b}' acquired while '{a}' held{via}; {hint} — declare \
                                 the ordering in a `LOCK_ORDER: &[(&str, &str)]` const"
                            ),
                        });
                    }
                }
            }
            // Cycle detection over the raw edge set.
            if let Some(cycle) = find_cycle(edges.keys()) {
                let first = edges
                    .get(&(cycle[0].clone(), cycle[1].clone()))
                    .expect("cycle edge has a site");
                out.push(Finding {
                    rule: ID,
                    file: first.0.clone(),
                    line: first.1,
                    message: format!(
                        "lock-order cycle in {}: {} — a thread interleaving exists that \
                         deadlocks",
                        model.name,
                        cycle.join(" -> ")
                    ),
                });
            }
        }
    }
}

struct ManifestEntry {
    name: String,
}

/// Parse every `const LOCK_ORDER: … = &[("name", "why"), …];` in the
/// crate's files, validating justifications as we go.
fn parse_manifest(
    files: &[SourceFile],
    model: &analysis::CrateModel,
    out: &mut Vec<Finding>,
) -> Vec<ManifestEntry> {
    let mut entries = Vec::new();
    let mut seen_files: BTreeSet<usize> = model.fns.iter().map(|f| f.file).collect();
    // Manifest may sit in a file with no functions (e.g. lib.rs): scan
    // every non-test file of the crate.
    for (i, sf) in files.iter().enumerate() {
        if !sf.is_test_path() && analysis::crate_of(&sf.path) == Some(model.name.as_str()) {
            seen_files.insert(i);
        }
    }
    for &fi in &seen_files {
        let sf = &files[fi];
        let toks = &sf.lexed.toks;
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || toks[i].text != "LOCK_ORDER" {
                continue;
            }
            if i == 0 || toks[i - 1].kind != TokKind::Ident || toks[i - 1].text != "const" {
                continue;
            }
            // Collect string literals pairwise until the terminating `;`.
            let mut strs: Vec<(String, u32)> = Vec::new();
            let mut j = i + 1;
            while j < toks.len() && toks[j].text != ";" {
                if toks[j].kind == TokKind::Str {
                    strs.push((toks[j].text.clone(), toks[j].line));
                }
                j += 1;
            }
            if !strs.len().is_multiple_of(2) {
                out.push(Finding {
                    rule: ID,
                    file: sf.path.clone(),
                    line: toks[i].line,
                    message: "LOCK_ORDER manifest must be (name, justification) pairs".to_string(),
                });
            }
            for pair in strs.chunks_exact(2) {
                let (name, line) = (&pair[0].0, pair[0].1);
                let why = &pair[1].0;
                if why.trim().is_empty() {
                    out.push(Finding {
                        rule: ID,
                        file: sf.path.clone(),
                        line,
                        message: format!(
                            "LOCK_ORDER entry '{name}' has an empty justification — every \
                             entry must say why the level is safe"
                        ),
                    });
                }
                if entries.iter().any(|e: &ManifestEntry| &e.name == name) {
                    out.push(Finding {
                        rule: ID,
                        file: sf.path.clone(),
                        line,
                        message: format!("duplicate LOCK_ORDER entry '{name}'"),
                    });
                } else {
                    entries.push(ManifestEntry { name: name.clone() });
                }
            }
        }
    }
    entries
}

/// DFS cycle detection; returns the cycle as `[a, b, …, a]`.
fn find_cycle<'a>(edges: impl Iterator<Item = &'a (String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        if state.contains_key(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        state.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match state.get(s) {
                    Some(1) => {
                        // Back edge: slice the stack from s.
                        let pos = stack.iter().position(|&(n, _)| n == s).unwrap();
                        let mut cycle: Vec<String> =
                            stack[pos..].iter().map(|&(n, _)| n.to_string()).collect();
                        cycle.push(s.to_string());
                        return Some(cycle);
                    }
                    Some(_) => {}
                    None => {
                        state.insert(s, 1);
                        stack.push((s, 0));
                    }
                }
            } else {
                state.insert(node, 2);
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, LintConfig};

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![("crates/demo/src/lib.rs".to_string(), src.to_string())];
        lint_files(&files, &LintConfig::workspace_default())
            .into_iter()
            .filter(|f| f.rule == ID)
            .collect()
    }

    const MANIFEST: &str = "pub const LOCK_ORDER: &[(&str, &str)] = &[\n\
        (\"a\", \"level 0: outermost\"),\n\
        (\"b\", \"taken under a during handoff\"),\n\
        ];\n";

    #[test]
    fn declared_edge_passes() {
        let src = format!("{MANIFEST}fn f(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n");
        assert!(run(&src).is_empty(), "{:#?}", run(&src));
    }

    #[test]
    fn undeclared_edge_is_flagged() {
        let src = "fn f(s: &S) { let g = s.a.lock(); let h = s.b.lock(); }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("no LOCK_ORDER manifest"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn contradicting_order_is_flagged() {
        let src = format!("{MANIFEST}fn f(s: &S) {{ let g = s.b.lock(); let h = s.a.lock(); }}\n");
        let f = run(&src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("lists 'a' before 'b'"));
    }

    #[test]
    fn reacquisition_is_flagged() {
        let src = format!("{MANIFEST}fn f(s: &S) {{ let g = s.a.lock(); let h = s.a.lock(); }}\n");
        let f = run(&src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("re-acquired"));
    }

    #[test]
    fn cycle_is_reported() {
        let src = "fn f(s: &S) { let g = s.a.lock(); let h = s.b.lock(); }\n\
                   fn g(s: &S) { let g = s.b.lock(); let h = s.a.lock(); }\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.message.contains("cycle")), "{f:#?}");
    }

    #[test]
    fn inlined_edge_via_call_is_flagged() {
        let src = "fn inner(s: &S) { let h = s.b.lock(); }\n\
                   fn f(s: &S) { let g = s.a.lock(); inner(s); }\n";
        let f = run(src);
        assert!(
            f.iter()
                .any(|f| f.message.contains("via call to `inner()`")),
            "{f:#?}"
        );
    }

    #[test]
    fn empty_justification_is_flagged() {
        let src = "pub const LOCK_ORDER: &[(&str, &str)] = &[(\"a\", \"\")];\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("empty justification"));
    }
}
