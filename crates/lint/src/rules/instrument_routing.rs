//! Rule `instrument-routing`: every physical operator's `execute` routes
//! its output through `TaskContext::instrument` (or delegates wholesale
//! to a child's `execute`).
//!
//! The `LifecycleGuard` wrapper installed by `instrument` is what makes
//! every operator cancellable, deadline-checked, and metered — an
//! operator that returns a bare iterator silently opts out of the entire
//! PR 2/PR 3 lifecycle machinery. This rule scans `impl … ExecutionPlan
//! for …` blocks under `crates/engine/src/physical/` and requires the
//! `execute` body to mention `instrument` or contain an `.execute(`
//! delegation (e.g. `UnionExec` concatenating already-instrumented child
//! streams).

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};

/// See module docs.
pub struct InstrumentRouting;

const ID: &str = "instrument-routing";

impl Rule for InstrumentRouting {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "physical operators' execute() must route output through TaskContext::instrument"
    }

    fn explain(&self) -> &'static str {
        "Every `ExecutionPlan::execute` in the physical operators\n\
         (`physical_prefix`) must route its output batches through\n\
         `TaskContext::instrument` (or delegate to a child's `execute`) so\n\
         per-operator rows/batches/latency metrics stay complete — one\n\
         unrouted operator makes the query-profile output lie. Suppress a\n\
         pass-through operator with\n\
         `// idf-lint: allow(instrument-routing) -- why` above `fn execute`."
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        for sf in files {
            if !sf.path.starts_with(cfg.physical_prefix) {
                continue;
            }
            check_file(sf, out);
        }
    }
}

fn check_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.lexed.toks;
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        // Header up to `{`: must contain `ExecutionPlan` and `for`.
        let mut j = i + 1;
        let mut saw_plan = false;
        let mut saw_for = false;
        let mut operator = String::new();
        while j < n && !(toks[j].kind == TokKind::Punct && toks[j].text == "{") {
            if toks[j].kind == TokKind::Ident {
                match toks[j].text.as_str() {
                    "ExecutionPlan" => saw_plan = true,
                    "for" => saw_for = true,
                    id if saw_for && operator.is_empty() => operator = id.to_string(),
                    _ => {}
                }
            }
            j += 1;
        }
        if !(saw_plan && saw_for) || j >= n {
            i = j;
            continue;
        }
        // Brace-match the impl body.
        let body_start = j;
        let mut depth = 1i32;
        let mut k = body_start + 1;
        while k < n && depth > 0 {
            match (toks[k].kind, toks[k].text.as_str()) {
                (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, "}") => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let body_end = k;
        check_execute(sf, &operator, body_start + 1, body_end, out);
        i = body_end;
    }
}

/// Within impl body tokens `[lo, hi)`, find `fn execute` and verify its
/// body mentions `instrument` or delegates via `.execute(`.
fn check_execute(sf: &SourceFile, operator: &str, lo: usize, hi: usize, out: &mut Vec<Finding>) {
    let toks = &sf.lexed.toks;
    let mut i = lo;
    while i < hi {
        let is_fn_execute = toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "execute");
        if !is_fn_execute {
            i += 1;
            continue;
        }
        let fn_line = toks[i].line;
        // Skip the signature to the body `{`.
        let mut j = i + 2;
        while j < hi && !(toks[j].kind == TokKind::Punct && toks[j].text == "{") {
            j += 1;
        }
        let mut depth = 1i32;
        let mut k = j + 1;
        let mut routed = false;
        while k < hi && depth > 0 {
            match (toks[k].kind, toks[k].text.as_str()) {
                (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, "}") => depth -= 1,
                (TokKind::Ident, "instrument") => routed = true,
                (TokKind::Ident, "execute") => {
                    // `.execute(` delegation to a child operator.
                    let dotted = k > 0 && toks[k - 1].text == ".";
                    let called = toks.get(k + 1).is_some_and(|t| t.text == "(");
                    if dotted && called {
                        routed = true;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if !routed {
            out.push(Finding {
                rule: ID,
                file: sf.path.clone(),
                line: fn_line,
                message: format!(
                    "{operator}::execute returns a bare iterator; route it through \
                     TaskContext::instrument (or delegate to a child's execute)"
                ),
            });
        }
        return; // One execute per impl block.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn run(src: &str) -> Vec<Finding> {
        lint_files(
            &[(
                "crates/engine/src/physical/x.rs".to_string(),
                src.to_string(),
            )],
            &LintConfig::workspace_default(),
        )
        .into_iter()
        .filter(|f| f.rule == ID)
        .collect()
    }

    #[test]
    fn instrumented_operator_passes() {
        let src = "impl ExecutionPlan for ScanExec {\n fn execute(&self, p: usize, ctx: &TaskContext) -> ChunkIter {\n  ctx.instrument(self, raw)\n }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn delegating_operator_passes() {
        let src = "impl ExecutionPlan for UnionExec {\n fn execute(&self, p: usize, ctx: &TaskContext) -> ChunkIter {\n  self.input.execute(p, ctx)\n }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn bare_iterator_is_flagged() {
        let src = "impl ExecutionPlan for RogueExec {\n fn execute(&self, p: usize, ctx: &TaskContext) -> ChunkIter {\n  Box::new(raw_chunks(p))\n }\n}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("RogueExec"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn non_plan_impls_and_other_fns_are_ignored() {
        let src = "impl RogueExec {\n fn execute_helper(&self) { }\n fn new() -> Self { Self }\n}\nimpl fmt::Debug for RogueExec { fn fmt(&self) {} }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn files_outside_physical_are_ignored() {
        let src = "impl ExecutionPlan for X {\n fn execute(&self) { bare() }\n}";
        let f = lint_files(
            &[("crates/engine/src/logical.rs".to_string(), src.to_string())],
            &LintConfig::workspace_default(),
        );
        assert!(f.iter().all(|f| f.rule != ID));
    }
}
