//! Rule `condvar-discipline`: waits re-check their predicate in a loop;
//! notifies happen with the paired mutex held or carry an allow.
//!
//! `Condvar::wait` is specified to wake spuriously, and even without
//! spurious wakeups a third thread can consume the state between the
//! notify and the waiter's re-acquisition — an `if`-guarded or bare
//! wait is a latent hang or double-consume. Likewise, a `notify_*`
//! issued without the paired mutex held can race a waiter that checked
//! its predicate but has not yet parked (the classic lost wakeup);
//! unlock-before-notify is a legitimate throughput optimization *only*
//! when the predicate was updated under the lock first, which is
//! exactly what the allow comment must say.

use crate::analysis::{self, OpKind, Wrapper};
use crate::{Finding, LintConfig, Rule, SourceFile};

/// See module docs.
pub struct CondvarDiscipline;

const ID: &str = "condvar-discipline";

/// `--explain` text; DESIGN.md §8 carries the same contract.
pub const EXPLAIN: &str = "\
Every Condvar wait must sit lexically inside a `while`/`loop` body so\n\
the predicate is re-checked after every wakeup (spurious wakeups are\n\
allowed by spec; third threads can steal the state). `if`-waits and\n\
bare waits are flagged. A poison-recovering wait *wrapper* (a fn whose\n\
guard argument is a parameter) is exempt inside; its call sites carry\n\
the loop obligation instead.\n\
\n\
Every notify_one/notify_all must run with the paired mutex held, or\n\
carry an allow stating that the predicate was already updated under\n\
the lock and the unlock-before-notify is a deliberate wakeup\n\
optimization:\n\
\n\
    // idf-lint: allow(condvar-discipline) -- predicate set under the\n\
    // lock two lines up; notify after unlock avoids a pessimistic wake\n";

impl Rule for CondvarDiscipline {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "condvar waits re-check predicates in a while/loop; notifies hold the paired mutex"
    }

    fn explain(&self) -> &'static str {
        EXPLAIN
    }

    fn check(&self, files: &[SourceFile], _cfg: &LintConfig, out: &mut Vec<Finding>) {
        for model in analysis::analyze(files) {
            for f in &model.fns {
                if matches!(f.wrapper, Some(Wrapper::Wait { .. })) {
                    // The wrapper's internal wait is checked at call sites.
                    continue;
                }
                let path = &files[f.file].path;
                for op in &f.ops {
                    match &op.kind {
                        OpKind::Wait { .. } if !op.in_loop => {
                            out.push(Finding {
                                rule: ID,
                                file: path.clone(),
                                line: op.line,
                                message: "condvar wait outside a while/loop predicate \
                                          re-check; spurious wakeups and stolen state make \
                                          if-waits and bare waits incorrect"
                                    .to_string(),
                            });
                        }
                        OpKind::Notify { method } if op.held.is_empty() => {
                            out.push(Finding {
                                rule: ID,
                                file: path.clone(),
                                line: op.line,
                                message: format!(
                                    "`{method}` without the paired mutex held; notify under \
                                     the lock, or allow with a why stating the predicate was \
                                     updated under the lock before release"
                                ),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, LintConfig};

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![("crates/demo/src/lib.rs".to_string(), src.to_string())];
        lint_files(&files, &LintConfig::workspace_default())
            .into_iter()
            .filter(|f| f.rule == ID)
            .collect()
    }

    #[test]
    fn while_wait_passes() {
        assert!(run("fn f(s: &S) {\n\
             let mut g = s.m.lock();\n\
             while !*g { g = s.cv.wait(g).unwrap(); }\n\
             s.cv.notify_all();\n\
             }\n")
        .is_empty());
    }

    #[test]
    fn if_wait_is_flagged() {
        let f = run("fn f(s: &S) {\n\
             let mut g = s.m.lock();\n\
             if !*g { g = s.cv.wait(g).unwrap(); }\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("while/loop"));
    }

    #[test]
    fn bare_wait_is_flagged() {
        let f = run("fn f(s: &S) {\n\
             let g = s.m.lock();\n\
             let g = s.cv.wait(g).unwrap();\n\
             }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
    }

    #[test]
    fn notify_without_mutex_is_flagged() {
        let f = run("fn f(s: &S) { s.cv.notify_one(); }\n");
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("notify_one"));
    }

    #[test]
    fn notify_under_guard_passes() {
        assert!(run("fn f(s: &S) { let g = s.m.lock(); s.cv.notify_one(); }\n").is_empty());
    }

    #[test]
    fn wait_wrapper_checked_at_call_site_not_inside() {
        let f = run(
            "fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {\n\
             cv.wait(g).unwrap_or_else(PoisonError::into_inner)\n\
             }\n\
             fn bad(s: &S) { let st = s.m.lock(); let st = wait(&s.cv, st); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(
            f[0].line, 4,
            "only the un-looped call site, not the wrapper"
        );
    }

    #[test]
    fn allow_comment_suppresses_notify() {
        assert!(run("fn f(s: &S) {\n\
             // idf-lint: allow(condvar-discipline) -- predicate set under lock above\n\
             s.cv.notify_all();\n\
             }\n")
        .is_empty());
    }
}
