//! The rule set. Each module exports one [`crate::Rule`] implementation;
//! the inventory lives in [`crate::all_rules`].

pub mod api_parity;
pub mod atomics_audit;
pub mod blocking_under_lock;
pub mod condvar_discipline;
pub mod failpoint_registry;
pub mod hot_path_panic;
pub mod instrument_routing;
pub mod lock_order;
pub mod raw_clock;
pub mod safety_comment;
pub mod wire_error_codes;
