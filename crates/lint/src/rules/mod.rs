//! The rule set. Each module exports one [`crate::Rule`] implementation;
//! the inventory lives in [`crate::all_rules`].

pub mod api_parity;
pub mod failpoint_registry;
pub mod hot_path_panic;
pub mod instrument_routing;
pub mod raw_clock;
pub mod safety_comment;
