//! Rule `failpoint-registry`: every failpoint site name is declared as a
//! named const, registered exactly once in its file's `SITES` table, and
//! call sites never pass raw string literals.
//!
//! The chaos suite iterates `SITES` and asserts the snapshot invariants
//! hold with a fault injected at every registered site — a site that is
//! declared but not registered silently escapes chaos coverage, and a raw
//! `eval("...")` literal can drift from the const without any compiler
//! help. Concretely, per registry file (`crates/{core,engine}/src/
//! failpoints.rs`):
//!
//! 1. every `pub const NAME: &str = "..."` appears exactly once in that
//!    file's `pub const SITES: &[&str] = &[...]` table;
//! 2. every entry of `SITES` resolves to a declared const;
//! 3. no two consts (across all registry files, i.e. spanning every
//!    crate's SITES table) share a string value **or a const name** —
//!    chaos tooling and grep address sites by both;
//! 4. outside the `idf-fail` crate, the registry files themselves, and
//!    test code, `eval(...)`/`check(...)` never takes a string literal —
//!    sites must be referenced by const.

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// See module docs.
pub struct FailpointRegistry;

const ID: &str = "failpoint-registry";

/// `--explain` text; DESIGN.md §8 carries the same contract.
pub const EXPLAIN: &str = "\
Each failpoint registry (crates/*/src/failpoints.rs) declares site-name\n\
consts and a SITES table the chaos suites iterate. The rule checks,\n\
per file: every const appears exactly once in SITES, and every SITES\n\
entry resolves to a local const. Across ALL registries (spanning every\n\
crate's SITES table): no two consts share a string value or a const\n\
name — chaos tooling addresses sites by both, and a collision silently\n\
halves coverage. Call sites outside the fail crate and tests must pass\n\
consts, never raw string literals. Suppress a deliberate exception\n\
with `// idf-lint: allow(failpoint-registry) -- why`.";

impl Rule for FailpointRegistry {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "failpoint consts registered exactly once in SITES; no raw string literals at call sites"
    }

    fn explain(&self) -> &'static str {
        EXPLAIN
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        // (name, value, file, line) of every declared site const, across
        // all registry files — the cross-crate SITES inventory.
        let mut all_decls: Vec<(String, String, String, u32)> = Vec::new();
        for sf in files {
            if cfg.failpoint_registries.iter().any(|p| *p == sf.path) {
                check_registry(sf, &mut all_decls, out);
            }
        }
        // Cross-registry duplicate string values.
        let mut by_value: BTreeMap<&str, Vec<&(String, String, String, u32)>> = BTreeMap::new();
        for d in &all_decls {
            by_value.entry(d.1.as_str()).or_default().push(d);
        }
        for (value, decls) in by_value {
            if decls.len() > 1 {
                for d in &decls[1..] {
                    out.push(Finding {
                        rule: ID,
                        file: d.2.clone(),
                        line: d.3,
                        message: format!(
                            "duplicate failpoint name \"{}\" (first declared in {}:{})",
                            value, decls[0].2, decls[0].3
                        ),
                    });
                }
            }
        }
        // Cross-registry duplicate const *names*: `failpoints::X` in two
        // crates is legal Rust but ambiguous to grep and chaos tooling.
        let mut by_name: BTreeMap<&str, Vec<&(String, String, String, u32)>> = BTreeMap::new();
        for d in &all_decls {
            by_name.entry(d.0.as_str()).or_default().push(d);
        }
        for (name, decls) in by_name {
            let distinct_files = decls.iter().map(|d| d.2.as_str()).collect::<BTreeSet<_>>();
            if distinct_files.len() > 1 {
                for d in &decls[1..] {
                    out.push(Finding {
                        rule: ID,
                        file: d.2.clone(),
                        line: d.3,
                        message: format!(
                            "site const name {name} is declared in multiple registries \
                             (also {}:{}); const names must be unique across all SITES tables",
                            decls[0].2, decls[0].3
                        ),
                    });
                }
            }
        }
        // Raw literal call sites.
        for sf in files {
            let exempt = sf.path.starts_with(cfg.fail_crate_prefix)
                || cfg.failpoint_registries.iter().any(|p| *p == sf.path)
                || sf.is_test_path();
            if exempt {
                continue;
            }
            check_call_sites(sf, out);
        }
    }
}

/// Validate one registry file and collect its const declarations as
/// `(name, value, file, line)`.
fn check_registry(
    sf: &SourceFile,
    decls: &mut Vec<(String, String, String, u32)>,
    out: &mut Vec<Finding>,
) {
    let toks = &sf.lexed.toks;
    let n = toks.len();
    // name -> (value, line)
    let mut consts: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut sites: Vec<(String, u32)> = Vec::new();
    let mut sites_line: Option<u32> = None;
    let mut i = 0usize;
    while i < n {
        // `const NAME : … = …` — visibility does not matter for the
        // registry contract.
        if toks[i].kind == TokKind::Ident && toks[i].text == "const" {
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let line = name_tok.line;
            // Scan to `=`, then classify the initializer.
            let mut j = i + 2;
            while j < n && toks[j].text != "=" && toks[j].text != ";" {
                j += 1;
            }
            if name == "SITES" {
                sites_line = Some(line);
                // Collect idents of the `&[A, B, …]` initializer.
                while j < n && toks[j].text != ";" {
                    if toks[j].kind == TokKind::Ident {
                        sites.push((toks[j].text.clone(), toks[j].line));
                    }
                    j += 1;
                }
            } else if let Some(val) = toks.get(j + 1).filter(|v| v.kind == TokKind::Str) {
                consts.insert(name, (val.text.clone(), line));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    if sites_line.is_none() && !consts.is_empty() {
        out.push(Finding {
            rule: ID,
            file: sf.path.clone(),
            line: 1,
            message: "registry file declares site consts but no SITES table".to_string(),
        });
        // Still record declarations for the duplicate checks.
        for (name, (value, line)) in &consts {
            decls.push((name.clone(), value.clone(), sf.path.clone(), *line));
        }
        return;
    }
    for (name, (value, line)) in &consts {
        let count = sites.iter().filter(|(s, _)| s == name).count();
        if count != 1 {
            out.push(Finding {
                rule: ID,
                file: sf.path.clone(),
                line: *line,
                message: format!(
                    "site const {name} (\"{value}\") appears {count} times in SITES (want exactly 1)"
                ),
            });
        }
        decls.push((name.clone(), value.clone(), sf.path.clone(), *line));
    }
    for (entry, line) in &sites {
        if !consts.contains_key(entry) {
            out.push(Finding {
                rule: ID,
                file: sf.path.clone(),
                line: *line,
                message: format!("SITES entry {entry} is not a site const declared in this file"),
            });
        }
    }
}

/// Flag `eval("…")` / `check("…")` with raw string-literal arguments.
fn check_call_sites(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        if t.kind != TokKind::Ident || (t.text != "eval" && t.text != "check") {
            continue;
        }
        let open = toks.get(i + 1);
        let arg = toks.get(i + 2);
        if open.is_some_and(|o| o.kind == TokKind::Punct && o.text == "(")
            && arg.is_some_and(|a| a.kind == TokKind::Str)
        {
            let name = arg.map(|a| a.text.clone()).unwrap_or_default();
            out.push(Finding {
                rule: ID,
                file: sf.path.clone(),
                line: t.line,
                message: format!(
                    "raw failpoint name \"{name}\" at a {} call; use a named const from failpoints.rs",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        lint_files(&files, &LintConfig::workspace_default())
            .into_iter()
            .filter(|f| f.rule == ID)
            .collect()
    }

    const GOOD: &str = "pub const A: &str = \"core::a\";\npub const B: &str = \"core::b\";\npub const SITES: &[&str] = &[A, B];\n";

    #[test]
    fn well_formed_registry_passes() {
        assert!(run(&[("crates/core/src/failpoints.rs", GOOD)]).is_empty());
    }

    #[test]
    fn unregistered_const_is_flagged() {
        let src = "pub const A: &str = \"core::a\";\npub const B: &str = \"core::b\";\npub const SITES: &[&str] = &[A];\n";
        let f = run(&[("crates/core/src/failpoints.rs", src)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains('B'));
    }

    #[test]
    fn double_registration_is_flagged() {
        let src = "pub const A: &str = \"core::a\";\npub const SITES: &[&str] = &[A, A];\n";
        let f = run(&[("crates/core/src/failpoints.rs", src)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("2 times"));
    }

    #[test]
    fn unknown_sites_entry_is_flagged() {
        let src = "pub const A: &str = \"core::a\";\npub const SITES: &[&str] = &[A, GHOST];\n";
        let f = run(&[("crates/core/src/failpoints.rs", src)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("GHOST"));
    }

    #[test]
    fn duplicate_values_across_files_are_flagged() {
        let other = "pub const X: &str = \"core::a\";\npub const SITES: &[&str] = &[X];\n";
        let f = run(&[
            ("crates/core/src/failpoints.rs", GOOD),
            ("crates/engine/src/failpoints.rs", other),
        ]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("duplicate"));
    }

    #[test]
    fn duplicate_const_names_across_registries_are_flagged() {
        let other = "pub const A: &str = \"engine::a\";\npub const SITES: &[&str] = &[A];\n";
        let f = run(&[
            ("crates/core/src/failpoints.rs", GOOD),
            ("crates/engine/src/failpoints.rs", other),
        ]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("multiple registries"));
        assert_eq!(f[0].file, "crates/engine/src/failpoints.rs");
    }

    #[test]
    fn raw_literal_call_site_is_flagged() {
        let f = run(&[(
            "crates/core/src/partition.rs",
            "fn f() { failpoints::check(\"core::probe::partition\")?; }",
        )]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn const_call_site_and_tests_are_fine() {
        assert!(run(&[(
            "crates/core/src/partition.rs",
            "fn f() { failpoints::check(failpoints::PARTITION_PROBE)?; }",
        )])
        .is_empty());
        assert!(run(&[(
            "crates/core/tests/chaos.rs",
            "fn f() { idf_fail::eval(\"core::a\").unwrap(); }",
        )])
        .is_empty());
    }
}
