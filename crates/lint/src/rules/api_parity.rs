//! Rule `api-parity`: the `idf-obs` and `idf-fail` no-op mirrors must
//! expose exactly the public API of their real halves.
//!
//! The workspace compiles every feature-gated subsystem down to an
//! API-identical no-op (`--no-default-features`), so a `pub fn` added to
//! the real module but not the mirror only breaks the *stripped* build —
//! which local `cargo test` never exercises. This rule diffs the public
//! surface (top-level and inherent-impl `pub fn` signatures, `pub const`
//! names and types) between the real file set and the mirror file set of
//! each configured [`crate::ParityPair`].
//!
//! Signatures are compared token-normalized: whitespace is canonical,
//! leading underscores on parameter names are stripped (no-op bodies
//! conventionally take `_name: T`), and trait impls are ignored on both
//! sides (their methods are not `pub` surface).

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};
use std::collections::BTreeMap;

/// See module docs.
pub struct ApiParity;

const ID: &str = "api-parity";

impl Rule for ApiParity {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "feature-gated no-op mirrors (idf-obs, idf-fail) expose the exact real public API"
    }

    fn explain(&self) -> &'static str {
        "The no-op mirrors compiled in when a feature is off (`parity_pairs`:\n\
         idf-obs/noop.rs, idf-fail/noop.rs) must expose exactly the real\n\
         halves' `pub fn`/`pub const` surface with token-identical signatures\n\
         — drift means code that only compiles with the feature on. Fix by\n\
         mirroring the item; suppress an intentionally-divergent file with\n\
         `// idf-lint: allow-file(api-parity) -- why`."
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        for pair in &cfg.parity_pairs {
            let real = extract_set(files, &pair.real);
            let mirror = extract_set(files, &pair.mirror);
            // Skip the pair entirely when neither side is present in the
            // file set (fixture runs lint single files).
            if real.is_empty() && mirror.is_empty() {
                continue;
            }
            let anchor = pair
                .mirror
                .first()
                .map(|p| p.to_string())
                .unwrap_or_default();
            for (key, item) in &real {
                match mirror.get(key) {
                    None => out.push(Finding {
                        rule: ID,
                        file: anchor.clone(),
                        line: 1,
                        message: format!(
                            "{}: `{}` ({}:{}) has no counterpart in the no-op mirror",
                            pair.name,
                            display_key(key),
                            item.file,
                            item.line
                        ),
                    }),
                    Some(m) if m.sig != item.sig => out.push(Finding {
                        rule: ID,
                        file: m.file.clone(),
                        line: m.line,
                        message: format!(
                            "{}: `{}` signature drifted from the real half: mirror `{}` vs real `{}`",
                            pair.name,
                            display_key(key),
                            m.sig,
                            item.sig
                        ),
                    }),
                    Some(_) => {}
                }
            }
            for (key, item) in &mirror {
                if !real.contains_key(key) {
                    out.push(Finding {
                        rule: ID,
                        file: item.file.clone(),
                        line: item.line,
                        message: format!(
                            "{}: mirror-only item `{}` does not exist in the real half",
                            pair.name,
                            display_key(key)
                        ),
                    });
                }
            }
        }
    }
}

fn display_key(key: &(String, String)) -> String {
    if key.0.is_empty() {
        key.1.clone()
    } else {
        format!("{}::{}", key.0, key.1)
    }
}

/// One extracted public API item.
#[derive(Debug)]
struct ApiItem {
    file: String,
    line: u32,
    /// Normalized signature (fns) or `const NAME : Type` (consts).
    sig: String,
}

/// Extract the public surface of the files in `paths`, keyed by
/// `(impl target or "", item name)`.
fn extract_set(files: &[SourceFile], paths: &[&str]) -> BTreeMap<(String, String), ApiItem> {
    let mut out = BTreeMap::new();
    for sf in files {
        if paths.iter().any(|p| *p == sf.path) {
            extract_file(sf, &mut out);
        }
    }
    out
}

fn extract_file(sf: &SourceFile, out: &mut BTreeMap<(String, String), ApiItem>) {
    let toks = &sf.lexed.toks;
    let n = toks.len();
    let mut i = 0usize;
    let mut depth = 0i32;
    // Stack of (brace depth inside the impl body, impl target or None for
    // trait impls / non-impl braces). Only inherent impl bodies at their
    // immediate depth contribute items.
    let mut impl_stack: Vec<(i32, Option<String>)> = Vec::new();
    while i < n {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                i += 1;
                continue;
            }
            (TokKind::Punct, "}") => {
                depth -= 1;
                impl_stack.retain(|(d, _)| *d <= depth);
                i += 1;
                continue;
            }
            (TokKind::Ident, "impl") if depth == 0 => {
                // Parse header up to `{`.
                let mut j = i + 1;
                let mut saw_for = false;
                let mut target_before_for: Option<String> = None;
                let mut target_after_for: Option<String> = None;
                while j < n && !(toks[j].kind == TokKind::Punct && toks[j].text == "{") {
                    if toks[j].kind == TokKind::Ident {
                        if toks[j].text == "for" {
                            saw_for = true;
                        } else if saw_for {
                            if target_after_for.is_none() {
                                target_after_for = Some(toks[j].text.clone());
                            }
                        } else if target_before_for.is_none() {
                            target_before_for = Some(toks[j].text.clone());
                        }
                    }
                    j += 1;
                }
                // Trait impls contribute nothing; inherent impls set the
                // target for items at depth+1.
                let target = if saw_for { None } else { target_before_for };
                impl_stack.push((depth + 1, target));
                i = j;
                continue;
            }
            (TokKind::Ident, "pub") => {
                let target = if depth == 0 {
                    Some(String::new())
                } else {
                    impl_stack
                        .iter()
                        .rev()
                        .find(|(d, _)| *d == depth)
                        .and_then(|(_, t)| t.clone())
                };
                if let Some(target) = target {
                    if let Some((name, sig, end)) = parse_pub_item(toks, i) {
                        out.insert(
                            (target, name),
                            ApiItem {
                                file: sf.path.clone(),
                                line: t.line,
                                sig,
                            },
                        );
                        i = end;
                        continue;
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
}

/// Parse a `pub fn` / `pub const` item starting at the `pub` token.
/// Returns `(name, normalized signature, index of the token the caller
/// should resume at)` — for fns that is the body `{`/`;` so brace depth
/// tracking stays correct.
fn parse_pub_item(toks: &[crate::lexer::Tok], i: usize) -> Option<(String, String, usize)> {
    let n = toks.len();
    let mut j = i + 1;
    // Optional visibility scope `pub(crate)` — such items are not public
    // API surface; skip them entirely.
    if toks.get(j).is_some_and(|t| t.text == "(") {
        return None;
    }
    let mut quals: Vec<&str> = Vec::new();
    while j < n
        && toks[j].kind == TokKind::Ident
        && matches!(
            toks[j].text.as_str(),
            "const" | "unsafe" | "async" | "extern"
        )
    {
        quals.push(toks[j].text.as_str());
        j += 1;
    }
    let head = toks.get(j)?;
    if head.kind != TokKind::Ident {
        return None;
    }
    match head.text.as_str() {
        "fn" => {
            let name = toks.get(j + 1)?.text.clone();
            // Signature runs to the body `{` or a trailing `;`.
            let mut k = j;
            let mut sig = String::new();
            for q in &quals {
                push_tok_text(&mut sig, q);
            }
            while k < n {
                match (toks[k].kind, toks[k].text.as_str()) {
                    (TokKind::Punct, "{") | (TokKind::Punct, ";") => break,
                    _ => {}
                }
                let text = normalized_tok_text(toks, k);
                push_tok_text(&mut sig, &text);
                k += 1;
            }
            Some((name, sig, k))
        }
        "const" => unreachable!("const is consumed as a qualifier"),
        _ => {
            // `pub const NAME: Type = …` — `const` landed in quals and the
            // head is the const's name.
            if quals == ["const"] {
                let name = head.text.clone();
                // Type tokens run from after `:` to `=` or `;`.
                let mut k = j;
                let mut sig = String::from("const");
                while k < n {
                    match (toks[k].kind, toks[k].text.as_str()) {
                        (TokKind::Punct, "=") | (TokKind::Punct, ";") => break,
                        _ => {}
                    }
                    push_tok_text(&mut sig, &toks[k].text);
                    k += 1;
                }
                Some((name, sig, k))
            } else {
                None
            }
        }
    }
}

/// Token text with no-op parameter-name normalization: an ident starting
/// with `_` whose next token is `:` has the underscores stripped.
fn normalized_tok_text(toks: &[crate::lexer::Tok], k: usize) -> String {
    let t = &toks[k];
    if t.kind == TokKind::Ident
        && t.text.starts_with('_')
        && toks.get(k + 1).is_some_and(|n| n.text == ":")
    {
        let stripped = t.text.trim_start_matches('_');
        if !stripped.is_empty() {
            return stripped.to_string();
        }
    }
    if t.kind == TokKind::Lifetime {
        return format!("'{}", t.text);
    }
    t.text.clone()
}

fn push_tok_text(sig: &mut String, text: &str) {
    // Glue punctuation tightly so `& self` and `&self` normalize equal.
    let tight = matches!(
        text,
        ":" | "<" | ">" | "&" | "'" | "(" | ")" | "[" | "]" | "," | ";"
    );
    if !sig.is_empty() && !tight && !sig.ends_with(['<', '&', '(', '[', ':', '\'']) {
        sig.push(' ');
    }
    sig.push_str(text);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn run(real: &str, mirror: &str) -> Vec<Finding> {
        lint_files(
            &[
                ("crates/fail/src/registry.rs".to_string(), real.to_string()),
                ("crates/fail/src/noop.rs".to_string(), mirror.to_string()),
            ],
            &LintConfig::workspace_default(),
        )
        .into_iter()
        .filter(|f| f.rule == ID)
        .collect()
    }

    #[test]
    fn identical_surfaces_pass() {
        let real = "pub struct G;\nimpl G {\n pub fn site(&self) -> &str { \"x\" }\n}\npub fn eval(site: &str) -> Result<(), String> { Ok(()) }";
        let mirror = "pub struct G;\nimpl G {\n pub fn site(&self) -> &str { \"\" }\n}\npub fn eval(_site: &str) -> Result<(), String> { Ok(()) }";
        assert!(run(real, mirror).is_empty(), "{:?}", run(real, mirror));
    }

    #[test]
    fn missing_mirror_fn_is_flagged() {
        let real = "pub fn eval(site: &str) {}\npub fn hit_count(site: &str) -> u64 { 0 }";
        let mirror = "pub fn eval(_site: &str) {}";
        let f = run(real, mirror);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("hit_count"));
    }

    #[test]
    fn signature_drift_is_flagged() {
        let real = "pub fn eval(site: &str) -> Result<(), String> { Ok(()) }";
        let mirror = "pub fn eval(_site: &str) {}";
        let f = run(real, mirror);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("drifted"));
    }

    #[test]
    fn mirror_only_item_is_flagged() {
        let f = run("", "pub fn extra() {}");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("mirror-only"));
    }

    #[test]
    fn trait_impls_and_private_items_are_ignored() {
        let real = "impl Drop for G {\n fn drop(&mut self) {}\n}\nfn private() {}\npub(crate) fn scoped() {}";
        let mirror = "";
        assert!(run(real, mirror).is_empty());
    }

    #[test]
    fn const_type_mismatch_is_flagged() {
        let real = "pub const CAP: usize = 128;";
        let mirror = "pub const CAP: u32 = 128;";
        let f = run(real, mirror);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn nested_fn_inside_body_is_not_surface() {
        let real = "pub fn outer() { pub fn inner() {} }";
        let mirror = "pub fn outer() {}";
        assert!(run(real, mirror).is_empty());
    }
}
