//! Rule `raw-clock`: no raw `Instant::now()`/`SystemTime::now()` in the
//! storage and probe modules (`crates/core/src`, `crates/ctrie/src`)
//! unless the read is `Sampler`-gated.
//!
//! PR 3's overhead budget (instrumented ≤ 1.05× stripped on the
//! point-lookup bench) holds because unsampled probes never touch the
//! clock: every clock read on a probe path goes through
//! `sampler.tick().then(Instant::now)`. A site counts as gated when the
//! ident `tick` appears on the same line or within the two lines above
//! the clock read. Test regions and test files are exempt (tests time
//! things freely).

use crate::{Finding, LintConfig, Rule, SourceFile, TokKind};

/// See module docs.
pub struct RawClock;

const ID: &str = "raw-clock";

impl Rule for RawClock {
    fn id(&self) -> &'static str {
        ID
    }

    fn describe(&self) -> &'static str {
        "no raw Instant::now()/SystemTime::now() in storage/probe modules unless Sampler-gated"
    }

    fn explain(&self) -> &'static str {
        "Storage/probe modules (`clock_prefixes`: core, ctrie) must not read\n\
         the clock directly — per-operation `Instant::now()` calls blew the\n\
         <=1.05x probe overhead budget in PR 3. Clock reads must flow through\n\
         `Sampler::tick()` (amortized) or carry\n\
         `// idf-lint: allow(raw-clock) -- why` for cold paths where a\n\
         syscall per call is fine (startup, shutdown, error handling)."
    }

    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>) {
        for sf in files {
            let in_scope = cfg.clock_prefixes.iter().any(|p| sf.path.starts_with(p));
            if !in_scope || sf.is_test_path() {
                continue;
            }
            check_file(sf, out);
        }
    }
}

fn check_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        if t.kind != TokKind::Ident || (t.text != "Instant" && t.text != "SystemTime") {
            continue;
        }
        // Match `Instant::now` — `::` lexes as two `:` puncts.
        let is_now = toks.get(i + 1).is_some_and(|a| a.text == ":")
            && toks.get(i + 2).is_some_and(|b| b.text == ":")
            && toks
                .get(i + 3)
                .is_some_and(|c| c.kind == TokKind::Ident && c.text == "now");
        if !is_now {
            continue;
        }
        if is_sampler_gated(sf, t.line) {
            continue;
        }
        out.push(Finding {
            rule: ID,
            file: sf.path.clone(),
            line: t.line,
            message: format!(
                "raw {}::now() on a storage/probe path; gate it behind Sampler::tick()",
                t.text
            ),
        });
    }
}

/// True when the ident `tick` appears on `line` or the two lines above.
fn is_sampler_gated(sf: &SourceFile, line: u32) -> bool {
    let lo = line.saturating_sub(2);
    (lo..=line).any(|l| {
        sf.tokens_on(l)
            .iter()
            .any(|&i| sf.tok(i).kind == TokKind::Ident && sf.tok(i).text == "tick")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn run_at(path: &str, src: &str) -> Vec<Finding> {
        lint_files(
            &[(path.to_string(), src.to_string())],
            &LintConfig::workspace_default(),
        )
        .into_iter()
        .filter(|f| f.rule == ID)
        .collect()
    }

    #[test]
    fn raw_clock_in_core_is_flagged() {
        let f = run_at("crates/core/src/x.rs", "fn f() { let t = Instant::now(); }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn sampler_gated_read_is_allowed() {
        let src =
            "fn f(m: &M) {\n let t = m.probe_sampler.tick()\n   .then(std::time::Instant::now);\n}";
        assert!(run_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn outside_scope_is_fine() {
        assert!(run_at("crates/engine/src/x.rs", "fn f() { Instant::now(); }").is_empty());
    }

    #[test]
    fn test_regions_and_test_files_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { Instant::now(); } }";
        assert!(run_at("crates/core/src/x.rs", src).is_empty());
        assert!(run_at("crates/core/tests/t.rs", "fn f() { Instant::now(); }").is_empty());
    }

    #[test]
    fn system_time_also_flagged() {
        assert_eq!(
            run_at("crates/ctrie/src/x.rs", "fn f() { SystemTime::now(); }").len(),
            1
        );
    }
}
