//! `idf-lint`: the workspace invariant checker.
//!
//! PRs 1–3 introduced correctness-by-convention rules that nothing
//! machine-checked: every `unsafe` site must justify itself, hot paths
//! must not panic, probe-path clock reads must be `Sampler`-gated, the
//! `idf-obs`/`idf-fail` no-op mirrors must stay API-identical, failpoint
//! names must stay registered, and every physical operator must route its
//! output through `TaskContext::instrument`. This crate enforces those as
//! named, suppressable rules over a hand-rolled token stream (the
//! workspace builds offline, so `syn` is unavailable — see [`lexer`]).
//!
//! Suppression syntax (inside any comment):
//!
//! ```text
//! // idf-lint: allow(rule-id, other-rule) -- justification
//! // idf-lint: allow-file(rule-id)
//! ```
//!
//! The attribute-flavored spelling `idf_lint::allow(rule-id)` is accepted
//! as a synonym. A line suppression covers the comment's own lines and
//! the first code line after it; `allow-file` covers the whole file.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod lexer;
pub mod rules;

use lexer::{Lexed, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// One lint finding, pointing at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `safety-comment`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Render the finding as a JSON object (hand-rolled: no deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-file suppression state parsed from comments.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// Rules allowed for the entire file.
    file_allow: BTreeSet<String>,
    /// Rule → set of lines on which findings are suppressed.
    line_allow: BTreeMap<String, BTreeSet<u32>>,
}

impl Suppressions {
    /// True when a finding for `rule` at `line` is suppressed.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.file_allow.contains(rule)
            || self
                .line_allow
                .get(rule)
                .is_some_and(|lines| lines.contains(&line))
    }

    fn parse(lexed: &Lexed) -> Self {
        let mut out = Self::default();
        for c in &lexed.comments {
            for (directive, rules) in parse_directives(&c.text) {
                for rule in rules {
                    match directive {
                        Directive::Allow => {
                            let lines = out.line_allow.entry(rule).or_default();
                            // Cover the comment's own lines plus the first
                            // code line after it (comment-above style).
                            for l in c.line_start..=c.line_end + 1 {
                                lines.insert(l);
                            }
                        }
                        Directive::AllowFile => {
                            out.file_allow.insert(rule);
                        }
                    }
                }
            }
        }
        out
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Directive {
    Allow,
    AllowFile,
}

/// Extract `allow(...)` / `allow-file(...)` directives from comment text.
fn parse_directives(text: &str) -> Vec<(Directive, Vec<String>)> {
    let mut out = Vec::new();
    for marker in ["idf-lint:", "idf_lint::"] {
        let mut rest = text;
        while let Some(pos) = rest.find(marker) {
            let after = &rest[pos + marker.len()..];
            let trimmed = after.trim_start();
            let directive = if trimmed.starts_with("allow-file") {
                Some(Directive::AllowFile)
            } else if trimmed.starts_with("allow") {
                Some(Directive::Allow)
            } else {
                None
            };
            if let Some(directive) = directive {
                if let Some(open) = trimmed.find('(') {
                    if let Some(close) = trimmed[open..].find(')') {
                        let inner = &trimmed[open + 1..open + close];
                        let rules: Vec<String> = inner
                            .split(',')
                            .map(|r| r.trim().to_string())
                            .filter(|r| !r.is_empty())
                            .collect();
                        if !rules.is_empty() {
                            out.push((directive, rules));
                        }
                    }
                }
            }
            rest = &rest[pos + marker.len()..];
        }
    }
    out
}

/// One source file prepared for linting: tokens, comments, suppressions,
/// per-token test-region mask, and a line → token index map.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// Parsed suppression directives.
    pub suppress: Suppressions,
    /// `test_mask[i]` is true when token `i` sits inside a `#[cfg(test)]`
    /// module or `#[test]` function body.
    pub test_mask: Vec<bool>,
    line_tokens: BTreeMap<u32, Vec<usize>>,
}

impl SourceFile {
    /// Lex and prepare `src` found at workspace-relative `path`.
    pub fn new(path: String, src: &str) -> Self {
        let lexed = lexer::lex(src);
        let suppress = Suppressions::parse(&lexed);
        let test_mask = compute_test_mask(&lexed.toks);
        let mut line_tokens: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, t) in lexed.toks.iter().enumerate() {
            line_tokens.entry(t.line).or_default().push(i);
        }
        Self {
            path,
            lexed,
            suppress,
            test_mask,
            line_tokens,
        }
    }

    /// Code tokens (by index into `lexed.toks`) on `line`, in order.
    pub fn tokens_on(&self, line: u32) -> &[usize] {
        self.line_tokens.get(&line).map_or(&[], Vec::as_slice)
    }

    /// True when any comment covering `line` contains `needle`.
    pub fn comment_on_line_contains(&self, line: u32, needle: &str) -> bool {
        self.lexed
            .comments_on(line)
            .any(|c| c.text.contains(needle))
    }

    /// True when this path is a test source (integration tests, benches,
    /// examples) as opposed to shipped library code.
    pub fn is_test_path(&self) -> bool {
        self.path.contains("/tests/")
            || self.path.contains("/benches/")
            || self.path.contains("/examples/")
            || self.path.starts_with("examples/")
    }

    /// Convenience: the token at `idx`.
    pub fn tok(&self, idx: usize) -> &Tok {
        &self.lexed.toks[idx]
    }
}

/// Brace-match `#[cfg(test)] mod`/`#[test] fn` regions into a token mask.
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let n = toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        // Attribute: `#` `[` ... `]`.
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            let Some(open) = toks.get(i + 1) else {
                break;
            };
            if open.kind == TokKind::Punct && open.text == "[" {
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut saw_test = false;
                let mut first_ident: Option<&str> = None;
                while j < n && depth > 0 {
                    match (&toks[j].kind, toks[j].text.as_str()) {
                        (TokKind::Punct, "[") => depth += 1,
                        (TokKind::Punct, "]") => depth -= 1,
                        (TokKind::Ident, id) => {
                            if first_ident.is_none() {
                                first_ident = Some(id);
                            }
                            if id == "test" {
                                saw_test = true;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                // `#[test]` or `#[cfg(… test …)]` (covers cfg(all(test, …)));
                // `#[cfg_attr(…)]` never marks a region even if it names test.
                let marks = saw_test
                    && matches!(first_ident, Some("test") | Some("cfg"))
                    && first_ident != Some("cfg_attr");
                if marks {
                    // Find the body open brace after the item header and
                    // brace-match it; `mod name;` (no body) marks nothing.
                    let mut k = j;
                    let mut found = None;
                    while k < n {
                        match (&toks[k].kind, toks[k].text.as_str()) {
                            (TokKind::Punct, "{") => {
                                found = Some(k);
                                break;
                            }
                            (TokKind::Punct, ";") => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(start) = found {
                        let mut depth = 1usize;
                        let mut e = start + 1;
                        while e < n && depth > 0 {
                            match (&toks[e].kind, toks[e].text.as_str()) {
                                (TokKind::Punct, "{") => depth += 1,
                                (TokKind::Punct, "}") => depth -= 1,
                                _ => {}
                            }
                            e += 1;
                        }
                        for m in mask.iter_mut().take(e).skip(i) {
                            *m = true;
                        }
                        i = e;
                        continue;
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// A named lint rule over the prepared file set.
pub trait Rule {
    /// Stable identifier used in findings and suppressions.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Multi-line rationale + allow syntax for `--explain <rule>`.
    /// DESIGN.md §8 carries the same contract text.
    fn explain(&self) -> &'static str {
        self.describe()
    }
    /// Append findings for `files` to `out`.
    fn check(&self, files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Finding>);
}

/// An API-parity pair: a set of "real" files whose public surface must be
/// mirrored exactly by a set of no-op "mirror" files.
#[derive(Debug, Clone)]
pub struct ParityPair {
    /// Display name for findings (e.g. `idf-obs`).
    pub name: &'static str,
    /// Workspace-relative paths of the real implementation files.
    pub real: Vec<&'static str>,
    /// Workspace-relative paths of the mirror files.
    pub mirror: Vec<&'static str>,
}

/// Scopes and site lists consumed by the rules.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes whose non-test code must not panic (rule
    /// `hot-path-panic`).
    pub hot_path_prefixes: Vec<&'static str>,
    /// Files (within the hot-path scope) where panicking slice indexing
    /// is also flagged — the binary row decode paths.
    pub index_check_files: Vec<&'static str>,
    /// Path prefixes where raw clock reads are flagged (rule `raw-clock`).
    pub clock_prefixes: Vec<&'static str>,
    /// Real/mirror file pairs (rule `api-parity`).
    pub parity_pairs: Vec<ParityPair>,
    /// Files holding failpoint name consts + `SITES` tables (rule
    /// `failpoint-registry`).
    pub failpoint_registries: Vec<&'static str>,
    /// Path prefix of the failpoint crate itself (its internals may pass
    /// raw strings to `eval`).
    pub fail_crate_prefix: &'static str,
    /// Path prefix of the physical operators (rule `instrument-routing`).
    pub physical_prefix: &'static str,
    /// Crate `src/` prefixes whose lock guards must not span blocking
    /// calls (rule `blocking-under-lock`) — the serving hot paths.
    pub blocking_lock_prefixes: Vec<&'static str>,
    /// Prefixes where `Ordering::Relaxed` is acceptable without a
    /// per-site justification (rule `atomics-audit`) — counters and
    /// metrics modules whose loads never justify other reads.
    pub relaxed_ok_prefixes: Vec<&'static str>,
    /// `(file, enum)` pairs whose discriminants are wire-protocol codes
    /// (rule `wire-error-codes`).
    pub wire_enums: Vec<(&'static str, &'static str)>,
}

impl LintConfig {
    /// The scopes for this workspace.
    pub fn workspace_default() -> Self {
        Self {
            hot_path_prefixes: vec![
                "crates/ctrie/src/",
                "crates/core/src/batch.rs",
                "crates/core/src/layout.rs",
                "crates/core/src/partition.rs",
                "crates/core/src/pointer.rs",
                "crates/core/src/table.rs",
                "crates/engine/src/physical/",
            ],
            index_check_files: vec!["crates/core/src/batch.rs", "crates/core/src/layout.rs"],
            clock_prefixes: vec!["crates/core/src/", "crates/ctrie/src/"],
            parity_pairs: vec![
                ParityPair {
                    name: "idf-obs",
                    real: vec![
                        "crates/obs/src/counter.rs",
                        "crates/obs/src/histogram.rs",
                        "crates/obs/src/registry.rs",
                        "crates/obs/src/sampler.rs",
                    ],
                    mirror: vec!["crates/obs/src/noop.rs"],
                },
                ParityPair {
                    name: "idf-fail",
                    real: vec!["crates/fail/src/registry.rs"],
                    mirror: vec!["crates/fail/src/noop.rs"],
                },
                ParityPair {
                    name: "idf-compact",
                    real: vec!["crates/compact/src/worker.rs"],
                    mirror: vec!["crates/compact/src/noop.rs"],
                },
            ],
            failpoint_registries: vec![
                "crates/core/src/failpoints.rs",
                "crates/durable/src/failpoints.rs",
                "crates/engine/src/failpoints.rs",
                "crates/serve/src/failpoints.rs",
                "crates/views/src/failpoints.rs",
                "crates/compact/src/failpoints.rs",
            ],
            fail_crate_prefix: "crates/fail/",
            physical_prefix: "crates/engine/src/physical/",
            blocking_lock_prefixes: vec![
                "crates/ctrie/src/",
                "crates/core/src/",
                "crates/serve/src/",
                "crates/durable/src/",
                "crates/views/src/",
                "crates/compact/src/",
            ],
            relaxed_ok_prefixes: vec![
                "crates/obs/src/",
                "crates/bench/src/",
                "crates/engine/src/physical/metrics.rs",
            ],
            wire_enums: vec![("crates/serve/src/wire.rs", "ErrorCode")],
        }
    }
}

/// All rules, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(rules::safety_comment::SafetyComment),
        Box::new(rules::hot_path_panic::HotPathPanic),
        Box::new(rules::raw_clock::RawClock),
        Box::new(rules::api_parity::ApiParity),
        Box::new(rules::failpoint_registry::FailpointRegistry),
        Box::new(rules::instrument_routing::InstrumentRouting),
        Box::new(rules::lock_order::LockOrder),
        Box::new(rules::blocking_under_lock::BlockingUnderLock),
        Box::new(rules::condvar_discipline::CondvarDiscipline),
        Box::new(rules::atomics_audit::AtomicsAudit),
        Box::new(rules::wire_error_codes::WireErrorCodes),
    ]
}

/// Lint an in-memory file set. `files` holds `(workspace-relative path,
/// source)` pairs; paths select which rules/scopes apply, which lets the
/// fixture tests masquerade as workspace files.
pub fn lint_files(files: &[(String, String)], cfg: &LintConfig) -> Vec<Finding> {
    lint_files_filtered(files, cfg, None)
}

/// [`lint_files`] restricted to a subset of rule ids (`None` = all).
pub fn lint_files_filtered(
    files: &[(String, String)],
    cfg: &LintConfig,
    only: Option<&[String]>,
) -> Vec<Finding> {
    let prepared: Vec<SourceFile> = files
        .iter()
        .map(|(p, s)| SourceFile::new(p.clone(), s))
        .collect();
    let mut raw = Vec::new();
    for rule in all_rules() {
        if let Some(ids) = only {
            if !ids.iter().any(|i| i == rule.id()) {
                continue;
            }
        }
        rule.check(&prepared, cfg, &mut raw);
    }
    // Apply suppressions, then sort for stable output.
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let Some(sf) = prepared.iter().find(|sf| sf.path == f.file) else {
                return true;
            };
            !sf.suppress.covers(f.rule, f.line)
        })
        .collect();
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup();
    out
}

/// Recursively collect workspace `.rs` sources under `root`, skipping
/// build output, VCS metadata, and the lint fixture corpus (which seeds
/// intentional violations).
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_directives_parse() {
        let lexed = lexer::lex(
            "// idf-lint: allow(hot-path-panic, raw-clock) -- why\nlet x = 1;\n\
             // idf-lint: allow-file(safety-comment)\n",
        );
        let s = Suppressions::parse(&lexed);
        assert!(s.covers("hot-path-panic", 1));
        assert!(s.covers("hot-path-panic", 2));
        assert!(!s.covers("hot-path-panic", 3));
        assert!(s.covers("raw-clock", 2));
        assert!(s.covers("safety-comment", 999));
    }

    #[test]
    fn attribute_flavored_suppression_parses() {
        let lexed = lexer::lex("// idf_lint::allow(api-parity)\nfn f() {}\n");
        let s = Suppressions::parse(&lexed);
        assert!(s.covers("api-parity", 2));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod_and_test_fn() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n\
                   #[test]\nfn t() { y.unwrap(); }\n\
                   #[cfg(all(test, feature = \"x\"))]\nmod more { }\n";
        let sf = SourceFile::new("a.rs".into(), src);
        let masked: Vec<&str> = sf
            .lexed
            .toks
            .iter()
            .zip(&sf.test_mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"helper"));
        assert!(masked.contains(&"t"));
        assert!(masked.contains(&"more"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn cfg_attr_miri_does_not_mask() {
        let src = "#[cfg_attr(miri, ignore)]\nfn not_a_test_region() { x.unwrap(); }\n";
        let sf = SourceFile::new("a.rs".into(), src);
        assert!(sf.test_mask.iter().all(|m| !m));
    }

    #[test]
    fn finding_json_escapes() {
        let f = Finding {
            rule: "safety-comment",
            file: "a\"b.rs".into(),
            line: 3,
            message: "x\ny".into(),
        };
        assert_eq!(
            f.to_json(),
            "{\"rule\":\"safety-comment\",\"file\":\"a\\\"b.rs\",\"line\":3,\"message\":\"x\\ny\"}"
        );
    }
}
