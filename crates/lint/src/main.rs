//! `idf-lint` CLI: walk the workspace and report invariant violations.
//!
//! ```text
//! cargo run -p idf-lint -- [--deny-all] [--root PATH] [--format human|json]
//!                          [--rule ID[,ID...]]... [--list-rules]
//!                          [--explain RULE]
//! ```
//!
//! Exit status: 0 when clean (or informational modes), 1 on findings
//! under `--deny-all`, 2 on usage/IO errors. `--format json` emits one
//! JSON object per line for machine consumption. `--explain` prints a
//! rule's rationale and allow syntax (the same text DESIGN.md §8
//! carries) and exits.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut format = Format::Human;
    let mut only: Vec<String> = Vec::new();
    let mut list_rules = false;
    let mut explain: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                _ => return usage("--format needs `human` or `json`"),
            },
            "--rule" => match args.next() {
                Some(r) => only.extend(
                    r.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty()),
                ),
                None => return usage("--rule needs a rule id (or a comma-separated list)"),
            },
            "--explain" => match args.next() {
                Some(r) => explain = Some(r),
                None => return usage("--explain needs a rule id"),
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in idf_lint::all_rules() {
            println!("{:<22} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let known: Vec<&'static str> = idf_lint::all_rules().iter().map(|r| r.id()).collect();
    if let Some(id) = explain {
        let Some(rule) = idf_lint::all_rules().into_iter().find(|r| r.id() == id) else {
            return usage(&format!(
                "unknown rule `{id}` (known: {})",
                known.join(", ")
            ));
        };
        println!("{} — {}\n", rule.id(), rule.describe());
        println!("{}", rule.explain());
        return ExitCode::SUCCESS;
    }
    for r in &only {
        if !known.contains(&r.as_str()) {
            return usage(&format!("unknown rule `{r}` (known: {})", known.join(", ")));
        }
    }

    let files = match idf_lint::collect_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("idf-lint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let cfg = idf_lint::LintConfig::workspace_default();
    let filter = if only.is_empty() {
        None
    } else {
        Some(only.as_slice())
    };
    let findings = idf_lint::lint_files_filtered(&files, &cfg, filter);

    match format {
        Format::Human => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("idf-lint: {} files clean", files.len());
            } else {
                eprintln!("idf-lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => {
            for f in &findings {
                println!("{}", f.to_json());
            }
        }
    }

    if deny_all && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(Clone, Copy)]
enum Format {
    Human,
    Json,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("idf-lint: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    eprintln!(
        "usage: idf-lint [--deny-all] [--root PATH] [--format human|json] \
         [--rule ID[,ID...]]... [--list-rules] [--explain RULE]"
    );
}
