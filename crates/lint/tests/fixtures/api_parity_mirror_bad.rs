// Fixture: mirror missing `drifted_extra` — the api-parity finding is
// anchored at line 1 of this file.

pub fn eval(_site: &str) -> Result<(), String> {
    Ok(())
}
