// idf-lint: allow-file(api-parity) -- fixture: intentionally incomplete
// mirror; the twin file shows the unsuppressed finding.

pub fn eval(_site: &str) -> Result<(), String> {
    Ok(())
}
