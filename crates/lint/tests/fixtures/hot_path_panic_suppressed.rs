// Fixture: the same panic sites as the bad twin, each silenced with an
// inline line allow carrying a justification.

pub fn decode(v: Option<u8>, p: &[u8]) -> u8 {
    // idf-lint: allow(hot-path-panic) -- fixture: length pre-checked by caller
    let first = p[0];
    // idf-lint: allow(hot-path-panic) -- fixture: presence pre-checked by caller
    let val = v.unwrap();
    first + val
}
