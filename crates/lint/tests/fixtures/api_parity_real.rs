// Fixture: the real half of a parity pair; `drifted_extra` has no
// counterpart in the mirror fixtures.

pub fn eval(site: &str) -> Result<(), String> {
    let _ = site;
    Ok(())
}

pub fn drifted_extra(site: &str) -> bool {
    site.is_empty()
}
