//! Suppressed twin: the wait sits in a predicate re-check loop (the
//! correct shape, no allow needed) and the bare notify carries an allow
//! stating why the predicate is safe without the mutex.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct S {
    state: Mutex<bool>,
    cv: Condvar,
}

fn good_wait(s: &S) {
    let mut g = lock(&s.state);
    while !*g {
        g = s.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
}

fn good_notify(s: &S) {
    *lock(&s.state) = true;
    // idf-lint: allow(condvar-discipline) -- predicate was set under the lock on the line above; notify-after-unlock
    s.cv.notify_all();
}
