//! Seeded blocking-under-lock violations: fsync-class I/O and a thread
//! join while a guard from a hot-path module is live.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct S {
    state: Mutex<u64>,
}

fn flush(s: &S, f: &std::fs::File, h: std::thread::JoinHandle<()>) {
    let g = lock(&s.state);
    let _ = f.sync_all();
    let _ = h.join();
    drop(g);
}
