// Fixture: seeded `hot-path-panic` violations. Mapped to a decode file
// (layout.rs) so the panicking-indexing check applies too.

pub fn decode(v: Option<u8>, p: &[u8]) -> u8 {
    let first = p[0];
    let val = v.unwrap();
    if val == 0 {
        panic!("zero");
    }
    first + val
}
