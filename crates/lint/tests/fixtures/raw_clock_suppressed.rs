// Fixture: a Sampler-gated clock read (passes without any directive)
// plus a raw read silenced with an inline allow.

pub fn gated(s: &Sampler) -> Option<std::time::Instant> {
    s.tick().then(std::time::Instant::now)
}

pub fn suppressed() -> std::time::Instant {
    // idf-lint: allow(raw-clock) -- fixture: startup-only, not a probe path
    std::time::Instant::now()
}
