//! Suppressed twin: the same blocking calls carry inline allows whose
//! why states what makes blocking under the guard safe here.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct S {
    state: Mutex<u64>,
}

fn flush(s: &S, f: &std::fs::File, h: std::thread::JoinHandle<()>) {
    let g = lock(&s.state);
    // idf-lint: allow(blocking-under-lock) -- group-commit drain: one fsync per batch under the lock is the design
    let _ = f.sync_all();
    // idf-lint: allow(blocking-under-lock) -- the joined thread never takes 'state'; join only reaps it
    let _ = h.join();
    drop(g);
}
