// Fixture: the same bare-iterator operator, silenced with an inline
// allow directly above the execute fn.

impl ExecutionPlan for RogueExec {
    // idf-lint: allow(instrument-routing) -- fixture: metadata-only operator
    fn execute(&self, partition: usize, _ctx: &TaskContext) -> ChunkIter {
        Box::new(self.chunks(partition).into_iter())
    }
}
