//! Suppressed twin: the AB edge is legalized by the crate's LOCK_ORDER
//! manifest; the deliberate BA inversion and the resulting cycle report
//! carry inline allows with a why.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock-acquisition order for this fixture crate.
pub const LOCK_ORDER: &[(&str, &str)] = &[
    ("a", "outer coordination lock; always first"),
    ("b", "inner data lock; nested inside a"),
];

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    fn ab(&self) {
        let ga = lock(&self.a);
        // idf-lint: allow(lock-order) -- cycle report site: the BA path below is a shutdown-only inversion, see fn ba
        let gb = lock(&self.b);
        drop(gb);
        drop(ga);
    }

    fn ba(&self) {
        let gb = lock(&self.b);
        // idf-lint: allow(lock-order) -- shutdown-only path: no thread can run fn ab concurrently once drain completed
        let ga = lock(&self.a);
        drop(ga);
        drop(gb);
    }
}
