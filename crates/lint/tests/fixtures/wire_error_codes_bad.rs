//! Seeded wire-error-codes violations: a reused discriminant, an
//! undocumented gap, and an implicit discriminant.

#[repr(u16)]
pub enum ErrorCode {
    Ok = 1,
    Reused = 1,
    Gapped = 4,
    Implicit,
}
