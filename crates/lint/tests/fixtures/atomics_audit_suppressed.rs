//! Suppressed twin: both orderings carry inline allows whose why states
//! what makes the unordered access safe / what needs the total order.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn read(c: &AtomicU64) -> u64 {
    // idf-lint: allow(atomics-audit) -- monotonic stats counter; nothing else is published through it
    c.load(Ordering::Relaxed)
}

pub fn publish(c: &AtomicU64) {
    // idf-lint: allow(atomics-audit) -- pairs the flag with a second atomic; two atomics need a single total order
    c.store(1, Ordering::SeqCst);
}
