// Fixture: seeded `raw-clock` violation — an ungated clock read on a
// storage-path file.

pub fn probe_started() -> std::time::Instant {
    std::time::Instant::now()
}
