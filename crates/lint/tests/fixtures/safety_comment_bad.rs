// Fixture: seeded `safety-comment` violations — an unjustified unsafe
// block, impl, and fn. tests/fixtures.rs asserts the exact lines.

pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe impl Send for Wrapper {}

pub unsafe fn transmute_it(x: u64) -> f64 {
    f64::from_bits(x)
}
