//! Seeded condvar-discipline violations: a wait with no enclosing loop
//! re-checking the predicate, and a notify with no lock held.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct S {
    state: Mutex<bool>,
    cv: Condvar,
}

fn bad_wait(s: &S) {
    let g = lock(&s.state);
    let _g = s.cv.wait(g);
}

fn bad_notify(s: &S) {
    s.cv.notify_all();
}
