//! Seeded lock-order violations: an AB/BA inversion (cycle) in a crate
//! with no LOCK_ORDER manifest.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    fn ab(&self) {
        let ga = lock(&self.a);
        let gb = lock(&self.b);
        drop(gb);
        drop(ga);
    }

    fn ba(&self) {
        let gb = lock(&self.b);
        let ga = lock(&self.a);
        drop(ga);
        drop(gb);
    }
}
