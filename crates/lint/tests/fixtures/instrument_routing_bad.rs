// Fixture: a physical operator whose execute returns a bare iterator
// instead of routing through TaskContext::instrument.

impl ExecutionPlan for RogueExec {
    fn execute(&self, partition: usize, _ctx: &TaskContext) -> ChunkIter {
        Box::new(self.chunks(partition).into_iter())
    }
}
