//! Seeded atomics-audit violations: a Relaxed access outside the
//! counters/metrics allowlist and a SeqCst access on a hot path.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn read(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn publish(c: &AtomicU64) {
    c.store(1, Ordering::SeqCst);
}
