// Fixture: the same orphan const, silenced with an inline allow.

pub const PROBE: &str = "fx::probe";
// idf-lint: allow(failpoint-registry) -- fixture: staged site, registered next PR
pub const ORPHAN: &str = "fx::orphan";

pub const SITES: &[&str] = &[PROBE];
