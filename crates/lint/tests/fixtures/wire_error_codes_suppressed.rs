//! Suppressed twin: explicit unique values throughout; the retired-code
//! gap is documented with an allow.

#[repr(u16)]
pub enum ErrorCode {
    Ok = 1,
    Second = 2,
    // idf-lint: allow(wire-error-codes) -- code 3 was retired in v1; wire codes are never reused
    Resumed = 4,
}
