// idf-lint: allow-file(safety-comment) -- fixture: exercises the
// allow-file directive; the twin file seeds the same three violations.

pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe impl Send for Wrapper {}

pub unsafe fn transmute_it(x: u64) -> f64 {
    f64::from_bits(x)
}
