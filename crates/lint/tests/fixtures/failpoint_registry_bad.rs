// Fixture: `ORPHAN` is declared but never registered in SITES.

pub const PROBE: &str = "fx::probe";
pub const ORPHAN: &str = "fx::orphan";

pub const SITES: &[&str] = &[PROBE];
