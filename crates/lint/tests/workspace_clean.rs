//! The workspace itself must lint clean — the same invariant CI's
//! `cargo run -p idf-lint -- --deny-all` gate enforces, kept here too so
//! a plain `cargo test` catches regressions without the extra step.

use idf_lint::{collect_workspace, lint_files, LintConfig};

#[test]
fn workspace_has_no_findings() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let files = collect_workspace(&root).expect("collect workspace sources");
    assert!(
        files.len() > 50,
        "suspiciously few sources ({}) — walk broken?",
        files.len()
    );
    let findings = lint_files(&files, &LintConfig::workspace_default());
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The registered rule inventory — a new rule must be added here (and to
/// DESIGN.md §8) so it cannot ride in unnoticed, and a dropped rule
/// cannot vanish silently.
#[test]
fn rule_inventory_is_complete() {
    let ids: Vec<&str> = idf_lint::all_rules().iter().map(|r| r.id()).collect();
    assert_eq!(
        ids,
        vec![
            "safety-comment",
            "hot-path-panic",
            "raw-clock",
            "api-parity",
            "failpoint-registry",
            "instrument-routing",
            "lock-order",
            "blocking-under-lock",
            "condvar-discipline",
            "atomics-audit",
            "wire-error-codes",
        ],
        "rule inventory drifted"
    );
    for rule in idf_lint::all_rules() {
        assert!(
            !rule.explain().is_empty(),
            "rule {} has no --explain text",
            rule.id()
        );
    }
}

/// The full workspace walk (collect + lex + all rules) must stay inside
/// the CI lint-job budget. 10s is ~20x the current debug-profile cost —
/// headroom for growth, tight enough to catch an accidentally quadratic
/// rule.
#[test]
fn workspace_walk_stays_in_budget() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let start = std::time::Instant::now();
    let files = collect_workspace(&root).expect("collect workspace sources");
    let _ = lint_files(&files, &LintConfig::workspace_default());
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "workspace walk took {elapsed:?}, budget is 10s"
    );
}
