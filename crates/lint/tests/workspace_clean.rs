//! The workspace itself must lint clean — the same invariant CI's
//! `cargo run -p idf-lint -- --deny-all` gate enforces, kept here too so
//! a plain `cargo test` catches regressions without the extra step.

use idf_lint::{collect_workspace, lint_files, LintConfig};

#[test]
fn workspace_has_no_findings() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let files = collect_workspace(&root).expect("collect workspace sources");
    assert!(
        files.len() > 50,
        "suspiciously few sources ({}) — walk broken?",
        files.len()
    );
    let findings = lint_files(&files, &LintConfig::workspace_default());
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
