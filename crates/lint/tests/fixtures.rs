//! Fixture-corpus self-test: every rule has a seeded-violation fixture
//! (asserted down to exact rule ids and line numbers) and a suppressed
//! twin that must lint clean — proving both the detector and the
//! suppression mechanism work end to end.
//!
//! Fixture sources live under `tests/fixtures/` (a directory name
//! [`collect_workspace`](idf_lint::collect_workspace) skips, so the
//! seeded violations never pollute the workspace run). Each fixture is
//! linted under a synthetic workspace path so the path-scoped rules
//! apply to it.

use idf_lint::{lint_files, Finding, LintConfig};

/// Lint fixture files, each masqueraded under the given workspace path.
fn lint(mapped: &[(&str, &str)]) -> Vec<Finding> {
    let files: Vec<(String, String)> = mapped
        .iter()
        .map(|(path, fixture)| {
            let on_disk = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests/fixtures")
                .join(fixture);
            let src = std::fs::read_to_string(&on_disk)
                .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", on_disk.display()));
            (path.to_string(), src)
        })
        .collect();
    lint_files(&files, &LintConfig::workspace_default())
}

/// `(rule, line)` of every finding, for exact-match assertions.
fn keys(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn safety_comment_fixture() {
    let bad = lint(&[("crates/snb/src/fixture.rs", "safety_comment_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("safety-comment", 5),  // unsafe block
            ("safety-comment", 8),  // unsafe impl
            ("safety-comment", 10), // unsafe fn
        ],
        "{bad:#?}"
    );
    assert!(bad[0].message.contains("unsafe block"));
    assert!(bad[1].message.contains("unsafe impl"));
    assert!(bad[2].message.contains("unsafe fn"));

    let ok = lint(&[("crates/snb/src/fixture.rs", "safety_comment_suppressed.rs")]);
    assert!(ok.is_empty(), "allow-file must silence all three: {ok:#?}");
}

#[test]
fn hot_path_panic_fixture() {
    let bad = lint(&[("crates/core/src/layout.rs", "hot_path_panic_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("hot-path-panic", 5), // p[0] indexing in a decode file
            ("hot-path-panic", 6), // .unwrap()
            ("hot-path-panic", 8), // panic!
        ],
        "{bad:#?}"
    );

    let ok = lint(&[("crates/core/src/layout.rs", "hot_path_panic_suppressed.rs")]);
    assert!(ok.is_empty(), "inline allows must silence: {ok:#?}");
}

#[test]
fn raw_clock_fixture() {
    let bad = lint(&[("crates/core/src/probe_timer.rs", "raw_clock_bad.rs")]);
    assert_eq!(keys(&bad), vec![("raw-clock", 5)], "{bad:#?}");
    assert!(bad[0].message.contains("Instant::now()"));

    let ok = lint(&[("crates/core/src/probe_timer.rs", "raw_clock_suppressed.rs")]);
    assert!(
        ok.is_empty(),
        "tick-gated and allow-annotated reads must pass: {ok:#?}"
    );
}

#[test]
fn api_parity_fixture() {
    let bad = lint(&[
        ("crates/fail/src/registry.rs", "api_parity_real.rs"),
        ("crates/fail/src/noop.rs", "api_parity_mirror_bad.rs"),
    ]);
    assert_eq!(keys(&bad), vec![("api-parity", 1)], "{bad:#?}");
    assert_eq!(bad[0].file, "crates/fail/src/noop.rs");
    assert!(bad[0].message.contains("drifted_extra"));

    let ok = lint(&[
        ("crates/fail/src/registry.rs", "api_parity_real.rs"),
        ("crates/fail/src/noop.rs", "api_parity_mirror_suppressed.rs"),
    ]);
    assert!(ok.is_empty(), "allow-file on the mirror must pass: {ok:#?}");
}

#[test]
fn failpoint_registry_fixture() {
    let bad = lint(&[("crates/core/src/failpoints.rs", "failpoint_registry_bad.rs")]);
    assert_eq!(keys(&bad), vec![("failpoint-registry", 4)], "{bad:#?}");
    assert!(bad[0].message.contains("ORPHAN"));
    assert!(bad[0].message.contains("0 times"));

    let ok = lint(&[(
        "crates/core/src/failpoints.rs",
        "failpoint_registry_suppressed.rs",
    )]);
    assert!(
        ok.is_empty(),
        "line allow above the const must pass: {ok:#?}"
    );
}

#[test]
fn instrument_routing_fixture() {
    let bad = lint(&[(
        "crates/engine/src/physical/fixture.rs",
        "instrument_routing_bad.rs",
    )]);
    assert_eq!(keys(&bad), vec![("instrument-routing", 5)], "{bad:#?}");
    assert!(bad[0].message.contains("RogueExec"));

    let ok = lint(&[(
        "crates/engine/src/physical/fixture.rs",
        "instrument_routing_suppressed.rs",
    )]);
    assert!(ok.is_empty(), "allow above execute must pass: {ok:#?}");
}

#[test]
fn lock_order_fixture() {
    let bad = lint(&[("crates/fixcrate/src/fixture.rs", "lock_order_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("lock-order", 18), // edge a -> b with no manifest
            ("lock-order", 18), // cycle a -> b -> a, reported at the first edge
            ("lock-order", 25), // edge b -> a with no manifest
        ],
        "{bad:#?}"
    );
    assert!(bad
        .iter()
        .any(|f| f.message.contains("no LOCK_ORDER manifest")));
    assert!(bad.iter().any(|f| f.message.contains("cycle")));

    let ok = lint(&[("crates/fixcrate/src/fixture.rs", "lock_order_suppressed.rs")]);
    assert!(ok.is_empty(), "manifest + inline allows must pass: {ok:#?}");
}

#[test]
fn blocking_under_lock_fixture() {
    let bad = lint(&[("crates/core/src/fixture.rs", "blocking_under_lock_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("blocking-under-lock", 16), // sync_all under 'state'
            ("blocking-under-lock", 17), // join under 'state'
        ],
        "{bad:#?}"
    );
    assert!(bad[0].message.contains("sync_all"));
    assert!(bad[1].message.contains("join"));

    let ok = lint(&[(
        "crates/core/src/fixture.rs",
        "blocking_under_lock_suppressed.rs",
    )]);
    assert!(ok.is_empty(), "inline allows must pass: {ok:#?}");
}

#[test]
fn condvar_discipline_fixture() {
    let bad = lint(&[(
        "crates/fixcrate/src/fixture.rs",
        "condvar_discipline_bad.rs",
    )]);
    assert_eq!(
        keys(&bad),
        vec![
            ("condvar-discipline", 17), // wait outside a loop
            ("condvar-discipline", 21), // notify with no lock held
        ],
        "{bad:#?}"
    );
    assert!(bad[0].message.contains("re-check"));
    assert!(bad[1].message.contains("notify"));

    let ok = lint(&[(
        "crates/fixcrate/src/fixture.rs",
        "condvar_discipline_suppressed.rs",
    )]);
    assert!(
        ok.is_empty(),
        "loop-wait shape + notify allow must pass: {ok:#?}"
    );
}

#[test]
fn atomics_audit_fixture() {
    let bad = lint(&[("crates/ctrie/src/fixture.rs", "atomics_audit_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("atomics-audit", 7),  // Relaxed outside the allowlist
            ("atomics-audit", 11), // SeqCst on a hot path
        ],
        "{bad:#?}"
    );
    assert!(bad[0].message.contains("Relaxed"));
    assert!(bad[1].message.contains("SeqCst"));

    let ok = lint(&[("crates/ctrie/src/fixture.rs", "atomics_audit_suppressed.rs")]);
    assert!(ok.is_empty(), "inline allows must pass: {ok:#?}");
}

#[test]
fn wire_error_codes_fixture() {
    let bad = lint(&[("crates/serve/src/wire.rs", "wire_error_codes_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("wire-error-codes", 7), // Reused = 1 duplicates Ok
            ("wire-error-codes", 8), // Gapped = 4 leaves an undocumented gap
            ("wire-error-codes", 9), // Implicit has no explicit value
        ],
        "{bad:#?}"
    );
    assert!(bad[0].message.contains("reuses"));
    assert!(bad[1].message.contains("contiguous"));
    assert!(bad[2].message.contains("implicit"));

    let ok = lint(&[("crates/serve/src/wire.rs", "wire_error_codes_suppressed.rs")]);
    assert!(ok.is_empty(), "documented gap must pass: {ok:#?}");
}
