//! Fixture-corpus self-test: every rule has a seeded-violation fixture
//! (asserted down to exact rule ids and line numbers) and a suppressed
//! twin that must lint clean — proving both the detector and the
//! suppression mechanism work end to end.
//!
//! Fixture sources live under `tests/fixtures/` (a directory name
//! [`collect_workspace`](idf_lint::collect_workspace) skips, so the
//! seeded violations never pollute the workspace run). Each fixture is
//! linted under a synthetic workspace path so the path-scoped rules
//! apply to it.

use idf_lint::{lint_files, Finding, LintConfig};

/// Lint fixture files, each masqueraded under the given workspace path.
fn lint(mapped: &[(&str, &str)]) -> Vec<Finding> {
    let files: Vec<(String, String)> = mapped
        .iter()
        .map(|(path, fixture)| {
            let on_disk = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests/fixtures")
                .join(fixture);
            let src = std::fs::read_to_string(&on_disk)
                .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", on_disk.display()));
            (path.to_string(), src)
        })
        .collect();
    lint_files(&files, &LintConfig::workspace_default())
}

/// `(rule, line)` of every finding, for exact-match assertions.
fn keys(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn safety_comment_fixture() {
    let bad = lint(&[("crates/snb/src/fixture.rs", "safety_comment_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("safety-comment", 5),  // unsafe block
            ("safety-comment", 8),  // unsafe impl
            ("safety-comment", 10), // unsafe fn
        ],
        "{bad:#?}"
    );
    assert!(bad[0].message.contains("unsafe block"));
    assert!(bad[1].message.contains("unsafe impl"));
    assert!(bad[2].message.contains("unsafe fn"));

    let ok = lint(&[("crates/snb/src/fixture.rs", "safety_comment_suppressed.rs")]);
    assert!(ok.is_empty(), "allow-file must silence all three: {ok:#?}");
}

#[test]
fn hot_path_panic_fixture() {
    let bad = lint(&[("crates/core/src/layout.rs", "hot_path_panic_bad.rs")]);
    assert_eq!(
        keys(&bad),
        vec![
            ("hot-path-panic", 5), // p[0] indexing in a decode file
            ("hot-path-panic", 6), // .unwrap()
            ("hot-path-panic", 8), // panic!
        ],
        "{bad:#?}"
    );

    let ok = lint(&[("crates/core/src/layout.rs", "hot_path_panic_suppressed.rs")]);
    assert!(ok.is_empty(), "inline allows must silence: {ok:#?}");
}

#[test]
fn raw_clock_fixture() {
    let bad = lint(&[("crates/core/src/probe_timer.rs", "raw_clock_bad.rs")]);
    assert_eq!(keys(&bad), vec![("raw-clock", 5)], "{bad:#?}");
    assert!(bad[0].message.contains("Instant::now()"));

    let ok = lint(&[("crates/core/src/probe_timer.rs", "raw_clock_suppressed.rs")]);
    assert!(
        ok.is_empty(),
        "tick-gated and allow-annotated reads must pass: {ok:#?}"
    );
}

#[test]
fn api_parity_fixture() {
    let bad = lint(&[
        ("crates/fail/src/registry.rs", "api_parity_real.rs"),
        ("crates/fail/src/noop.rs", "api_parity_mirror_bad.rs"),
    ]);
    assert_eq!(keys(&bad), vec![("api-parity", 1)], "{bad:#?}");
    assert_eq!(bad[0].file, "crates/fail/src/noop.rs");
    assert!(bad[0].message.contains("drifted_extra"));

    let ok = lint(&[
        ("crates/fail/src/registry.rs", "api_parity_real.rs"),
        ("crates/fail/src/noop.rs", "api_parity_mirror_suppressed.rs"),
    ]);
    assert!(ok.is_empty(), "allow-file on the mirror must pass: {ok:#?}");
}

#[test]
fn failpoint_registry_fixture() {
    let bad = lint(&[("crates/core/src/failpoints.rs", "failpoint_registry_bad.rs")]);
    assert_eq!(keys(&bad), vec![("failpoint-registry", 4)], "{bad:#?}");
    assert!(bad[0].message.contains("ORPHAN"));
    assert!(bad[0].message.contains("0 times"));

    let ok = lint(&[(
        "crates/core/src/failpoints.rs",
        "failpoint_registry_suppressed.rs",
    )]);
    assert!(
        ok.is_empty(),
        "line allow above the const must pass: {ok:#?}"
    );
}

#[test]
fn instrument_routing_fixture() {
    let bad = lint(&[(
        "crates/engine/src/physical/fixture.rs",
        "instrument_routing_bad.rs",
    )]);
    assert_eq!(keys(&bad), vec![("instrument-routing", 5)], "{bad:#?}");
    assert!(bad[0].message.contains("RogueExec"));

    let ok = lint(&[(
        "crates/engine/src/physical/fixture.rs",
        "instrument_routing_suppressed.rs",
    )]);
    assert!(ok.is_empty(), "allow above execute must pass: {ok:#?}");
}
