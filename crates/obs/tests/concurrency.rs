//! Concurrent-correctness tests for the metrics primitives: N writer
//! threads race M reader threads; totals must come out exact and every
//! percentile readout must be internally monotone (p50 ≤ p95 ≤ p99)
//! at all times, including mid-write.

#![cfg(feature = "obs")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use idf_obs::{Counter, Histogram, MetricsRegistry, QueryOutcome};

const WRITERS: usize = 8;
const READERS: usize = 4;
const PER_WRITER: u64 = 50_000;

#[test]
fn counter_totals_exact_under_contention() {
    let counter = Arc::new(Counter::new());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let counter = Arc::clone(&counter);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let now = counter.get();
                    // A monotone counter can never appear to go backwards.
                    assert!(now >= last, "counter regressed: {last} -> {now}");
                    last = now;
                }
            });
        }
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        if (i + w as u64).is_multiple_of(2) {
                            counter.inc();
                        } else {
                            counter.add(1);
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(counter.get(), WRITERS as u64 * PER_WRITER);
}

#[test]
fn histogram_counts_exact_and_percentiles_monotone_under_contention() {
    let hist = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = hist.snapshot();
                    assert!(
                        s.p50 <= s.p95 && s.p95 <= s.p99,
                        "percentiles not monotone: {s:?}"
                    );
                    // Ranked readouts agree with the snapshot invariant.
                    assert!(hist.percentile(10.0) <= hist.percentile(90.0));
                }
            });
        }
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        // Spread samples across many buckets.
                        hist.record((i % 1000) * (w as u64 + 1));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let s = hist.snapshot();
    assert_eq!(s.count, WRITERS as u64 * PER_WRITER);
    let expected_sum: u64 = (0..WRITERS as u64)
        .map(|w| (0..PER_WRITER).map(|i| (i % 1000) * (w + 1)).sum::<u64>())
        .sum();
    assert_eq!(s.sum, expected_sum);
    assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
}

#[test]
fn slow_log_survives_concurrent_pushes_and_reads() {
    let m = Arc::new(MetricsRegistry::new());
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let m = Arc::clone(&m);
            scope.spawn(move || {
                for i in 0..500u64 {
                    m.slow_queries
                        .push(format!("w{w}-q{i}"), i, QueryOutcome::Finished);
                }
            });
        }
        for _ in 0..READERS {
            let m = Arc::clone(&m);
            scope.spawn(move || {
                for _ in 0..200 {
                    let entries = m.slow_queries.entries();
                    assert!(entries.len() <= idf_obs::SLOW_LOG_CAPACITY);
                    let _ = m.prometheus();
                }
            });
        }
    });
    assert_eq!(m.slow_queries.len(), idf_obs::SLOW_LOG_CAPACITY);
}
