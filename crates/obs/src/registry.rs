//! Process-global metrics registry, slow-query log, and Prometheus
//! text exposition.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::histogram::{bucket_upper_bound, BUCKETS};
use crate::{Counter, Gauge, Histogram, QueryOutcome, SlowQueryEntry};

/// Maximum entries retained by the slow-query log; older entries are
/// evicted FIFO.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// Longest label prefix (bytes) the slow-query log retains per entry.
/// A multi-megabyte SQL statement arriving over the wire would otherwise
/// be pinned ×[`SLOW_LOG_CAPACITY`] entries; anything longer is cut at a
/// char boundary and marked with a trailing `…`.
pub const SLOW_LOG_LABEL_MAX: usize = 1024;

/// Truncate `label` to at most [`SLOW_LOG_LABEL_MAX`] bytes (on a char
/// boundary), appending `…` when anything was cut.
fn bounded_label(label: String) -> String {
    if label.len() <= SLOW_LOG_LABEL_MAX {
        return label;
    }
    let mut end = SLOW_LOG_LABEL_MAX;
    while !label.is_char_boundary(end) {
        end -= 1;
    }
    let mut out = String::with_capacity(end + '…'.len_utf8());
    out.push_str(&label[..end]);
    out.push('…');
    out
}

/// Bounded ring buffer of slow queries. `push` takes a short mutex
/// critical section (a deque rotate) and is only reached for queries
/// that already blew the slowness threshold, so it is never on a hot
/// path and can never deadlock against metric reads (counters and
/// histograms are lock-free).
#[derive(Default)]
pub struct SlowQueryLog {
    entries: Mutex<VecDeque<SlowQueryEntry>>,
    next_seq: AtomicU64,
}

impl SlowQueryLog {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<SlowQueryEntry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a slow query, evicting the oldest entry when full. Labels
    /// are truncated to [`SLOW_LOG_LABEL_MAX`] bytes with a `…` marker so
    /// oversized SQL text cannot pin megabytes per ring slot.
    pub fn push(&self, label: impl Into<String>, elapsed_ns: u64, outcome: QueryOutcome) {
        let entry = SlowQueryEntry {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            label: bounded_label(label.into()),
            elapsed_ns,
            outcome,
        };
        let mut q = self.lock();
        if q.len() == SLOW_LOG_CAPACITY {
            q.pop_front();
        }
        q.push_back(entry);
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.lock().iter().cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained entries (test support).
    pub fn reset(&self) {
        self.lock().clear();
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SlowQueryLog").field(&self.len()).finish()
    }
}

/// The engine's metric inventory. One process-global instance lives
/// behind [`global`]; tests may build private instances.
///
/// Every field is individually lock-free (the slow log uses a short
/// mutex but sits off the hot path), so storage and operator code may
/// hit these from arbitrary threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // Storage layer.
    /// Rows published by `append_chunk` across all tables.
    pub append_rows: Counter,
    /// Encoded payload bytes published by `append_chunk`.
    pub append_bytes: Counter,
    /// Row batches sealed (rolled over) by appends.
    pub batch_seals: Counter,
    /// Immutable partition snapshots taken.
    pub snapshots_taken: Counter,
    /// Age of a partition snapshot at probe time, nanoseconds.
    /// Sampled 1-in-[`crate::SAMPLE_PERIOD`] by [`Self::probe_sampler`]
    /// so the probe hot path pays no clock read on unsampled events.
    pub snapshot_age_ns: Histogram,
    /// Gates the clock reads behind [`Self::snapshot_age_ns`].
    pub probe_sampler: crate::Sampler,

    // Index probe path.
    /// cTrie probes that found the key.
    pub probe_hits: Counter,
    /// cTrie probes that missed.
    pub probe_misses: Counter,
    /// Version-chain rows walked per successful probe.
    pub chain_walk: Histogram,

    // Query lifecycle (session layer).
    /// Queries that began executing.
    pub queries_started: Counter,
    /// Queries that ran to completion.
    pub queries_finished: Counter,
    /// Queries stopped by cancellation or deadline.
    pub queries_cancelled: Counter,
    /// Queries stopped by any other error.
    pub queries_failed: Counter,
    /// Queries currently executing.
    pub queries_in_flight: Gauge,
    /// End-to-end query latency, nanoseconds.
    pub query_latency_ns: Histogram,
    /// High-water mark of per-query reserved memory, bytes.
    pub query_peak_memory_bytes: Gauge,

    // Durability layer (WAL + checkpoints + recovery).
    /// WAL records appended (one per committed chunk).
    pub wal_records: Counter,
    /// WAL bytes appended (framed record bytes, header included).
    pub wal_bytes: Counter,
    /// fsync calls issued by the group-commit writer.
    pub wal_fsyncs: Counter,
    /// Records coalesced into each group-commit flush.
    pub wal_group_commit_batch: Histogram,
    /// Wall-clock time to write one table checkpoint, nanoseconds.
    pub checkpoint_duration_ns: Histogram,
    /// Wall-clock time to recover one table on open, nanoseconds.
    pub recovery_duration_ns: Histogram,
    /// WAL records replayed during recovery.
    pub recovery_replayed_records: Counter,
    /// WAL healthy→degraded (read-only) transitions.
    pub wal_degraded_transitions: Counter,
    /// Appends rejected because the WAL was degraded read-only.
    pub wal_readonly_rejections: Counter,
    /// Successful `resume_writes` re-arms of a degraded WAL.
    pub wal_resumes: Counter,
    /// Scrub passes completed (per table target).
    pub scrub_runs: Counter,
    /// Corruption findings reported by scrub.
    pub scrub_corruptions: Counter,

    // Service layer (idf-serve).
    /// Client connections accepted since start.
    pub server_connections_total: Counter,
    /// Client connections currently open.
    pub server_connections_open: Gauge,
    /// Queries admitted and currently executing on server workers.
    pub server_in_flight: Gauge,
    /// Admitted queries waiting for a free worker.
    pub server_queue_depth: Gauge,
    /// Queries rejected with `ServerBusy` (admission queue full).
    pub server_rejected_busy: Counter,
    /// Queries rejected with `QuotaExceeded` (per-tenant limits).
    pub server_rejected_quota: Counter,
    /// Wall-clock time of each graceful drain, nanoseconds.
    pub server_drain_ns: Histogram,

    // Materialized views (idf-views).
    /// Materialized views currently registered.
    pub views_registered: Gauge,
    /// Committed deltas applied to a view (one count per view per delta).
    pub view_deltas_applied: Counter,
    /// Commit-to-applied latency of each delta application, nanoseconds.
    pub view_maintenance_lag_ns: Histogram,
    /// Wall-clock time of each full view recompute (REFRESH), nanoseconds.
    pub view_refresh_ns: Histogram,

    // DML (UPDATE/DELETE as versioned appends).
    /// UPDATE statements executed.
    pub dml_updates: Counter,
    /// DELETE statements executed.
    pub dml_deletes: Counter,
    /// Rows matched (affected) by UPDATE/DELETE statements.
    pub dml_rows_affected: Counter,
    /// Row versions a DML statement hid below a tombstone (the dead
    /// versions a later compaction reclaims).
    pub superseded_versions: Counter,

    // Background compaction (idf-compact).
    /// Live tombstone rows across compactor-surveyed tables.
    pub tombstones_live: Gauge,
    /// Dead (reclaimable) row versions across compactor-surveyed tables.
    pub dead_rows_live: Gauge,
    /// Table rewrites completed by the compactor.
    pub compaction_runs: Counter,
    /// Compaction attempts that failed (fault injection, swap refusal).
    pub compaction_failures: Counter,
    /// Row batches replaced by compaction rewrites.
    pub compaction_batches_rewritten: Counter,
    /// Dead row versions dropped by compaction.
    pub compaction_rows_reclaimed: Counter,
    /// Stored bytes released by compaction.
    pub compaction_bytes_reclaimed: Counter,
    /// Wall-clock time of one table compaction, nanoseconds.
    pub compaction_duration_ns: Histogram,
    /// Mean stored rows per key right after each compaction — the chain
    /// length a post-compaction probe walks.
    pub post_compaction_chain_walk: Histogram,

    /// Ring buffer of queries slower than the session threshold.
    pub slow_queries: SlowQueryLog,
}

impl MetricsRegistry {
    /// New registry with all metrics at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry all engine layers report into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Reset every metric to zero (test support). Racing writers may
    /// land on either side of the reset; callers serialize.
    pub fn reset(&self) {
        self.append_rows.reset();
        self.append_bytes.reset();
        self.batch_seals.reset();
        self.snapshots_taken.reset();
        self.snapshot_age_ns.reset();
        self.probe_sampler.reset();
        self.probe_hits.reset();
        self.probe_misses.reset();
        self.chain_walk.reset();
        self.queries_started.reset();
        self.queries_finished.reset();
        self.queries_cancelled.reset();
        self.queries_failed.reset();
        self.queries_in_flight.reset();
        self.query_latency_ns.reset();
        self.query_peak_memory_bytes.reset();
        self.wal_records.reset();
        self.wal_bytes.reset();
        self.wal_fsyncs.reset();
        self.wal_group_commit_batch.reset();
        self.checkpoint_duration_ns.reset();
        self.recovery_duration_ns.reset();
        self.recovery_replayed_records.reset();
        self.wal_degraded_transitions.reset();
        self.wal_readonly_rejections.reset();
        self.wal_resumes.reset();
        self.scrub_runs.reset();
        self.scrub_corruptions.reset();
        self.server_connections_total.reset();
        self.server_connections_open.reset();
        self.server_in_flight.reset();
        self.server_queue_depth.reset();
        self.server_rejected_busy.reset();
        self.server_rejected_quota.reset();
        self.server_drain_ns.reset();
        self.views_registered.reset();
        self.view_deltas_applied.reset();
        self.view_maintenance_lag_ns.reset();
        self.view_refresh_ns.reset();
        self.dml_updates.reset();
        self.dml_deletes.reset();
        self.dml_rows_affected.reset();
        self.superseded_versions.reset();
        self.tombstones_live.reset();
        self.dead_rows_live.reset();
        self.compaction_runs.reset();
        self.compaction_failures.reset();
        self.compaction_batches_rewritten.reset();
        self.compaction_rows_reclaimed.reset();
        self.compaction_bytes_reclaimed.reset();
        self.compaction_duration_ns.reset();
        self.post_compaction_chain_walk.reset();
        self.slow_queries.reset();
    }

    /// Render every metric in Prometheus text exposition format
    /// (`# TYPE` lines, `_bucket{le=...}` cumulative histograms).
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        write_counter(
            &mut out,
            "idf_storage_append_rows_total",
            "Rows published by append_chunk.",
            &self.append_rows,
        );
        write_counter(
            &mut out,
            "idf_storage_append_bytes_total",
            "Encoded payload bytes published by append_chunk.",
            &self.append_bytes,
        );
        write_counter(
            &mut out,
            "idf_storage_batch_seals_total",
            "Row batches sealed by append rollover.",
            &self.batch_seals,
        );
        write_counter(
            &mut out,
            "idf_storage_snapshots_total",
            "Immutable partition snapshots taken.",
            &self.snapshots_taken,
        );
        write_histogram(
            &mut out,
            "idf_storage_snapshot_age_ns",
            "Snapshot age at probe time, nanoseconds.",
            &self.snapshot_age_ns,
        );
        write_counter(
            &mut out,
            "idf_index_probe_hits_total",
            "Index probes that found the key.",
            &self.probe_hits,
        );
        write_counter(
            &mut out,
            "idf_index_probe_misses_total",
            "Index probes that missed.",
            &self.probe_misses,
        );
        write_histogram(
            &mut out,
            "idf_index_chain_walk_length",
            "Version-chain rows walked per successful probe.",
            &self.chain_walk,
        );
        write_counter(
            &mut out,
            "idf_query_started_total",
            "Queries that began executing.",
            &self.queries_started,
        );
        write_counter(
            &mut out,
            "idf_query_finished_total",
            "Queries that ran to completion.",
            &self.queries_finished,
        );
        write_counter(
            &mut out,
            "idf_query_cancelled_total",
            "Queries stopped by cancellation or deadline.",
            &self.queries_cancelled,
        );
        write_counter(
            &mut out,
            "idf_query_failed_total",
            "Queries stopped by any other error.",
            &self.queries_failed,
        );
        write_gauge(
            &mut out,
            "idf_query_in_flight",
            "Queries currently executing.",
            &self.queries_in_flight,
        );
        write_histogram(
            &mut out,
            "idf_query_latency_ns",
            "End-to-end query latency, nanoseconds.",
            &self.query_latency_ns,
        );
        write_gauge(
            &mut out,
            "idf_query_peak_memory_bytes",
            "High-water mark of per-query reserved memory.",
            &self.query_peak_memory_bytes,
        );
        write_counter(
            &mut out,
            "idf_wal_records_total",
            "WAL records appended (one per committed chunk).",
            &self.wal_records,
        );
        write_counter(
            &mut out,
            "idf_wal_bytes_total",
            "WAL bytes appended, framing included.",
            &self.wal_bytes,
        );
        write_counter(
            &mut out,
            "idf_wal_fsyncs_total",
            "fsync calls issued by the group-commit writer.",
            &self.wal_fsyncs,
        );
        write_histogram(
            &mut out,
            "idf_wal_group_commit_batch",
            "Records coalesced into each group-commit flush.",
            &self.wal_group_commit_batch,
        );
        write_histogram(
            &mut out,
            "idf_checkpoint_duration_ns",
            "Time to write one table checkpoint, nanoseconds.",
            &self.checkpoint_duration_ns,
        );
        write_histogram(
            &mut out,
            "idf_recovery_duration_ns",
            "Time to recover one table on open, nanoseconds.",
            &self.recovery_duration_ns,
        );
        write_counter(
            &mut out,
            "idf_recovery_replayed_records_total",
            "WAL records replayed during recovery.",
            &self.recovery_replayed_records,
        );
        write_counter(
            &mut out,
            "idf_wal_degraded_transitions_total",
            "WAL healthy-to-degraded (read-only) transitions.",
            &self.wal_degraded_transitions,
        );
        write_counter(
            &mut out,
            "idf_wal_readonly_rejections_total",
            "Appends rejected because the WAL was degraded read-only.",
            &self.wal_readonly_rejections,
        );
        write_counter(
            &mut out,
            "idf_wal_resumes_total",
            "Successful resume_writes re-arms of a degraded WAL.",
            &self.wal_resumes,
        );
        write_counter(
            &mut out,
            "idf_scrub_runs_total",
            "Scrub passes completed (per table target).",
            &self.scrub_runs,
        );
        write_counter(
            &mut out,
            "idf_scrub_corruptions_total",
            "Corruption findings reported by scrub.",
            &self.scrub_corruptions,
        );
        write_counter(
            &mut out,
            "idf_server_connections_total",
            "Client connections accepted since start.",
            &self.server_connections_total,
        );
        write_gauge(
            &mut out,
            "idf_server_connections_open",
            "Client connections currently open.",
            &self.server_connections_open,
        );
        write_gauge(
            &mut out,
            "idf_server_in_flight",
            "Queries admitted and currently executing on server workers.",
            &self.server_in_flight,
        );
        write_gauge(
            &mut out,
            "idf_server_queue_depth",
            "Admitted queries waiting for a free worker.",
            &self.server_queue_depth,
        );
        write_counter(
            &mut out,
            "idf_server_rejected_busy_total",
            "Queries rejected with ServerBusy (admission queue full).",
            &self.server_rejected_busy,
        );
        write_counter(
            &mut out,
            "idf_server_rejected_quota_total",
            "Queries rejected with QuotaExceeded (per-tenant limits).",
            &self.server_rejected_quota,
        );
        write_histogram(
            &mut out,
            "idf_server_drain_ns",
            "Wall-clock time of each graceful drain, nanoseconds.",
            &self.server_drain_ns,
        );
        write_gauge(
            &mut out,
            "idf_views_registered",
            "Materialized views currently registered.",
            &self.views_registered,
        );
        write_counter(
            &mut out,
            "idf_views_deltas_applied_total",
            "Committed deltas applied to a view (one count per view per delta).",
            &self.view_deltas_applied,
        );
        write_histogram(
            &mut out,
            "idf_views_maintenance_lag_ns",
            "Commit-to-applied latency of each delta application, nanoseconds.",
            &self.view_maintenance_lag_ns,
        );
        write_histogram(
            &mut out,
            "idf_views_refresh_duration_ns",
            "Wall-clock time of each full view recompute (REFRESH), nanoseconds.",
            &self.view_refresh_ns,
        );
        write_counter(
            &mut out,
            "idf_dml_updates_total",
            "UPDATE statements executed.",
            &self.dml_updates,
        );
        write_counter(
            &mut out,
            "idf_dml_deletes_total",
            "DELETE statements executed.",
            &self.dml_deletes,
        );
        write_counter(
            &mut out,
            "idf_dml_rows_affected_total",
            "Rows matched (affected) by UPDATE/DELETE statements.",
            &self.dml_rows_affected,
        );
        write_counter(
            &mut out,
            "idf_dml_superseded_versions_total",
            "Row versions hidden below a tombstone by DML.",
            &self.superseded_versions,
        );
        write_gauge(
            &mut out,
            "idf_compaction_tombstones_live",
            "Live tombstone rows across compactor-surveyed tables.",
            &self.tombstones_live,
        );
        write_gauge(
            &mut out,
            "idf_compaction_dead_rows_live",
            "Dead (reclaimable) row versions across compactor-surveyed tables.",
            &self.dead_rows_live,
        );
        write_counter(
            &mut out,
            "idf_compaction_runs_total",
            "Table rewrites completed by the compactor.",
            &self.compaction_runs,
        );
        write_counter(
            &mut out,
            "idf_compaction_failures_total",
            "Compaction attempts that failed.",
            &self.compaction_failures,
        );
        write_counter(
            &mut out,
            "idf_compaction_batches_rewritten_total",
            "Row batches replaced by compaction rewrites.",
            &self.compaction_batches_rewritten,
        );
        write_counter(
            &mut out,
            "idf_compaction_rows_reclaimed_total",
            "Dead row versions dropped by compaction.",
            &self.compaction_rows_reclaimed,
        );
        write_counter(
            &mut out,
            "idf_compaction_bytes_reclaimed_total",
            "Stored bytes released by compaction.",
            &self.compaction_bytes_reclaimed,
        );
        write_histogram(
            &mut out,
            "idf_compaction_duration_ns",
            "Wall-clock time of one table compaction, nanoseconds.",
            &self.compaction_duration_ns,
        );
        write_histogram(
            &mut out,
            "idf_compaction_chain_walk_length",
            "Mean stored rows per key right after each compaction.",
            &self.post_compaction_chain_walk,
        );
        write_gauge_value(
            &mut out,
            "idf_slow_query_log_entries",
            "Entries retained in the slow-query log.",
            self.slow_queries.len() as i64,
        );
        out
    }
}

/// The process-global registry (free-function alias for
/// [`MetricsRegistry::global`], the form hot paths call).
#[inline]
pub fn global() -> &'static MetricsRegistry {
    MetricsRegistry::global()
}

fn write_counter(out: &mut String, name: &str, help: &str, c: &Counter) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {}", c.get());
}

fn write_gauge(out: &mut String, name: &str, help: &str, g: &Gauge) {
    write_gauge_value(out, name, help, g.get());
}

fn write_gauge_value(out: &mut String, name: &str, help: &str, v: i64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {v}");
}

fn write_histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        // Skip empty leading/inner buckets to keep the exposition
        // readable; cumulative counts stay correct because `cumulative`
        // carries across skipped buckets.
        cumulative += c;
        if c == 0 {
            continue;
        }
        if i == BUCKETS - 1 {
            // Top bucket is only reachable via +Inf below.
            continue;
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {cumulative}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_log_is_bounded_fifo() {
        let log = SlowQueryLog::new();
        for i in 0..(SLOW_LOG_CAPACITY + 10) {
            log.push(format!("q{i}"), i as u64, QueryOutcome::Finished);
        }
        let entries = log.entries();
        assert_eq!(entries.len(), SLOW_LOG_CAPACITY);
        assert_eq!(entries[0].label, "q10");
        assert_eq!(
            entries.last().unwrap().label,
            format!("q{}", SLOW_LOG_CAPACITY + 9)
        );
        // Sequence numbers stay monotone across eviction.
        for w in entries.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    /// Regression: the ring used to retain full SQL text, so a
    /// multi-megabyte statement was pinned once per slot. Labels are now
    /// cut to a bounded prefix with an ellipsis marker.
    #[test]
    fn slow_log_truncates_oversized_labels() {
        let log = SlowQueryLog::new();
        let huge = "SELECT ".to_string() + &"x".repeat(4 * 1024 * 1024);
        log.push(huge.clone(), 1, QueryOutcome::Finished);
        let entry = &log.entries()[0];
        assert!(entry.label.len() <= SLOW_LOG_LABEL_MAX + '…'.len_utf8());
        assert!(
            entry.label.ends_with('…'),
            "missing marker: {}",
            entry.label
        );
        assert!(entry.label.starts_with("SELECT x"));
        // Short labels pass through untouched.
        log.push("SELECT 1", 1, QueryOutcome::Finished);
        assert_eq!(log.entries()[1].label, "SELECT 1");
        // Truncation lands on a char boundary even mid-multibyte-run.
        let multibyte = "é".repeat(SLOW_LOG_LABEL_MAX);
        log.push(multibyte, 1, QueryOutcome::Finished);
        assert!(log.entries()[2].label.ends_with('…'));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = MetricsRegistry::new();
        m.append_rows.add(7);
        m.probe_hits.add(3);
        m.probe_misses.inc();
        m.chain_walk.record(1);
        m.chain_walk.record(5);
        m.queries_in_flight.set(2);
        let text = m.prometheus();
        assert!(text.contains("# TYPE idf_storage_append_rows_total counter"));
        assert!(text.contains("idf_storage_append_rows_total 7"));
        assert!(text.contains("idf_index_probe_hits_total 3"));
        assert!(text.contains("idf_index_probe_misses_total 1"));
        assert!(text.contains("# TYPE idf_index_chain_walk_length histogram"));
        assert!(text.contains("idf_index_chain_walk_length_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("idf_index_chain_walk_length_sum 6"));
        assert!(text.contains("idf_index_chain_walk_length_count 2"));
        assert!(text.contains("idf_query_in_flight 2"));
        m.wal_records.add(4);
        m.wal_fsyncs.inc();
        m.wal_group_commit_batch.record(4);
        m.server_connections_total.add(6);
        m.server_connections_open.set(2);
        m.server_queue_depth.set(1);
        m.server_rejected_busy.inc();
        m.server_drain_ns.record(1_000);
        let text = m.prometheus();
        assert!(text.contains("idf_wal_records_total 4"));
        assert!(text.contains("idf_wal_fsyncs_total 1"));
        assert!(text.contains("# TYPE idf_wal_group_commit_batch histogram"));
        assert!(text.contains("# TYPE idf_recovery_replayed_records_total counter"));
        assert!(text.contains("idf_server_connections_total 6"));
        assert!(text.contains("idf_server_connections_open 2"));
        assert!(text.contains("idf_server_queue_depth 1"));
        assert!(text.contains("idf_server_rejected_busy_total 1"));
        assert!(text.contains("# TYPE idf_server_drain_ns histogram"));
        m.dml_updates.inc();
        m.dml_deletes.add(2);
        m.dml_rows_affected.add(3);
        m.superseded_versions.add(3);
        m.tombstones_live.set(5);
        m.compaction_runs.inc();
        m.compaction_batches_rewritten.add(4);
        m.compaction_rows_reclaimed.add(9);
        m.compaction_duration_ns.record(2_000);
        m.post_compaction_chain_walk.record(1);
        let text = m.prometheus();
        assert!(text.contains("idf_dml_updates_total 1"));
        assert!(text.contains("idf_dml_deletes_total 2"));
        assert!(text.contains("idf_dml_rows_affected_total 3"));
        assert!(text.contains("idf_dml_superseded_versions_total 3"));
        assert!(text.contains("idf_compaction_tombstones_live 5"));
        assert!(text.contains("idf_compaction_runs_total 1"));
        assert!(text.contains("idf_compaction_batches_rewritten_total 4"));
        assert!(text.contains("idf_compaction_rows_reclaimed_total 9"));
        assert!(text.contains("# TYPE idf_compaction_duration_ns histogram"));
        assert!(text.contains("# TYPE idf_compaction_chain_walk_length histogram"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.splitn(2, ' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = MetricsRegistry::new();
        m.append_rows.add(5);
        m.query_latency_ns.record(1000);
        m.slow_queries.push("q", 1, QueryOutcome::Failed);
        m.reset();
        assert_eq!(m.append_rows.get(), 0);
        assert_eq!(m.query_latency_ns.count(), 0);
        assert!(m.slow_queries.is_empty());
    }
}
