//! Fixed-bucket log2-scale histogram.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::HistogramSnapshot;

/// Number of buckets: one per possible bit length of a `u64` sample
/// (bucket 0 holds exactly the value 0, bucket `i` holds values in
/// `[2^(i-1), 2^i)`), with the top bucket absorbing everything else.
pub(crate) const BUCKETS: usize = 64;

/// Lock-free latency/size histogram with power-of-two buckets.
///
/// `record` is two relaxed atomic RMWs; percentiles are read out by a
/// cumulative scan over the 64 buckets and return the *upper bound* of
/// the bucket containing the requested rank, which makes readouts
/// monotone in `p` by construction (a higher rank can only land in the
/// same or a later bucket).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: its bit length, capped at the top bucket.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the top bucket).
#[inline]
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Value at percentile `p` (0–100): the upper bound of the bucket
    /// containing the sample of that rank. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        percentile_of(&counts, p)
    }

    /// Consistent one-pass readout of count/sum/p50/p95/p99. The bucket
    /// array is loaded once, so the three percentiles are computed from
    /// the same view and are always mutually monotone even while writers
    /// race.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: counts.iter().sum(),
            sum: self.sum(),
            p50: percentile_of(&counts, 50.0),
            p95: percentile_of(&counts, 95.0),
            p99: percentile_of(&counts, 99.0),
        }
    }

    /// Per-bucket counts (for exposition). Index `i` = bucket `i`.
    pub(crate) fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Reset to empty (test support; racing writers may land on either
    /// side of the reset).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

fn percentile_of(counts: &[u64], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    // Rank of the requested percentile, 1-based, clamped into range.
    let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn percentiles_bound_samples_and_stay_monotone() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let s = h.snapshot();
        // Bucket upper bounds over-approximate but never undershoot the
        // true percentile, and never exceed the next power of two.
        assert!(s.p50 >= 500 && s.p50 <= 1023, "p50={}", s.p50);
        assert!(s.p99 >= 990 && s.p99 <= 1023, "p99={}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn single_value_percentiles() {
        let h = Histogram::new();
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.p50, s.p99);
        assert!(s.p50 >= 100 && s.p50 <= 127);
    }
}
