//! Sharded monotone counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards. Power of two so the thread slot maps with a
/// mask. 16 covers the worker-thread counts this engine spawns (one per
/// partition, default ≤ CPUs) without making `get()` scans expensive.
const SHARDS: usize = 16;

/// One cache line per shard so writers on different cores never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Index of the calling thread's shard: threads are assigned slots
/// round-robin on first use, so concurrent writers spread across shards
/// instead of contending on one line.
#[inline]
fn shard_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            s = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(s);
        }
        s & (SHARDS - 1)
    })
}

/// Monotonically increasing counter, sharded across cache-padded atomics
/// so hot-path increments from many threads stay uncontended. Totals are
/// exact: `get()` sums all shards.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Exact total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset to zero (test support; racing writers may land on either
    /// side of the reset).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// Signed level gauge (single atomic — gauges are not hot-path).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` to the level.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from the level.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise the level to `v` if `v` is higher (high-water mark).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (test support).
    pub fn reset(&self) {
        self.set(0);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_totals_are_exact() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_levels_and_high_water() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set_max(5);
        assert_eq!(g.get(), 7);
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }
}
