//! Compiled-out mirror of the metrics API (`--no-default-features`).
//!
//! Every type exists with the same surface as the real implementation,
//! but all mutators are inlined empty bodies and all readouts return
//! zero / empty, so callers need no `#[cfg]` guards and the optimizer
//! removes the calls entirely.

use crate::{HistogramSnapshot, QueryOutcome, SlowQueryEntry};

/// Capacity the real slow-query log would have (kept for API parity).
pub const SLOW_LOG_CAPACITY: usize = 128;

/// Label byte bound the real slow-query log would apply (API parity).
pub const SLOW_LOG_LABEL_MAX: usize = 1024;

/// Sample period the real sampler would use (kept for API parity).
pub const SAMPLE_PERIOD: u64 = 64;

/// Sampler stub: never samples, so gated clock reads compile out.
#[derive(Debug, Default)]
pub struct Sampler;

impl Sampler {
    /// New sampler stub.
    pub const fn new() -> Self {
        Sampler
    }
    /// Always `false` — no event carries expensive telemetry.
    #[inline(always)]
    pub fn tick(&self) -> bool {
        false
    }
    /// No-op.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// Counter stub: all operations are no-ops.
#[derive(Debug, Default)]
pub struct Counter;

impl Counter {
    /// New counter stub.
    pub fn new() -> Self {
        Counter
    }
    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
    /// No-op.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// Gauge stub: all operations are no-ops.
#[derive(Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// New gauge stub.
    pub fn new() -> Self {
        Gauge
    }
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: i64) {}
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: i64) {}
    /// No-op.
    #[inline(always)]
    pub fn sub(&self, _n: i64) {}
    /// No-op.
    #[inline(always)]
    pub fn set_max(&self, _v: i64) {}
    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> i64 {
        0
    }
    /// No-op.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// Histogram stub: all operations are no-ops.
#[derive(Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// New histogram stub.
    pub fn new() -> Self {
        Histogram
    }
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}
    /// Always zero.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
    /// Always zero.
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }
    /// Always zero.
    #[inline(always)]
    pub fn percentile(&self, _p: f64) -> u64 {
        0
    }
    /// Always the zero snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    /// No-op.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// Slow-query log stub: retains nothing.
#[derive(Debug, Default)]
pub struct SlowQueryLog;

impl SlowQueryLog {
    /// New log stub.
    pub fn new() -> Self {
        SlowQueryLog
    }
    /// No-op.
    #[inline(always)]
    pub fn push(&self, _label: impl Into<String>, _elapsed_ns: u64, _outcome: QueryOutcome) {}
    /// Always empty.
    #[inline(always)]
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        Vec::new()
    }
    /// Always zero.
    #[inline(always)]
    pub fn len(&self) -> usize {
        0
    }
    /// Always `true`.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        true
    }
    /// No-op.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// Registry stub with the same field names as the real registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Stub.
    pub append_rows: Counter,
    /// Stub.
    pub append_bytes: Counter,
    /// Stub.
    pub batch_seals: Counter,
    /// Stub.
    pub snapshots_taken: Counter,
    /// Stub.
    pub snapshot_age_ns: Histogram,
    /// Stub.
    pub probe_sampler: Sampler,
    /// Stub.
    pub probe_hits: Counter,
    /// Stub.
    pub probe_misses: Counter,
    /// Stub.
    pub chain_walk: Histogram,
    /// Stub.
    pub queries_started: Counter,
    /// Stub.
    pub queries_finished: Counter,
    /// Stub.
    pub queries_cancelled: Counter,
    /// Stub.
    pub queries_failed: Counter,
    /// Stub.
    pub queries_in_flight: Gauge,
    /// Stub.
    pub query_latency_ns: Histogram,
    /// Stub.
    pub query_peak_memory_bytes: Gauge,
    /// Stub.
    pub wal_records: Counter,
    /// Stub.
    pub wal_bytes: Counter,
    /// Stub.
    pub wal_fsyncs: Counter,
    /// Stub.
    pub wal_group_commit_batch: Histogram,
    /// Stub.
    pub checkpoint_duration_ns: Histogram,
    /// Stub.
    pub recovery_duration_ns: Histogram,
    /// Stub.
    pub recovery_replayed_records: Counter,
    /// Stub.
    pub wal_degraded_transitions: Counter,
    /// Stub.
    pub wal_readonly_rejections: Counter,
    /// Stub.
    pub wal_resumes: Counter,
    /// Stub.
    pub scrub_runs: Counter,
    /// Stub.
    pub scrub_corruptions: Counter,
    /// Stub.
    pub server_connections_total: Counter,
    /// Stub.
    pub server_connections_open: Gauge,
    /// Stub.
    pub server_in_flight: Gauge,
    /// Stub.
    pub server_queue_depth: Gauge,
    /// Stub.
    pub server_rejected_busy: Counter,
    /// Stub.
    pub server_rejected_quota: Counter,
    /// Stub.
    pub server_drain_ns: Histogram,
    /// Stub.
    pub views_registered: Gauge,
    /// Stub.
    pub view_deltas_applied: Counter,
    /// Stub.
    pub view_maintenance_lag_ns: Histogram,
    /// Stub.
    pub view_refresh_ns: Histogram,
    /// Stub.
    pub dml_updates: Counter,
    /// Stub.
    pub dml_deletes: Counter,
    /// Stub.
    pub dml_rows_affected: Counter,
    /// Stub.
    pub superseded_versions: Counter,
    /// Stub.
    pub tombstones_live: Gauge,
    /// Stub.
    pub dead_rows_live: Gauge,
    /// Stub.
    pub compaction_runs: Counter,
    /// Stub.
    pub compaction_failures: Counter,
    /// Stub.
    pub compaction_batches_rewritten: Counter,
    /// Stub.
    pub compaction_rows_reclaimed: Counter,
    /// Stub.
    pub compaction_bytes_reclaimed: Counter,
    /// Stub.
    pub compaction_duration_ns: Histogram,
    /// Stub.
    pub post_compaction_chain_walk: Histogram,
    /// Stub.
    pub slow_queries: SlowQueryLog,
}

impl MetricsRegistry {
    /// New registry stub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry stub.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: MetricsRegistry = MetricsRegistry {
            append_rows: Counter,
            append_bytes: Counter,
            batch_seals: Counter,
            snapshots_taken: Counter,
            snapshot_age_ns: Histogram,
            probe_sampler: Sampler,
            probe_hits: Counter,
            probe_misses: Counter,
            chain_walk: Histogram,
            queries_started: Counter,
            queries_finished: Counter,
            queries_cancelled: Counter,
            queries_failed: Counter,
            queries_in_flight: Gauge,
            query_latency_ns: Histogram,
            query_peak_memory_bytes: Gauge,
            wal_records: Counter,
            wal_bytes: Counter,
            wal_fsyncs: Counter,
            wal_group_commit_batch: Histogram,
            checkpoint_duration_ns: Histogram,
            recovery_duration_ns: Histogram,
            recovery_replayed_records: Counter,
            wal_degraded_transitions: Counter,
            wal_readonly_rejections: Counter,
            wal_resumes: Counter,
            scrub_runs: Counter,
            scrub_corruptions: Counter,
            server_connections_total: Counter,
            server_connections_open: Gauge,
            server_in_flight: Gauge,
            server_queue_depth: Gauge,
            server_rejected_busy: Counter,
            server_rejected_quota: Counter,
            server_drain_ns: Histogram,
            views_registered: Gauge,
            view_deltas_applied: Counter,
            view_maintenance_lag_ns: Histogram,
            view_refresh_ns: Histogram,
            dml_updates: Counter,
            dml_deletes: Counter,
            dml_rows_affected: Counter,
            superseded_versions: Counter,
            tombstones_live: Gauge,
            dead_rows_live: Gauge,
            compaction_runs: Counter,
            compaction_failures: Counter,
            compaction_batches_rewritten: Counter,
            compaction_rows_reclaimed: Counter,
            compaction_bytes_reclaimed: Counter,
            compaction_duration_ns: Histogram,
            post_compaction_chain_walk: Histogram,
            slow_queries: SlowQueryLog,
        };
        &GLOBAL
    }

    /// No-op.
    #[inline(always)]
    pub fn reset(&self) {}

    /// Empty exposition (metrics compiled out).
    #[inline(always)]
    pub fn prometheus(&self) -> String {
        String::new()
    }
}

/// The process-global registry stub.
#[inline(always)]
pub fn global() -> &'static MetricsRegistry {
    MetricsRegistry::global()
}
