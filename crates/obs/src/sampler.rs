//! Probe sampler: decides with one relaxed `fetch_add` whether an event
//! should carry *expensive* telemetry (clock reads). Cheap telemetry
//! (counters, value histograms) stays exact; only the wall-clock-derived
//! metrics are sampled.

use std::sync::atomic::{AtomicU64, Ordering};

/// How often the sampler says yes: the first tick and every
/// `SAMPLE_PERIOD`-th tick after it.
pub const SAMPLE_PERIOD: u64 = 64;

const _: () = assert!(SAMPLE_PERIOD.is_power_of_two());

/// A 1-in-[`SAMPLE_PERIOD`] event sampler.
///
/// `tick()` costs one relaxed `fetch_add` — no clock, no branch
/// mispredict in the steady state — so hot paths can consult it on
/// every event and only pay for `Instant::now()` on the sampled ones.
/// The first tick always samples, so short-lived tests and processes
/// still observe at least one data point.
#[derive(Debug, Default)]
pub struct Sampler {
    ticks: AtomicU64,
}

impl Sampler {
    /// New sampler; its first `tick()` returns `true`.
    pub const fn new() -> Self {
        Sampler {
            ticks: AtomicU64::new(0),
        }
    }

    /// `true` when this event should carry expensive telemetry.
    #[inline]
    pub fn tick(&self) -> bool {
        self.ticks.fetch_add(1, Ordering::Relaxed) & (SAMPLE_PERIOD - 1) == 0
    }

    /// Rewind to the always-sampling first tick (test support).
    pub fn reset(&self) {
        self.ticks.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_samples_then_every_period() {
        let s = Sampler::new();
        assert!(s.tick(), "first tick must sample");
        let mut sampled = 0;
        for _ in 0..(SAMPLE_PERIOD * 10 - 1) {
            if s.tick() {
                sampled += 1;
            }
        }
        assert_eq!(sampled, 9, "exactly one sample per period");
        s.reset();
        assert!(s.tick(), "reset rewinds to the sampling tick");
    }
}
