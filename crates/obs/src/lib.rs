//! Lock-minimal observability core for the indexed-dataframe engine.
//!
//! The crate provides four primitives — [`Counter`] (sharded atomic,
//! exact totals), [`Gauge`] (signed level / high-water mark),
//! [`Histogram`] (fixed log2-bucket latency histogram with monotone
//! p50/p95/p99 readout) and [`SlowQueryLog`] (bounded ring buffer) —
//! plus a process-global [`MetricsRegistry`] that owns one well-known
//! instance of each engine metric and renders them all as Prometheus
//! text exposition.
//!
//! Everything is behind the default-on `obs` feature. With the feature
//! disabled (`--no-default-features`) the same API exists but every
//! method is an inlined no-op and every readout returns zero — callers
//! never need `#[cfg]` guards, mirroring the `idf-fail` crate.
//!
//! # Example
//!
//! ```
//! let m = idf_obs::global();
//! m.probe_hits.inc();
//! m.chain_walk.record(3);
//! let text = m.prometheus();
//! if idf_obs::enabled() {
//!     assert!(text.contains("idf_index_probe_hits_total"));
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// `true` when the `obs` feature is compiled in. Callers may use this to
/// skip *argument computation* (e.g. reading a clock) that would
/// otherwise be paid even though the recording itself is a no-op.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// How a tracked query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Ran to completion and returned rows (or an empty result).
    Finished,
    /// Stopped by explicit cancellation or a deadline.
    Cancelled,
    /// Stopped by any other error.
    Failed,
}

impl QueryOutcome {
    /// Stable lowercase label used in logs and exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryOutcome::Finished => "finished",
            QueryOutcome::Cancelled => "cancelled",
            QueryOutcome::Failed => "failed",
        }
    }
}

/// One recorded slow query.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// Monotonically increasing sequence number (process-wide).
    pub seq: u64,
    /// Human-readable description — the SQL text or plan root.
    pub label: String,
    /// End-to-end wall time in nanoseconds.
    pub elapsed_ns: u64,
    /// How the query ended.
    pub outcome: QueryOutcome,
}

/// Point-in-time percentile readout of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// 50th percentile (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

#[cfg(feature = "obs")]
mod counter;
#[cfg(feature = "obs")]
mod histogram;
#[cfg(feature = "obs")]
mod registry;
#[cfg(feature = "obs")]
mod sampler;

#[cfg(feature = "obs")]
pub use counter::{Counter, Gauge};
#[cfg(feature = "obs")]
pub use histogram::Histogram;
#[cfg(feature = "obs")]
pub use registry::{global, MetricsRegistry, SlowQueryLog, SLOW_LOG_CAPACITY, SLOW_LOG_LABEL_MAX};
#[cfg(feature = "obs")]
pub use sampler::{Sampler, SAMPLE_PERIOD};

#[cfg(not(feature = "obs"))]
mod noop;

#[cfg(not(feature = "obs"))]
pub use noop::{
    global, Counter, Gauge, Histogram, MetricsRegistry, Sampler, SlowQueryLog, SAMPLE_PERIOD,
    SLOW_LOG_CAPACITY, SLOW_LOG_LABEL_MAX,
};
