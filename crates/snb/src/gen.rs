//! Deterministic social-network data generation, modelled on the LDBC SNB
//! Datagen output the paper evaluates on ("datasets generated using the
//! Datagen tool provided by the SNB benchmark — graph structures,
//! represented as edge and vertex tables").
//!
//! The generator is seeded and fully deterministic, produces the same
//! skew features the index's backward-pointer lists are designed around
//! (power-law friend degrees, multiple messages per creator, reply trees),
//! and scales with a single knob ([`SnbConfig::with_scale`]).

use std::sync::Arc;

use idf_engine::chunk::Chunk;
use idf_engine::error::Result;
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation epoch (2010-01-01, millis).
pub const EPOCH_MS: i64 = 1_262_304_000_000;
/// One day in milliseconds.
pub const DAY_MS: i64 = 86_400_000;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SnbConfig {
    /// Number of persons.
    pub persons: usize,
    /// Mean friends per person (degrees are power-law distributed).
    pub avg_friends: usize,
    /// Mean messages per person.
    pub avg_messages: usize,
    /// Number of forums.
    pub forums: usize,
    /// Mean members per forum.
    pub avg_members: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SnbConfig {
    fn default() -> Self {
        SnbConfig::with_scale(1.0)
    }
}

impl SnbConfig {
    /// A config scaled from a base of 2 000 persons per unit scale factor.
    ///
    /// The paper runs SF300 on a 10-node cluster; this reproduction is
    /// laptop-scale, so the *shape* experiments default to SF ≈ 1–10 and
    /// the harness sweeps the scale to show trends.
    pub fn with_scale(scale_factor: f64) -> Self {
        let persons = ((2_000.0 * scale_factor) as usize).max(10);
        SnbConfig {
            persons,
            avg_friends: 15,
            avg_messages: 12,
            forums: (persons / 10).max(1),
            avg_members: 20,
            seed: 42,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generated tables, as single chunks (register them partitioned or
/// indexed via [`crate::load`]).
pub struct SnbData {
    /// Generator configuration used.
    pub config: SnbConfig,
    /// `person` rows.
    pub person: Chunk,
    /// `person_knows_person` rows.
    pub knows: Chunk,
    /// `message` rows (posts have NULL `reply_of_id`).
    pub message: Chunk,
    /// `forum` rows.
    pub forum: Chunk,
    /// `forum_hasmember` rows.
    pub forum_hasmember: Chunk,
    /// Highest assigned person id (update streams continue from here).
    pub max_person_id: i64,
    /// Highest assigned message id.
    pub max_message_id: i64,
}

/// `person(id, first_name, last_name, birthday, location_ip, browser_used,
/// city_id, creation_date)`.
pub fn person_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("first_name", DataType::Utf8),
        Field::new("last_name", DataType::Utf8),
        Field::new("birthday", DataType::Timestamp),
        Field::new("location_ip", DataType::Utf8),
        Field::new("browser_used", DataType::Utf8),
        Field::new("city_id", DataType::Int64),
        Field::new("creation_date", DataType::Timestamp),
    ]))
}

/// `person_knows_person(person1_id, person2_id, creation_date)`.
pub fn knows_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("person1_id", DataType::Int64),
        Field::required("person2_id", DataType::Int64),
        Field::new("creation_date", DataType::Timestamp),
    ]))
}

/// `message(id, content, length, creation_date, creator_id, forum_id,
/// reply_of_id, browser_used)`.
pub fn message_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("content", DataType::Utf8),
        Field::new("length", DataType::Int32),
        Field::new("creation_date", DataType::Timestamp),
        Field::new("creator_id", DataType::Int64),
        Field::new("forum_id", DataType::Int64),
        Field::new("reply_of_id", DataType::Int64),
        Field::new("browser_used", DataType::Utf8),
    ]))
}

/// `forum(id, title, moderator_id, creation_date)`.
pub fn forum_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("title", DataType::Utf8),
        Field::new("moderator_id", DataType::Int64),
        Field::new("creation_date", DataType::Timestamp),
    ]))
}

/// `forum_hasmember(forum_id, person_id, join_date)`.
pub fn forum_hasmember_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("forum_id", DataType::Int64),
        Field::required("person_id", DataType::Int64),
        Field::new("join_date", DataType::Timestamp),
    ]))
}

const FIRST_NAMES: &[&str] = &[
    "Jan", "Maria", "Ahmed", "Wei", "Olga", "Carlos", "Aiko", "Lena", "Raj", "Emma", "Noah", "Ana",
    "Ivan", "Sofia", "Liam", "Chen", "Fatima", "Jo", "Kim", "Ali",
];
const LAST_NAMES: &[&str] = &[
    "Smith", "Garcia", "Khan", "Wang", "Ivanova", "Silva", "Tanaka", "Muller", "Patel", "Brown",
    "Jensen", "Rossi", "Novak", "Kowalski", "Nguyen", "Sato", "Haddad", "Berg",
];
const BROWSERS: &[&str] = &["Firefox", "Chrome", "Safari", "Internet Explorer", "Opera"];
const WORDS: &[&str] = &[
    "graph", "query", "stream", "update", "index", "spark", "social", "network", "photo", "travel",
    "music", "match", "learn", "scale", "cache", "latency", "join", "friend",
];

/// Power-law-ish degree: Pareto via inverse transform, clamped.
fn powerlaw_degree(rng: &mut StdRng, mean: usize, max: usize) -> usize {
    let alpha = 2.0f64;
    let xmin = (mean as f64) * (alpha - 1.0) / alpha; // mean of Pareto
    let u: f64 = rng.gen_range(1e-9..1.0);
    let deg = xmin / u.powf(1.0 / alpha);
    (deg as usize).clamp(1, max)
}

fn random_ip(rng: &mut StdRng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1..255),
        rng.gen_range(0..255),
        rng.gen_range(0..255),
        rng.gen_range(1..255)
    )
}

fn random_content(rng: &mut StdRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

/// Generate the full dataset.
pub fn generate(config: SnbConfig) -> Result<SnbData> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.persons as i64;

    // persons
    let mut person_rows = Vec::with_capacity(config.persons);
    for id in 0..n {
        person_rows.push(vec![
            Value::Int64(id),
            Value::Utf8(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string()),
            Value::Utf8(LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_string()),
            Value::Timestamp(EPOCH_MS - rng.gen_range(18..60) * 365 * DAY_MS),
            Value::Utf8(random_ip(&mut rng)),
            Value::Utf8(BROWSERS[rng.gen_range(0..BROWSERS.len())].to_string()),
            Value::Int64(rng.gen_range(0..1000)),
            Value::Timestamp(EPOCH_MS + id * 1000),
        ]);
    }

    // knows: power-law out-degrees; both directions stored (LDBC stores
    // undirected friendship as two directed rows).
    let mut knows_rows = Vec::new();
    for p1 in 0..n {
        let deg = powerlaw_degree(&mut rng, config.avg_friends, config.persons - 1);
        for _ in 0..deg {
            let p2 = rng.gen_range(0..n);
            if p2 == p1 {
                continue;
            }
            let ts = EPOCH_MS + rng.gen_range(0..365) * DAY_MS;
            knows_rows.push(vec![
                Value::Int64(p1),
                Value::Int64(p2),
                Value::Timestamp(ts),
            ]);
            knows_rows.push(vec![
                Value::Int64(p2),
                Value::Int64(p1),
                Value::Timestamp(ts),
            ]);
        }
    }

    // forums
    let mut forum_rows = Vec::with_capacity(config.forums);
    for f in 0..config.forums as i64 {
        forum_rows.push(vec![
            Value::Int64(f),
            Value::Utf8(format!(
                "{} {} group {}",
                WORDS[rng.gen_range(0..WORDS.len())],
                WORDS[rng.gen_range(0..WORDS.len())],
                f
            )),
            Value::Int64(rng.gen_range(0..n)),
            Value::Timestamp(EPOCH_MS),
        ]);
    }

    // forum membership
    let mut member_rows = Vec::new();
    for f in 0..config.forums as i64 {
        let members = powerlaw_degree(&mut rng, config.avg_members, config.persons);
        for _ in 0..members {
            member_rows.push(vec![
                Value::Int64(f),
                Value::Int64(rng.gen_range(0..n)),
                Value::Timestamp(EPOCH_MS + rng.gen_range(0..365) * DAY_MS),
            ]);
        }
    }

    // messages: posts (forum, no reply_of) and comments (reply to an
    // earlier message).
    let mut message_rows = Vec::new();
    let mut next_message_id = 0i64;
    for creator in 0..n {
        let count = powerlaw_degree(&mut rng, config.avg_messages, 400);
        for _ in 0..count {
            let id = next_message_id;
            next_message_id += 1;
            let is_comment = id > 0 && rng.gen_bool(0.5);
            let (forum_id, reply_of) = if is_comment {
                (Value::Null, Value::Int64(rng.gen_range(0..id)))
            } else {
                (
                    Value::Int64(rng.gen_range(0..config.forums as i64)),
                    Value::Null,
                )
            };
            let n_words = rng.gen_range(3..20);
            let content = random_content(&mut rng, n_words);
            message_rows.push(vec![
                Value::Int64(id),
                Value::Utf8(content.clone()),
                Value::Int32(content.len() as i32),
                Value::Timestamp(EPOCH_MS + rng.gen_range(0..(365 * DAY_MS))),
                Value::Int64(creator),
                forum_id,
                reply_of,
                Value::Utf8(BROWSERS[rng.gen_range(0..BROWSERS.len())].to_string()),
            ]);
        }
    }

    Ok(SnbData {
        config,
        person: Chunk::from_rows(&person_schema(), &person_rows)?,
        knows: Chunk::from_rows(&knows_schema(), &knows_rows)?,
        message: Chunk::from_rows(&message_schema(), &message_rows)?,
        forum: Chunk::from_rows(&forum_schema(), &forum_rows)?,
        forum_hasmember: Chunk::from_rows(&forum_hasmember_schema(), &member_rows)?,
        max_person_id: n - 1,
        max_message_id: next_message_id - 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(SnbConfig::with_scale(0.05)).unwrap();
        let b = generate(SnbConfig::with_scale(0.05)).unwrap();
        assert_eq!(a.person.len(), b.person.len());
        assert_eq!(a.knows.len(), b.knows.len());
        assert_eq!(a.message.to_rows(), b.message.to_rows());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(SnbConfig::with_scale(0.05)).unwrap();
        let b = generate(SnbConfig::with_scale(0.05).with_seed(7)).unwrap();
        assert_ne!(a.knows.to_rows(), b.knows.to_rows());
    }

    #[test]
    fn scale_factor_scales_sizes() {
        let small = generate(SnbConfig::with_scale(0.05)).unwrap();
        let large = generate(SnbConfig::with_scale(0.2)).unwrap();
        assert!(large.person.len() > 2 * small.person.len());
        assert!(large.knows.len() > 2 * small.knows.len());
    }

    #[test]
    fn degrees_are_skewed() {
        let data = generate(SnbConfig::with_scale(0.5)).unwrap();
        // Count out-degrees.
        let mut degrees = std::collections::HashMap::new();
        for r in 0..data.knows.len() {
            let Value::Int64(p1) = data.knows.value_at(0, r) else {
                panic!()
            };
            *degrees.entry(p1).or_insert(0usize) += 1;
        }
        let max = degrees.values().copied().max().unwrap();
        let mean = data.knows.len() / degrees.len();
        assert!(
            max > 4 * mean,
            "power law should produce hubs: max {max}, mean {mean}"
        );
    }

    #[test]
    fn referential_integrity() {
        let data = generate(SnbConfig::with_scale(0.1)).unwrap();
        let n = data.max_person_id;
        for r in 0..data.knows.len() {
            let Value::Int64(p1) = data.knows.value_at(0, r) else {
                panic!()
            };
            let Value::Int64(p2) = data.knows.value_at(1, r) else {
                panic!()
            };
            assert!(p1 <= n && p2 <= n && p1 != p2);
        }
        for r in 0..data.message.len() {
            let Value::Int64(creator) = data.message.value_at(4, r) else {
                panic!()
            };
            assert!(creator <= n);
            let Value::Int64(id) = data.message.value_at(0, r) else {
                panic!()
            };
            match data.message.value_at(6, r) {
                Value::Int64(reply_of) => {
                    assert!(reply_of < id, "replies reference earlier messages");
                    assert_eq!(data.message.value_at(5, r), Value::Null);
                }
                Value::Null => {
                    assert!(matches!(data.message.value_at(5, r), Value::Int64(_)));
                }
                other => panic!("bad reply_of {other:?}"),
            }
        }
    }

    #[test]
    fn posts_and_comments_both_present() {
        let data = generate(SnbConfig::with_scale(0.1)).unwrap();
        let mut posts = 0;
        let mut comments = 0;
        for r in 0..data.message.len() {
            if data.message.value_at(6, r) == Value::Null {
                posts += 1;
            } else {
                comments += 1;
            }
        }
        assert!(posts > 0 && comments > 0);
    }
}
