//! The update stream: a deterministic, timestamped event feed emulating
//! the Kafka stream the paper's demo uses to mutate the graph ("the Apache
//! Kafka engine to handle the constant updating stream that is mutating
//! the graph").

use idf_engine::error::Result;
use idf_engine::types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{SnbData, DAY_MS, EPOCH_MS};

/// One update event, as the row it inserts.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateEvent {
    /// A new person row.
    AddPerson(Vec<Value>),
    /// A new friendship (both directions).
    AddKnows(Vec<Value>, Vec<Value>),
    /// A new message row.
    AddMessage(Vec<Value>),
}

impl UpdateEvent {
    /// Event kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            UpdateEvent::AddPerson(_) => "person",
            UpdateEvent::AddKnows(..) => "knows",
            UpdateEvent::AddMessage(_) => "message",
        }
    }
}

/// A deterministic stream of update events continuing a generated dataset.
pub struct UpdateStream {
    rng: StdRng,
    next_person: i64,
    next_message: i64,
    clock: i64,
    forums: i64,
}

impl UpdateStream {
    /// A stream continuing after `data`'s id ranges.
    pub fn new(data: &SnbData, seed: u64) -> Self {
        UpdateStream {
            rng: StdRng::seed_from_u64(seed),
            next_person: data.max_person_id + 1,
            next_message: data.max_message_id + 1,
            clock: EPOCH_MS + 366 * DAY_MS,
            forums: data.config.forums as i64,
        }
    }

    /// Produce the next `n` events.
    pub fn take_events(&mut self, n: usize) -> Vec<UpdateEvent> {
        (0..n).map(|_| self.next_event()).collect()
    }

    /// Produce one event. Mix: 70% messages, 25% edges, 5% new persons —
    /// messages dominate real feeds.
    pub fn next_event(&mut self) -> UpdateEvent {
        self.clock += self.rng.gen_range(1..2000);
        let roll = self.rng.gen_range(0..100);
        if roll < 5 {
            let id = self.next_person;
            self.next_person += 1;
            UpdateEvent::AddPerson(vec![
                Value::Int64(id),
                Value::Utf8(format!("new{id}")),
                Value::Utf8("Arrival".to_string()),
                Value::Timestamp(EPOCH_MS - 25 * 365 * DAY_MS),
                Value::Utf8("10.0.0.1".to_string()),
                Value::Utf8("Chrome".to_string()),
                Value::Int64(self.rng.gen_range(0..1000)),
                Value::Timestamp(self.clock),
            ])
        } else if roll < 30 {
            let p1 = self.rng.gen_range(0..self.next_person);
            let p2 =
                (p1 + self.rng.gen_range(1..self.next_person.max(2))) % self.next_person.max(1);
            let ts = Value::Timestamp(self.clock);
            UpdateEvent::AddKnows(
                vec![Value::Int64(p1), Value::Int64(p2), ts.clone()],
                vec![Value::Int64(p2), Value::Int64(p1), ts],
            )
        } else {
            let id = self.next_message;
            self.next_message += 1;
            let creator = self.rng.gen_range(0..self.next_person);
            let is_comment = self.rng.gen_bool(0.5) && id > 0;
            let (forum, reply) = if is_comment {
                (Value::Null, Value::Int64(self.rng.gen_range(0..id)))
            } else {
                (
                    Value::Int64(self.rng.gen_range(0..self.forums.max(1))),
                    Value::Null,
                )
            };
            UpdateEvent::AddMessage(vec![
                Value::Int64(id),
                Value::Utf8(format!("live update {id}")),
                Value::Int32(14),
                Value::Timestamp(self.clock),
                Value::Int64(creator),
                forum,
                reply,
                Value::Utf8("Chrome".to_string()),
            ])
        }
    }

    /// Apply one event to the indexed tables (the demo's consumer side).
    pub fn apply(event: &UpdateEvent, tables: &crate::load::IndexedTables) -> Result<()> {
        match event {
            UpdateEvent::AddPerson(row) => tables.person.append_row(row),
            UpdateEvent::AddKnows(fwd, bwd) => {
                tables.knows.append_row(fwd)?;
                tables.knows.append_row(bwd)
            }
            UpdateEvent::AddMessage(row) => tables.append_message_row(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, SnbConfig};
    use crate::load::{register_indexed, Mode};
    use idf_engine::prelude::Session;

    #[test]
    fn stream_is_deterministic() {
        let data = generate(SnbConfig::with_scale(0.05)).unwrap();
        let a: Vec<_> = UpdateStream::new(&data, 1).take_events(100);
        let b: Vec<_> = UpdateStream::new(&data, 1).take_events(100);
        assert_eq!(a, b);
        let c: Vec<_> = UpdateStream::new(&data, 2).take_events(100);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_continue_from_dataset() {
        let data = generate(SnbConfig::with_scale(0.05)).unwrap();
        let mut s = UpdateStream::new(&data, 1);
        for e in s.take_events(500) {
            match e {
                UpdateEvent::AddPerson(row) => {
                    let Value::Int64(id) = row[0] else { panic!() };
                    assert!(id > data.max_person_id);
                }
                UpdateEvent::AddMessage(row) => {
                    let Value::Int64(id) = row[0] else { panic!() };
                    assert!(id > data.max_message_id);
                }
                UpdateEvent::AddKnows(fwd, bwd) => {
                    assert_eq!(fwd[0], bwd[1]);
                    assert_eq!(fwd[1], bwd[0]);
                }
            }
        }
    }

    #[test]
    fn events_apply_to_indexed_tables() {
        let data = generate(SnbConfig::with_scale(0.05)).unwrap();
        let session = Session::new();
        let tables = register_indexed(&session, &data).unwrap();
        let persons_before = tables.person.row_count();
        let mut s = UpdateStream::new(&data, 3);
        let events = s.take_events(300);
        let mut new_messages = 0;
        for e in &events {
            UpdateStream::apply(e, &tables).unwrap();
            if matches!(e, UpdateEvent::AddMessage(_)) {
                new_messages += 1;
            }
        }
        assert!(tables.person.row_count() >= persons_before);
        // New messages are queryable through every message index.
        if let Some(UpdateEvent::AddMessage(row)) = events
            .iter()
            .find(|e| matches!(e, UpdateEvent::AddMessage(_)))
        {
            let Value::Int64(id) = row[0] else { panic!() };
            let out = session
                .sql(&format!("SELECT content FROM message WHERE id = {id}"))
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(out.len(), 1);
        }
        assert!(new_messages > 0);
        let _ = Mode::Indexed;
    }
}
