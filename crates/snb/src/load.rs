//! Registering the SNB tables in a session, either *vanilla* (cached
//! columnar tables — the baseline the paper compares against) or *indexed*
//! (Indexed DataFrames over the access paths the short reads use).
//!
//! The same query text runs against both registrations — "transparently
//! running SNB queries both on vanilla Spark and Spark using Indexed
//! DataFrames" (paper, §5).
//!
//! ## Index deployment
//!
//! | logical name         | physical table | index column    |
//! |----------------------|----------------|-----------------|
//! | `person`             | person         | `id`            |
//! | `knows`              | knows          | `person1_id`    |
//! | `message`            | message        | `id`            |
//! | `message_by_creator` | message        | `creator_id`    |
//! | `message_by_reply`   | message        | `reply_of_id`   |
//! | `forum`              | forum          | *(none)*        |
//! | `forum_hasmember`    | forum_hasmember| *(none)*        |
//!
//! The forum tables carry no index, so SQ5/SQ6 — which traverse only forum
//! access paths — cannot use indexed execution; this reproduces the
//! paper's Figure 3 observation that those two queries see no speedup. In
//! vanilla mode the three `message*` names alias one cached table.

use std::sync::Arc;

use idf_core::prelude::*;
use idf_engine::catalog::MemTable;
use idf_engine::chunk::Chunk;
use idf_engine::error::Result;
use idf_engine::prelude::Session;
use idf_engine::schema::SchemaRef;

use crate::gen::SnbData;

/// Which physical representation to register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Cached columnar tables, vanilla execution.
    Vanilla,
    /// Indexed DataFrames on the short-read access paths.
    Indexed,
}

/// Handles to the indexed tables (for appends in streaming scenarios).
pub struct IndexedTables {
    /// person indexed on `id`.
    pub person: IndexedDataFrame,
    /// knows indexed on `person1_id`.
    pub knows: IndexedDataFrame,
    /// message indexed on `id`.
    pub message: IndexedDataFrame,
    /// message indexed on `creator_id`.
    pub message_by_creator: IndexedDataFrame,
    /// message indexed on `reply_of_id`.
    pub message_by_reply: IndexedDataFrame,
}

impl IndexedTables {
    /// Append freshly arrived messages to every message index.
    pub fn append_message_row(&self, values: &[idf_engine::types::Value]) -> Result<()> {
        self.message.append_row(values)?;
        self.message_by_creator.append_row(values)?;
        self.message_by_reply.append_row(values)?;
        Ok(())
    }
}

fn mem_table(session: &Session, schema: SchemaRef, chunk: Chunk) -> Result<Arc<MemTable>> {
    let parts = session.config().target_partitions;
    Ok(Arc::new(MemTable::from_chunk_partitioned(
        schema, chunk, parts,
    )?))
}

/// Register everything vanilla: partitioned, cached, columnar.
pub fn register_vanilla(session: &Session, data: &SnbData) -> Result<()> {
    let person = mem_table(session, crate::gen::person_schema(), data.person.clone())?;
    session.register_table("person", person);
    let knows = mem_table(session, crate::gen::knows_schema(), data.knows.clone())?;
    session.register_table("knows", knows);
    let message = mem_table(session, crate::gen::message_schema(), data.message.clone())?;
    let message: Arc<dyn idf_engine::catalog::TableSource> = message;
    session.register_table("message", Arc::clone(&message));
    session.register_table("message_by_creator", Arc::clone(&message));
    session.register_table("message_by_reply", message);
    let forum = mem_table(session, crate::gen::forum_schema(), data.forum.clone())?;
    session.register_table("forum", forum);
    let hasmember = mem_table(
        session,
        crate::gen::forum_hasmember_schema(),
        data.forum_hasmember.clone(),
    )?;
    session.register_table("forum_hasmember", hasmember);
    Ok(())
}

/// Register with indexes on the short-read access paths; forum tables stay
/// vanilla. Returns handles for streaming appends.
pub fn register_indexed(session: &Session, data: &SnbData) -> Result<IndexedTables> {
    let cfg = IndexConfig::default();
    let mk = |schema: SchemaRef, chunk: &Chunk, key: usize| -> Result<IndexedDataFrame> {
        let table = Arc::new(IndexedTable::from_chunk(schema, key, cfg.clone(), chunk)?);
        Ok(IndexedDataFrame::from_table(session.clone(), table))
    };
    let person = mk(crate::gen::person_schema(), &data.person, 0)?;
    person.cache().register("person");
    let knows = mk(crate::gen::knows_schema(), &data.knows, 0)?;
    knows.cache().register("knows");
    let message = mk(crate::gen::message_schema(), &data.message, 0)?;
    message.cache().register("message");
    let message_by_creator = mk(crate::gen::message_schema(), &data.message, 4)?;
    message_by_creator.cache().register("message_by_creator");
    let message_by_reply = mk(crate::gen::message_schema(), &data.message, 6)?;
    message_by_reply.cache().register("message_by_reply");
    // Forum access paths deliberately unindexed (see module docs).
    let forum = mem_table(session, crate::gen::forum_schema(), data.forum.clone())?;
    session.register_table("forum", forum);
    let hasmember = mem_table(
        session,
        crate::gen::forum_hasmember_schema(),
        data.forum_hasmember.clone(),
    )?;
    session.register_table("forum_hasmember", hasmember);
    Ok(IndexedTables {
        person,
        knows,
        message,
        message_by_creator,
        message_by_reply,
    })
}

/// Register per `mode`; returns index handles in indexed mode.
pub fn register(session: &Session, data: &SnbData, mode: Mode) -> Result<Option<IndexedTables>> {
    match mode {
        Mode::Vanilla => {
            register_vanilla(session, data)?;
            Ok(None)
        }
        Mode::Indexed => Ok(Some(register_indexed(session, data)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, SnbConfig};

    #[test]
    fn both_modes_register_same_names() {
        let data = generate(SnbConfig::with_scale(0.05)).unwrap();
        for mode in [Mode::Vanilla, Mode::Indexed] {
            let session = Session::new();
            register(&session, &data, mode).unwrap();
            let names = session.catalog().table_names();
            assert_eq!(
                names,
                vec![
                    "forum",
                    "forum_hasmember",
                    "knows",
                    "message",
                    "message_by_creator",
                    "message_by_reply",
                    "person"
                ],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn row_counts_match_across_modes() {
        let data = generate(SnbConfig::with_scale(0.05)).unwrap();
        let mut counts = Vec::new();
        for mode in [Mode::Vanilla, Mode::Indexed] {
            let session = Session::new();
            register(&session, &data, mode).unwrap();
            let mut mode_counts = Vec::new();
            for t in ["person", "knows", "message", "forum", "forum_hasmember"] {
                mode_counts.push(session.table(t).unwrap().count().unwrap());
            }
            counts.push(mode_counts);
        }
        assert_eq!(counts[0], counts[1]);
    }
}
