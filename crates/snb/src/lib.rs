//! # idf-snb — SNB-like workload for the Indexed DataFrame reproduction
//!
//! Deterministic social-network data generation (persons, power-law
//! friendship edges, messages/replies, forums — modelled on the LDBC SNB
//! Datagen tables the paper evaluates on), a Kafka-like update stream, and
//! the seven *simple read* queries of the paper's Figure 3, written once
//! and run against either a vanilla (cached columnar) or an indexed
//! registration of the same data.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod gen;
pub mod load;
pub mod queries;
pub mod stream;

pub use gen::{generate, SnbConfig, SnbData};
pub use load::{register, register_indexed, register_vanilla, IndexedTables, Mode};
pub use queries::{query, uses_index, QueryParams};
pub use stream::{UpdateEvent, UpdateStream};

pub use queries::{cq1, cq2, cq3};
