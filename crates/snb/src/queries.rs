//! The seven SNB *simple read* queries of the paper's Figure 3, written
//! once against logical table names so the identical text runs on both the
//! vanilla and the indexed registration (see [`crate::load`]).
//!
//! SQ1–SQ4 and SQ7 touch indexed access paths (point lookups on person,
//! messages by creator, friends-of, message by id, replies-of) and are the
//! queries the paper shows speeding up; SQ5 and SQ6 traverse the
//! *unindexed* forum tables and "cannot make use of the index", matching
//! the paper's observation for its Q5/Q6.

use idf_engine::dataframe::DataFrame;
use idf_engine::error::Result;
use idf_engine::prelude::Session;

/// Parameters for one short-read invocation.
#[derive(Debug, Clone, Copy)]
pub struct QueryParams {
    /// The person of interest (SQ1, SQ2, SQ3).
    pub person_id: i64,
    /// The message of interest (SQ4, SQ7).
    pub message_id: i64,
    /// The forum of interest (SQ5, SQ6).
    pub forum_id: i64,
}

impl QueryParams {
    /// Deterministic parameters derived from a sequence number, bounded by
    /// the dataset maxima.
    pub fn nth(i: u64, max_person: i64, max_message: i64, max_forum: i64) -> QueryParams {
        let mix = idf_ctrie::hash::mix64(i);
        QueryParams {
            person_id: (mix % (max_person.max(1) as u64)) as i64,
            message_id: (idf_ctrie::hash::mix64(mix) % (max_message.max(1) as u64)) as i64,
            forum_id: (idf_ctrie::hash::mix64(mix ^ 0xf0) % (max_forum.max(1) as u64)) as i64,
        }
    }
}

/// SQ1 — person profile: everything about one person (LDBC IS1).
pub fn sq1(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT first_name, last_name, birthday, location_ip, browser_used, city_id, \
                creation_date \
         FROM person WHERE id = {}",
        p.person_id
    ))
}

/// SQ2 — recent messages of a person: last 10 by creation date (LDBC IS2).
pub fn sq2(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT id, content, creation_date FROM message_by_creator \
         WHERE creator_id = {} \
         ORDER BY creation_date DESC, id DESC LIMIT 10",
        p.person_id
    ))
}

/// SQ3 — friends of a person, most recent friendships first (LDBC IS3).
pub fn sq3(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT p.id, p.first_name, p.last_name, k.creation_date \
         FROM knows k JOIN person p ON k.person2_id = p.id \
         WHERE k.person1_id = {} \
         ORDER BY k.creation_date DESC, p.id",
        p.person_id
    ))
}

/// SQ4 — content of a message (LDBC IS4).
pub fn sq4(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT creation_date, content FROM message WHERE id = {}",
        p.message_id
    ))
}

/// SQ5 — forum summary: moderator and activity of one forum. Touches only
/// the unindexed forum access paths (forum scan + join on `forum_id`), so
/// it runs identically in both modes — the paper's "Q5 cannot make use of
/// the index".
pub fn sq5(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT f.title, f.moderator_id, count(*) AS messages \
         FROM forum f JOIN message m ON m.forum_id = f.id \
         WHERE f.id = {} \
         GROUP BY f.title, f.moderator_id",
        p.forum_id
    ))
}

/// SQ6 — membership roll of one forum, newest members first. Unindexed
/// (the paper's "Q6 cannot make use of the index").
pub fn sq6(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT hm.person_id, hm.join_date \
         FROM forum_hasmember hm \
         WHERE hm.forum_id = {} \
         ORDER BY hm.join_date DESC, hm.person_id LIMIT 20",
        p.forum_id
    ))
}

/// SQ7 — replies to a message, with reply author info (LDBC IS7).
pub fn sq7(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT r.id, r.content, r.creation_date, p.id, p.first_name, p.last_name \
         FROM message_by_reply r JOIN person p ON r.creator_id = p.id \
         WHERE r.reply_of_id = {} \
         ORDER BY r.creation_date DESC, r.id",
        p.message_id
    ))
}

/// All seven queries, by number (1-based).
pub fn query(session: &Session, number: usize, p: &QueryParams) -> Result<DataFrame> {
    match number {
        1 => sq1(session, p),
        2 => sq2(session, p),
        3 => sq3(session, p),
        4 => sq4(session, p),
        5 => sq5(session, p),
        6 => sq6(session, p),
        7 => sq7(session, p),
        other => Err(idf_engine::error::EngineError::plan(format!(
            "SNB short reads are numbered 1–7, got {other}"
        ))),
    }
}

/// Whether the query is expected to benefit from the index deployment.
pub fn uses_index(number: usize) -> bool {
    !matches!(number, 5 | 6)
}

/// CQ1 — friends-of-friends (LDBC IC-style complex read): distinct
/// profiles reachable in two hops, excluding the person themselves.
/// Exercises *chained* indexed joins.
pub fn cq1(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT DISTINCT p2.id, p2.first_name, p2.last_name \
         FROM knows k1 \
         JOIN knows k2 ON k1.person2_id = k2.person1_id \
         JOIN person p2 ON k2.person2_id = p2.id \
         WHERE k1.person1_id = {id} AND k2.person2_id <> {id} \
         ORDER BY p2.id LIMIT 50",
        id = p.person_id
    ))
}

/// CQ2 — recent messages of friends (LDBC IC9-style): the 20 newest
/// messages created by direct friends.
pub fn cq2(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT m.id, m.creator_id, m.content, m.creation_date \
         FROM knows k \
         JOIN message_by_creator m ON m.creator_id = k.person2_id \
         WHERE k.person1_id = {} \
         ORDER BY m.creation_date DESC, m.id DESC LIMIT 20",
        p.person_id
    ))
}

/// CQ3 — browser usage among a person's friends (aggregation over an
/// indexed traversal).
pub fn cq3(session: &Session, p: &QueryParams) -> Result<DataFrame> {
    session.sql(&format!(
        "SELECT p2.browser_used, count(*) AS n \
         FROM knows k JOIN person p2 ON k.person2_id = p2.id \
         WHERE k.person1_id = {} \
         GROUP BY p2.browser_used ORDER BY n DESC, p2.browser_used",
        p.person_id
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, SnbConfig};
    use crate::load::{register, Mode};

    fn sessions() -> (Session, Session, crate::gen::SnbData) {
        let data = generate(SnbConfig::with_scale(0.1)).unwrap();
        let vanilla = Session::new();
        register(&vanilla, &data, Mode::Vanilla).unwrap();
        let indexed = Session::new();
        register(&indexed, &data, Mode::Indexed).unwrap();
        (vanilla, indexed, data)
    }

    #[test]
    fn all_queries_agree_across_modes() {
        let (vanilla, indexed, data) = sessions();
        for i in 0..5u64 {
            let p = QueryParams::nth(
                i,
                data.max_person_id,
                data.max_message_id,
                data.config.forums as i64,
            );
            for q in 1..=7 {
                let a = query(&vanilla, q, &p).unwrap().collect().unwrap();
                let b = query(&indexed, q, &p).unwrap().collect().unwrap();
                // Ordered queries compare row-for-row; SQ1 has ≤1 row.
                assert_eq!(a.to_rows(), b.to_rows(), "SQ{q} diverged for params {p:?}");
            }
        }
    }

    #[test]
    fn indexed_mode_uses_indexed_plans_where_expected() {
        let (_, indexed, data) = sessions();
        let p = QueryParams::nth(
            1,
            data.max_person_id,
            data.max_message_id,
            data.config.forums as i64,
        );
        for q in 1..=7 {
            let plan = query(&indexed, q, &p).unwrap().explain().unwrap();
            let physical = plan.split("== Physical ==").nth(1).unwrap().to_string();
            let is_indexed = physical.contains("IndexedJoin") || physical.contains("pushed=");
            assert_eq!(
                is_indexed,
                uses_index(q),
                "SQ{q} index usage mismatch:\n{plan}"
            );
        }
    }

    #[test]
    fn sq2_returns_at_most_ten_ordered() {
        let (vanilla, _, data) = sessions();
        for i in 0..10u64 {
            let p = QueryParams::nth(
                i,
                data.max_person_id,
                data.max_message_id,
                data.config.forums as i64,
            );
            let out = sq2(&vanilla, &p).unwrap().collect().unwrap();
            assert!(out.len() <= 10);
            for r in 1..out.len() {
                assert!(out.value_at(2, r - 1) >= out.value_at(2, r));
            }
        }
    }

    #[test]
    fn params_are_deterministic_and_bounded() {
        let a = QueryParams::nth(5, 100, 1000, 10);
        let b = QueryParams::nth(5, 100, 1000, 10);
        assert_eq!(a.person_id, b.person_id);
        assert!(a.person_id < 100 && a.message_id < 1000 && a.forum_id < 10);
    }

    #[test]
    fn invalid_query_number_rejected() {
        let (vanilla, _, _) = sessions();
        let p = QueryParams {
            person_id: 0,
            message_id: 0,
            forum_id: 0,
        };
        assert!(query(&vanilla, 0, &p).is_err());
        assert!(query(&vanilla, 8, &p).is_err());
    }
}
