//! The complex-read queries must agree across modes and actually use
//! chained indexed execution in indexed mode.

use idf_engine::prelude::Session;
use idf_snb::{cq1, cq2, cq3, generate, register, Mode, QueryParams, SnbConfig};

fn sessions() -> (Session, Session, idf_snb::SnbData) {
    let data = generate(SnbConfig::with_scale(0.1)).unwrap();
    let vanilla = Session::new();
    register(&vanilla, &data, Mode::Vanilla).unwrap();
    let indexed = Session::new();
    register(&indexed, &data, Mode::Indexed).unwrap();
    (vanilla, indexed, data)
}

type QueryFn =
    fn(&Session, &QueryParams) -> idf_engine::error::Result<idf_engine::dataframe::DataFrame>;

const QUERIES: [(&str, QueryFn); 3] = [("cq1", cq1), ("cq2", cq2), ("cq3", cq3)];

#[test]
fn complex_reads_agree_across_modes() {
    let (vanilla, indexed, data) = sessions();
    for i in 0..4u64 {
        let p = QueryParams::nth(
            i,
            data.max_person_id,
            data.max_message_id,
            data.config.forums as i64,
        );
        for (name, q) in QUERIES {
            let a = q(&vanilla, &p).unwrap().collect().unwrap();
            let b = q(&indexed, &p).unwrap().collect().unwrap();
            assert_eq!(a.to_rows(), b.to_rows(), "{name} diverged for {p:?}");
        }
    }
}

#[test]
fn complex_reads_use_indexed_joins() {
    let (_, indexed, data) = sessions();
    let p = QueryParams::nth(
        2,
        data.max_person_id,
        data.max_message_id,
        data.config.forums as i64,
    );
    for (name, q) in QUERIES {
        let plan = q(&indexed, &p).unwrap().explain().unwrap();
        assert!(
            plan.contains("IndexedJoin") || plan.contains("pushed="),
            "{name} should use the index:\n{plan}"
        );
    }
}

#[test]
fn cq1_excludes_self() {
    let (vanilla, _, data) = sessions();
    for i in 0..3u64 {
        let p = QueryParams::nth(
            i,
            data.max_person_id,
            data.max_message_id,
            data.config.forums as i64,
        );
        let out = cq1(&vanilla, &p).unwrap().collect().unwrap();
        for r in 0..out.len() {
            assert_ne!(
                out.value_at(0, r),
                idf_engine::types::Value::Int64(p.person_id),
                "friends-of-friends must exclude the person"
            );
        }
    }
}
