//! Named fault-injection sites in the compaction subsystem.
//!
//! Same contract as the storage-, durability-, engine-, service- and
//! view-layer registries (`crates/core/src/failpoints.rs`, …): each
//! constant names an `idf_fail::eval` site, every constant is registered
//! exactly once in [`SITES`], and the compaction chaos suite iterates
//! the table asserting that a fault at any site never changes any query
//! answer — compaction is pure reorganization, so the worst legal
//! outcome of a fault is that dead versions survive a little longer.

use idf_engine::error::{EngineError, Result};

/// Head of one policy survey cycle, before any table is examined: a
/// fault here skips the whole cycle and the worker retries on the next
/// tick.
pub const COMPACT_SELECT: &str = "compact::select";

/// Head of one table rewrite, before any batch is rebuilt: a fault here
/// leaves the table byte-for-byte untouched.
pub const COMPACT_REWRITE: &str = "compact::rewrite";

/// Inside the rewrite, just before a partition's rebuilt batches are
/// swapped in: a fault here must abandon the rebuilt state and leave
/// the previous batches fully authoritative (readers never observe a
/// half-swapped table).
pub const COMPACT_SWAP: &str = "compact::swap";

/// Every registered compaction site, for chaos suites to iterate.
pub const SITES: &[&str] = &[COMPACT_SELECT, COMPACT_REWRITE, COMPACT_SWAP];

/// Evaluate the failpoint at `site`, mapping an injected fault into a
/// typed execution error that names the site.
#[inline]
pub fn check(site: &str) -> Result<()> {
    idf_fail::eval(site)
        .map_err(|msg| EngineError::exec(format!("injected failure at {site}: {msg}")))
}
