//! The real compaction subsystem (`compact` feature on): registry,
//! policy survey, bounded background worker, and the SQL `COMPACT`
//! hook. See the crate docs for the design; `noop.rs` mirrors this
//! public surface when the feature is off.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use idf_core::partition::PartitionMemory;
use idf_core::source::IndexedSource;
use idf_core::table::IndexedTable;
use idf_engine::error::{EngineError, Result};
use idf_engine::session::{CompactHook, CompactRow, Session};

use crate::failpoints;
use crate::CompactConfig;

/// Poison-tolerant lock: compaction state stays usable after a panicked
/// holder (the panic is surfaced through the worker's failure counter).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The background compactor. Holds its own registry of table handles
/// (the background worker has no session to discover tables through);
/// the SQL `COMPACT` path additionally discovers indexed tables from
/// the session catalog, so DDL-created tables need no registration.
pub struct Compactor {
    config: CompactConfig,
    /// Registered tables the background policy surveys.
    tables: Mutex<HashMap<String, Arc<IndexedTable>>>,
    /// The background worker handle, present while started.
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Start/stop idempotency latch: `start` wins it by compare-exchange
    /// (so the spawn happens with no lock held), `stop` releases it after
    /// joining.
    running: AtomicBool,
    /// Pairs with `wake_cv` for the worker's interruptible interval wait.
    wake: Mutex<()>,
    wake_cv: Condvar,
    shutdown: AtomicBool,
    /// Completed survey cycles (tests wait on this for progress).
    cycles_done: AtomicU64,
}

impl Compactor {
    /// New compactor with `config` (bounds normalized), worker not yet
    /// started.
    pub fn new(config: CompactConfig) -> Arc<Compactor> {
        let mut config = config;
        config.max_tables_per_cycle = config.max_tables_per_cycle.max(1);
        config.interval = config.interval.max(std::time::Duration::from_millis(1));
        Arc::new(Compactor {
            config,
            tables: Mutex::new(HashMap::new()),
            worker: Mutex::new(None),
            running: AtomicBool::new(false),
            wake: Mutex::new(()),
            wake_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cycles_done: AtomicU64::new(0),
        })
    }

    /// Put `table` under background management as `name` (replacing any
    /// previous handle under that name).
    pub fn register(&self, name: &str, table: Arc<IndexedTable>) {
        lock(&self.tables).insert(name.to_string(), table);
    }

    /// Remove `name` from background management. In-flight rewrites of
    /// the table finish normally.
    pub fn deregister(&self, name: &str) {
        lock(&self.tables).remove(name);
    }

    /// Names currently under background management, sorted.
    pub fn registered(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.tables).keys().cloned().collect();
        names.sort();
        names
    }

    /// Completed background survey cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles_done.load(Ordering::SeqCst)
    }

    /// Start the bounded background worker (idempotent while running):
    /// every [`CompactConfig::interval`] it surveys the registry and
    /// rewrites at most [`CompactConfig::max_tables_per_cycle`] eligible
    /// tables. The worker holds the compactor only weakly, so dropping
    /// every external handle also winds the thread down.
    pub fn start(self: &Arc<Self>) {
        if self
            .running
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        self.shutdown.store(false, Ordering::SeqCst);
        let me = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name("idf-compact".to_string())
            .spawn(move || worker_entry(me))
            .expect("spawn compaction worker");
        *lock(&self.worker) = Some(handle);
    }

    /// Stop the background worker and wait for it to exit. Idempotent;
    /// [`Compactor::start`] re-arms after a stop.
    pub fn stop(&self) {
        {
            let _wake = lock(&self.wake);
            self.shutdown.store(true, Ordering::SeqCst);
            self.wake_cv.notify_all();
        }
        let handle = lock(&self.worker).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.running.store(false, Ordering::SeqCst);
    }

    /// One policy-driven survey cycle over the registered tables: update
    /// the tombstone/dead-row gauges, pick up to
    /// [`CompactConfig::max_tables_per_cycle`] eligible tables (most
    /// dead versions first), rewrite them. Returns one row per rewrite;
    /// an ineligible registry yields an empty report.
    pub fn run_once(&self) -> Result<Vec<CompactRow>> {
        if let Err(e) = failpoints::check(failpoints::COMPACT_SELECT) {
            idf_obs::global().compaction_failures.inc();
            return Err(e);
        }
        let targets = self.survey_targets();
        let chain_p99 = idf_obs::global().chain_walk.percentile(99.0);
        let mut eligible: Vec<(usize, String, Arc<IndexedTable>)> = Vec::new();
        let (mut tombstones, mut dead_rows) = (0i64, 0i64);
        for (name, table) in targets {
            let mem = table.memory_stats();
            tombstones += mem.tombstones as i64;
            dead_rows += mem.dead_rows as i64;
            if self.eligible(&mem, chain_p99) {
                eligible.push((mem.tombstones + mem.dead_rows, name, table));
            }
        }
        let m = idf_obs::global();
        m.tombstones_live.set(tombstones);
        m.dead_rows_live.set(dead_rows);
        eligible.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        eligible.truncate(self.config.max_tables_per_cycle);
        let mut rows = Vec::with_capacity(eligible.len());
        for (_, name, table) in eligible {
            rows.push(self.rewrite(&name, &table)?);
        }
        Ok(rows)
    }

    /// Snapshot of the registry, sorted by name; the guard is released
    /// before any rewrite work starts.
    fn survey_targets(&self) -> Vec<(String, Arc<IndexedTable>)> {
        let mut out: Vec<(String, Arc<IndexedTable>)> = lock(&self.tables)
            .iter()
            .map(|(n, t)| (n.clone(), Arc::clone(t)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Background eligibility policy. `dead_rows == 0` is never eligible
    /// — a table of bare delete sentinels has nothing a rewrite could
    /// reclaim, and rewriting it every cycle would burn CPU for nothing.
    fn eligible(&self, mem: &PartitionMemory, chain_p99: u64) -> bool {
        if mem.dead_rows == 0 {
            return false;
        }
        let dead = mem.tombstones + mem.dead_rows;
        if dead < self.config.min_dead_rows {
            return false;
        }
        let ratio = dead as f64 / mem.rows.max(1) as f64;
        ratio >= self.config.min_dead_ratio || chain_p99 >= self.config.chain_walk_p99_trigger
    }

    /// Rewrite one table, recording the compaction metrics. The swap
    /// failpoint is injected through `compact_with`'s pre-swap hook, so
    /// a fault there exercises the abandon-rebuilt-state path.
    fn rewrite(&self, name: &str, table: &IndexedTable) -> Result<CompactRow> {
        if let Err(e) = failpoints::check(failpoints::COMPACT_REWRITE) {
            idf_obs::global().compaction_failures.inc();
            return Err(e);
        }
        let start = Instant::now();
        let stats = match table.compact_with(&|| failpoints::check(failpoints::COMPACT_SWAP)) {
            Ok(stats) => stats,
            Err(e) => {
                idf_obs::global().compaction_failures.inc();
                return Err(e);
            }
        };
        let m = idf_obs::global();
        m.compaction_runs.inc();
        m.compaction_batches_rewritten
            .add(stats.batches_before as u64);
        m.compaction_rows_reclaimed
            .add(stats.rows_reclaimed() as u64);
        m.compaction_bytes_reclaimed
            .add(stats.bytes_reclaimed() as u64);
        m.compaction_duration_ns
            .record(start.elapsed().as_nanos() as u64);
        let mem = table.memory_stats();
        m.post_compaction_chain_walk
            .record((mem.rows / mem.index_entries.max(1)) as u64);
        Ok(CompactRow {
            table: name.to_string(),
            rows_reclaimed: stats.rows_reclaimed(),
            bytes_reclaimed: stats.bytes_reclaimed(),
        })
    }

    /// Resolve the tables SQL `COMPACT [table]` addresses: catalog
    /// sources that are live indexed tables (by downcast), plus
    /// registered handles the catalog does not know. A named target
    /// that resolves to nothing is an error.
    fn resolve(
        &self,
        session: &Session,
        filter: Option<&str>,
    ) -> Result<Vec<(String, Arc<IndexedTable>)>> {
        match filter {
            Some(name) => {
                if let Some(table) = catalog_indexed(session, name) {
                    return Ok(vec![(name.to_string(), table)]);
                }
                if let Some(table) = lock(&self.tables).get(name).map(Arc::clone) {
                    return Ok(vec![(name.to_string(), table)]);
                }
                Err(EngineError::Unsupported(format!(
                    "COMPACT {name}: not a live indexed table"
                )))
            }
            None => {
                let mut out: Vec<(String, Arc<IndexedTable>)> = Vec::new();
                for name in session.catalog().table_names() {
                    if let Some(table) = catalog_indexed(session, &name) {
                        out.push((name, table));
                    }
                }
                for (name, table) in lock(&self.tables).iter() {
                    if !out.iter().any(|(n, _)| n == name) {
                        out.push((name.clone(), Arc::clone(table)));
                    }
                }
                out.sort_by(|a, b| a.0.cmp(&b.0));
                Ok(out)
            }
        }
    }
}

impl CompactHook for Compactor {
    /// Manual trigger: rewrite unconditionally (no eligibility policy —
    /// the user asked), then refresh the survey gauges.
    fn compact(&self, session: &Session, table: Option<&str>) -> Result<Vec<CompactRow>> {
        let targets = self.resolve(session, table)?;
        let mut rows = Vec::with_capacity(targets.len());
        for (name, table) in &targets {
            rows.push(self.rewrite(name, table)?);
        }
        let m = idf_obs::global();
        let (mut tombstones, mut dead_rows) = (0i64, 0i64);
        for (_, table) in &targets {
            let mem = table.memory_stats();
            tombstones += mem.tombstones as i64;
            dead_rows += mem.dead_rows as i64;
        }
        m.tombstones_live.set(tombstones);
        m.dead_rows_live.set(dead_rows);
        Ok(rows)
    }
}

/// `name` in the session catalog, when it is a live (non-frozen)
/// indexed source.
fn catalog_indexed(session: &Session, name: &str) -> Option<Arc<IndexedTable>> {
    let source = session.catalog().get(name).ok()?;
    let indexed = source.as_any().downcast_ref::<IndexedSource>()?;
    if indexed.is_frozen() {
        return None;
    }
    Some(Arc::clone(indexed.table()))
}

/// Background worker: interruptible interval wait, then one survey
/// cycle. Holds the compactor weakly so dropping every external handle
/// winds the thread down at the next tick; an injected fault fails the
/// cycle (counted) but never kills the worker.
fn worker_entry(me: Weak<Compactor>) {
    loop {
        let Some(compactor) = me.upgrade() else {
            return;
        };
        if compactor.shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            let guard = lock(&compactor.wake);
            let _unused = compactor
                .wake_cv
                .wait_timeout(guard, compactor.config.interval)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if compactor.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = compactor.run_once();
        compactor.cycles_done.fetch_add(1, Ordering::SeqCst);
    }
}
