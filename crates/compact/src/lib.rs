//! Background compaction for the Indexed DataFrame (`idf-compact`).
//!
//! UPDATE/DELETE in this system never mutate in place: an UPDATE appends
//! a new row image, a DELETE appends a tombstone, and MVCC readers
//! resolve the newest visible version by walking the backward-pointer
//! chain. Under a sustained update-heavy workload that design trades
//! write latency for two slow leaks: resident memory grows with every
//! superseded version, and point-lookup latency grows with the chain
//! length each probe must walk. This crate closes the loop:
//!
//! * **Policy**: a bounded background worker surveys registered tables'
//!   [`idf_core::partition::PartitionMemory`] accounting (tombstones +
//!   dead rows) and picks the coldest candidates — tables whose dead
//!   fraction crossed [`CompactConfig::min_dead_ratio`], or any table
//!   with dead versions once the process-global chain-walk p99 (from
//!   `idf-obs`) crosses [`CompactConfig::chain_walk_p99_trigger`].
//! * **Rewrite**: [`idf_core::table::IndexedTable::compact_with`]
//!   rebuilds the partition's batches without dead versions and swaps
//!   them in snapshot-consistently — readers in flight keep their
//!   pinned snapshots, and a reader that raced the swap observes
//!   exactly the same visible rows either way.
//! * **Manual trigger**: the crate installs an
//!   [`idf_engine::session::CompactHook`], so SQL `COMPACT [table]`
//!   (and [`idf_engine::session::Session::compact`]) rewrites
//!   unconditionally, discovering indexed tables through the session
//!   catalog.
//!
//! With the `compact` feature off the whole subsystem compiles down to
//! an API-identical no-op ([`Compactor`] still exists, `COMPACT`
//! returns zero rows), mirroring the `idf-obs`/`idf-fail` pattern.
//!
//! ```
//! use idf_core::prelude::*;
//! use idf_engine::session::Session;
//!
//! let session = Session::new();
//! install_indexed_ddl(&session, IndexConfig::default());
//! let _compactor = idf_compact::install(&session, idf_compact::CompactConfig::default());
//!
//! session.sql("CREATE TABLE t (k BIGINT, v BIGINT)").unwrap().collect().unwrap();
//! session.sql("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap().collect().unwrap();
//! session.sql("UPDATE t SET v = 11 WHERE k = 1").unwrap().collect().unwrap();
//! // Manual trigger: drops the superseded version of key 1.
//! let report = session.sql("COMPACT t").unwrap().collect().unwrap();
//! assert_eq!(report.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod failpoints;

#[cfg(feature = "compact")]
mod worker;
#[cfg(feature = "compact")]
pub use worker::Compactor;

#[cfg(not(feature = "compact"))]
mod noop;
#[cfg(not(feature = "compact"))]
pub use noop::Compactor;

use std::sync::Arc;
use std::time::Duration;

use idf_engine::session::{CompactHook, Session};

/// Crate-wide lock-acquisition order, enforced by idf-lint's
/// `lock-order` rule: a lock may only be acquired while holding locks
/// that appear strictly earlier in this list.
pub const LOCK_ORDER: &[(&str, &str)] = &[
    (
        "worker",
        "background worker handle slot; held only to store the freshly spawned handle and to take it for the join (the join itself runs with no guard live)",
    ),
    (
        "wake",
        "worker wakeup mutex; held only across the timed wait and the shutdown notify",
    ),
    (
        "tables",
        "registered-table registry; snapshotted and released before any rewrite work",
    ),
];

/// Whether the real compaction subsystem is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "compact")
}

/// Tuning for the background compaction policy (see [`install`]).
#[derive(Debug, Clone)]
pub struct CompactConfig {
    /// Period between background survey cycles. Default 200ms.
    pub interval: Duration,
    /// A table is never rewritten while it holds fewer dead versions
    /// (tombstones + rows hidden below them) than this — small tables
    /// are not worth the rewrite. Default 256.
    pub min_dead_rows: usize,
    /// Dead fraction (dead versions / stored rows) above which a table
    /// is eligible for rewrite. Default 0.2.
    pub min_dead_ratio: f64,
    /// Escalation: once the process-global chain-walk p99 histogram
    /// (`idf-obs`) reports at least this many rows walked per probe,
    /// any surveyed table holding `min_dead_rows` dead versions is
    /// eligible regardless of its dead fraction. Default 8.
    pub chain_walk_p99_trigger: u64,
    /// Upper bound on tables rewritten per survey cycle, so one cycle's
    /// work stays bounded. Default 4.
    pub max_tables_per_cycle: usize,
}

impl Default for CompactConfig {
    fn default() -> Self {
        CompactConfig {
            interval: Duration::from_millis(200),
            min_dead_rows: 256,
            min_dead_ratio: 0.2,
            chain_walk_p99_trigger: 8,
            max_tables_per_cycle: 4,
        }
    }
}

/// Install the compaction subsystem on `session`: from then on SQL
/// `COMPACT [table]` dispatches to the returned [`Compactor`]. The
/// background worker is *not* started — call [`Compactor::start`] to
/// begin policy-driven cycles over explicitly
/// [`Compactor::register`]-ed tables.
pub fn install(session: &Session, config: CompactConfig) -> Arc<Compactor> {
    let compactor = Compactor::new(config);
    session.set_compact_hook(Arc::clone(&compactor) as Arc<dyn CompactHook>);
    compactor
}
