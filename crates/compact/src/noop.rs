//! Compiled-out mirror of the compaction API (`compact` feature off).
//!
//! Same pattern as `idf-obs`/`idf-fail`: every public item exists with
//! the same signature as the real half (`worker.rs`, enforced by
//! idf-lint's `api-parity` rule), but nothing ever rewrites anything —
//! `COMPACT` reports zero tables, the worker never spawns, and dead
//! versions simply accumulate as they would without the subsystem.

use std::sync::Arc;

use idf_core::table::IndexedTable;
use idf_engine::error::Result;
use idf_engine::session::{CompactHook, CompactRow, Session};

use crate::CompactConfig;

/// Compactor stub: registers nothing, rewrites nothing.
pub struct Compactor;

impl Compactor {
    /// New compactor stub; `config` is discarded.
    pub fn new(_config: CompactConfig) -> Arc<Compactor> {
        Arc::new(Compactor)
    }

    /// No-op.
    #[inline(always)]
    pub fn register(&self, _name: &str, _table: Arc<IndexedTable>) {}

    /// No-op.
    #[inline(always)]
    pub fn deregister(&self, _name: &str) {}

    /// Always empty.
    #[inline(always)]
    pub fn registered(&self) -> Vec<String> {
        Vec::new()
    }

    /// Always zero.
    #[inline(always)]
    pub fn cycles(&self) -> u64 {
        0
    }

    /// No-op: no worker thread is ever spawned.
    #[inline(always)]
    pub fn start(self: &Arc<Self>) {}

    /// No-op.
    #[inline(always)]
    pub fn stop(&self) {}

    /// Always an empty report.
    #[inline(always)]
    pub fn run_once(&self) -> Result<Vec<CompactRow>> {
        Ok(Vec::new())
    }
}

impl CompactHook for Compactor {
    fn compact(&self, _session: &Session, _table: Option<&str>) -> Result<Vec<CompactRow>> {
        Ok(Vec::new())
    }
}
