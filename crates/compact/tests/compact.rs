//! End-to-end tests for the compaction subsystem: the SQL `COMPACT`
//! manual trigger, the policy-driven background worker, and (under the
//! `failpoints` feature) fault injection at every registered site with
//! answer-invariance audits after each failure.

#![cfg(feature = "compact")]

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use idf_compact::{install, CompactConfig, Compactor};
use idf_core::prelude::*;
use idf_core::source::IndexedSource;
use idf_core::table::IndexedTable;
use idf_engine::chunk::Chunk;
use idf_engine::session::Session;
use idf_engine::types::Value;

/// The obs registry and the failpoint registry are process-global;
/// every test here serializes on this lock (poison tolerated so one
/// failure doesn't cascade).
static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    #[cfg(feature = "failpoints")]
    idf_fail::reset();
    SUITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn setup() -> (Session, Arc<Compactor>) {
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    let compactor = install(&session, CompactConfig::default());
    (session, compactor)
}

fn sql(session: &Session, query: &str) -> Chunk {
    session
        .sql(query)
        .unwrap_or_else(|e| panic!("{query}: {e}"))
        .collect()
        .unwrap_or_else(|e| panic!("{query}: {e}"))
}

fn rows_of(chunk: &Chunk) -> Vec<Vec<Value>> {
    let mut rows = chunk.to_rows();
    rows.sort();
    rows
}

/// The registered `IndexedTable` behind a DDL-created table, resolved
/// the same way the compactor's catalog discovery does.
fn table_handle(session: &Session, name: &str) -> Arc<IndexedTable> {
    let source = session.catalog().get(name).expect("table registered");
    let indexed = source
        .as_any()
        .downcast_ref::<IndexedSource>()
        .expect("indexed source");
    Arc::clone(indexed.table())
}

/// CREATE `name` and load `keys` rows of (k, v = k * 10).
fn seed_table(session: &Session, name: &str, keys: i64) {
    sql(
        session,
        &format!("CREATE TABLE {name} (k BIGINT, v BIGINT)"),
    );
    let values: Vec<String> = (0..keys).map(|k| format!("({k}, {})", k * 10)).collect();
    sql(
        session,
        &format!("INSERT INTO {name} VALUES {}", values.join(", ")),
    );
}

#[test]
fn sql_compact_reclaims_superseded_versions_and_preserves_answers() {
    let _guard = serial();
    let (session, _compactor) = setup();
    seed_table(&session, "t", 64);

    // Two update waves over half the keys plus a few deletes: every
    // superseded image and every row under a tombstone is dead weight.
    sql(&session, "UPDATE t SET v = v + 1000 WHERE k < 32");
    sql(&session, "UPDATE t SET v = v + 1000 WHERE k < 32");
    sql(&session, "DELETE FROM t WHERE k >= 60");

    let table = table_handle(&session, "t");
    let before = table.memory_stats();
    assert!(before.dead_rows > 0, "updates must strand dead versions");
    assert!(before.tombstones > 0, "deletes must leave tombstones");

    let answer_before = rows_of(&sql(&session, "SELECT k, v FROM t"));
    assert_eq!(answer_before.len(), 60);

    let report = rows_of(&sql(&session, "COMPACT t"));
    assert_eq!(report.len(), 1);
    assert_eq!(report[0][0], Value::Utf8("t".to_string()));
    let Value::Int64(rows_reclaimed) = report[0][1] else {
        panic!("rows_reclaimed must be an integer: {:?}", report[0][1]);
    };
    assert!(rows_reclaimed > 0, "rewrite must reclaim dead versions");

    let after = table.memory_stats();
    assert_eq!(after.dead_rows, 0, "no dead versions survive a rewrite");
    assert!(
        after.rows < before.rows,
        "stored rows must shrink ({} -> {})",
        before.rows,
        after.rows
    );
    // Fully deleted keys keep exactly one tombstone sentinel each.
    assert_eq!(after.tombstones, 4);

    let answer_after = rows_of(&sql(&session, "SELECT k, v FROM t"));
    assert_eq!(
        answer_before, answer_after,
        "COMPACT must not change answers"
    );
}

#[test]
fn background_worker_reclaims_once_policy_thresholds_cross() {
    let _guard = serial();
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    let compactor = install(
        &session,
        CompactConfig {
            interval: Duration::from_millis(5),
            min_dead_rows: 8,
            min_dead_ratio: 0.1,
            ..CompactConfig::default()
        },
    );
    seed_table(&session, "bg", 32);
    sql(&session, "UPDATE bg SET v = v + 1");
    sql(&session, "UPDATE bg SET v = v + 1");

    let table = table_handle(&session, "bg");
    assert!(table.memory_stats().dead_rows >= 32);
    let answer_before = rows_of(&sql(&session, "SELECT k, v FROM bg"));

    compactor.register("bg", Arc::clone(&table));
    assert_eq!(compactor.registered(), ["bg"]);
    compactor.start();
    compactor.start(); // idempotent while running

    let deadline = Instant::now() + Duration::from_secs(10);
    while table.memory_stats().dead_rows > 0 {
        assert!(
            Instant::now() < deadline,
            "worker never reclaimed: {:?}",
            table.memory_stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let cycles_seen = compactor.cycles();
    assert!(cycles_seen > 0, "worker must have completed cycles");
    compactor.stop();
    compactor.stop(); // idempotent after a stop

    assert_eq!(
        answer_before,
        rows_of(&sql(&session, "SELECT k, v FROM bg")),
        "background compaction must not change answers"
    );
    // Stopped workers make no further progress.
    let frozen = compactor.cycles();
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(compactor.cycles(), frozen);

    compactor.deregister("bg");
    assert!(compactor.registered().is_empty());
}

#[test]
fn background_policy_skips_tables_below_thresholds() {
    let _guard = serial();
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    idf_obs::global().chain_walk.reset();
    let compactor = install(
        &session,
        CompactConfig {
            min_dead_rows: 1_000_000,
            chain_walk_p99_trigger: u64::MAX,
            ..CompactConfig::default()
        },
    );
    seed_table(&session, "cold", 16);
    sql(&session, "UPDATE cold SET v = v + 1");

    let table = table_handle(&session, "cold");
    let before = table.memory_stats();
    assert!(before.dead_rows > 0);

    compactor.register("cold", Arc::clone(&table));
    let report = compactor.run_once().expect("survey must succeed");
    assert!(report.is_empty(), "below-threshold table must be skipped");
    assert_eq!(
        table.memory_stats().dead_rows,
        before.dead_rows,
        "a skipped table must not be rewritten"
    );

    // A table with nothing stored is never eligible either.
    sql(&session, "CREATE TABLE empty (k BIGINT, v BIGINT)");
    compactor.register("empty", table_handle(&session, "empty"));
    assert!(compactor.run_once().expect("survey").is_empty());
}

#[test]
fn compact_unknown_table_is_a_typed_error() {
    let _guard = serial();
    let (session, _compactor) = setup();
    seed_table(&session, "known", 4);

    let err = session
        .sql("COMPACT no_such_table")
        .err()
        .expect("COMPACT of an unknown table must fail")
        .to_string();
    assert!(
        err.contains("no_such_table"),
        "error must name the table: {err}"
    );

    // The named form still works for registered-but-uncataloged handles.
    let (other, compactor) = setup();
    seed_table(&other, "side", 4);
    sql(&other, "UPDATE side SET v = v + 1");
    let side = table_handle(&other, "side");
    other.drop_table("side").expect("drop");
    compactor.register("side", Arc::clone(&side));
    let report = rows_of(&sql(&other, "COMPACT side"));
    assert_eq!(report.len(), 1);
    assert_eq!(side.memory_stats().dead_rows, 0);
}

#[test]
fn compact_all_walks_every_catalog_table() {
    let _guard = serial();
    let (session, _compactor) = setup();
    seed_table(&session, "a", 8);
    seed_table(&session, "b", 8);
    sql(&session, "UPDATE a SET v = v + 1");
    sql(&session, "UPDATE b SET v = v + 1");

    let report = rows_of(&sql(&session, "COMPACT"));
    let tables: Vec<&Value> = report.iter().map(|r| &r[0]).collect();
    assert_eq!(
        tables,
        [&Value::Utf8("a".to_string()), &Value::Utf8("b".to_string())]
    );
    assert_eq!(table_handle(&session, "a").memory_stats().dead_rows, 0);
    assert_eq!(table_handle(&session, "b").memory_stats().dead_rows, 0);
}

#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;
    use idf_compact::failpoints as fp;
    use idf_fail::{FailConfig, FailGuard};

    #[test]
    fn registered_sites_cover_select_rewrite_swap() {
        assert_eq!(
            fp::SITES,
            ["compact::select", "compact::rewrite", "compact::swap"]
        );
    }

    /// A fault at any compaction site fails the statement, changes no
    /// answers, and a clean retry reclaims everything.
    #[test]
    fn faults_abort_cleanly_and_retry_succeeds() {
        let _guard = serial();
        for site in [fp::COMPACT_REWRITE, fp::COMPACT_SWAP] {
            let (session, _compactor) = setup();
            seed_table(&session, "t", 32);
            sql(&session, "UPDATE t SET v = v + 1");
            let table = table_handle(&session, "t");
            let dead_before = table.memory_stats().dead_rows;
            assert!(dead_before > 0);
            let answer = rows_of(&sql(&session, "SELECT k, v FROM t"));

            {
                let _fault = FailGuard::new(site, FailConfig::error("injected"));
                let err = session
                    .sql("COMPACT t")
                    .err()
                    .unwrap_or_else(|| panic!("{site}: fault must fail COMPACT"))
                    .to_string();
                assert!(err.contains("injected"), "{site}: {err}");
            }
            assert_eq!(
                table.memory_stats().dead_rows,
                dead_before,
                "{site}: aborted rewrite must leave state unchanged"
            );
            assert_eq!(
                answer,
                rows_of(&sql(&session, "SELECT k, v FROM t")),
                "{site}: aborted rewrite must not change answers"
            );

            // Clean retry reclaims everything the fault blocked.
            let report = rows_of(&sql(&session, "COMPACT t"));
            assert_eq!(report.len(), 1, "{site}: retry must succeed");
            assert_eq!(table.memory_stats().dead_rows, 0);
            assert_eq!(answer, rows_of(&sql(&session, "SELECT k, v FROM t")));
        }
    }

    /// The background worker survives injected faults: failed cycles are
    /// counted, and once the fault clears it reclaims as usual.
    #[test]
    fn background_worker_outlives_injected_faults() {
        let _guard = serial();
        let session = Session::new();
        install_indexed_ddl(&session, IndexConfig::default());
        let compactor = install(
            &session,
            CompactConfig {
                interval: Duration::from_millis(5),
                min_dead_rows: 8,
                min_dead_ratio: 0.1,
                ..CompactConfig::default()
            },
        );
        seed_table(&session, "t", 32);
        sql(&session, "UPDATE t SET v = v + 1");
        let table = table_handle(&session, "t");
        compactor.register("t", Arc::clone(&table));

        let failures_before = idf_obs::global().compaction_failures.get();
        idf_fail::configure(fp::COMPACT_SELECT, FailConfig::error("injected").times(3));
        compactor.start();

        let deadline = Instant::now() + Duration::from_secs(10);
        while table.memory_stats().dead_rows > 0 {
            assert!(
                Instant::now() < deadline,
                "worker never recovered from faults"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        compactor.stop();
        idf_fail::reset();

        assert!(
            idf_obs::global().compaction_failures.get() >= failures_before + 3,
            "each injected fault must be counted"
        );
    }

    /// `run_once` surfaces a select-site fault as a typed error without
    /// touching any table.
    #[test]
    fn select_fault_fails_survey_without_rewriting() {
        let _guard = serial();
        let (session, compactor) = setup();
        seed_table(&session, "t", 16);
        sql(&session, "UPDATE t SET v = v + 1");
        let table = table_handle(&session, "t");
        let dead_before = table.memory_stats().dead_rows;
        compactor.register("t", Arc::clone(&table));

        let _fault = FailGuard::new(fp::COMPACT_SELECT, FailConfig::error("injected"));
        let err = compactor
            .run_once()
            .expect_err("select fault must fail the survey")
            .to_string();
        assert!(err.contains("injected"), "{err}");
        assert_eq!(table.memory_stats().dead_rows, dead_before);
    }
}
