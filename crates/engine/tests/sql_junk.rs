//! The SQL front end must never panic: any junk input — truncated
//! queries, mangled bytes, pathological nesting, multi-byte characters in
//! odd places — produces either a plan or a typed error. Each candidate
//! runs under `catch_unwind` so one panic fails the test with the
//! offending input instead of aborting the suite.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use idf_engine::prelude::*;

fn session() -> Session {
    let s = Session::new();
    let schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("age", DataType::Int64),
    ]));
    let rows: Vec<Vec<Value>> = (0..10)
        .map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(format!("p{i}")),
                Value::Int64(20 + i),
            ]
        })
        .collect();
    let chunk = Chunk::from_rows(&schema, &rows).unwrap();
    s.register_table(
        "t",
        Arc::new(MemTable::from_chunk_partitioned(schema, chunk, 2).unwrap()),
    );
    s
}

/// `session.sql(query)` must return, not panic. The result (Ok or Err)
/// is irrelevant here.
fn assert_no_panic(s: &Session, query: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = s.sql(query);
    }));
    assert!(result.is_ok(), "sql() panicked on input: {query:?}");
}

const SEEDS: &[&str] = &[
    "SELECT id, name FROM t WHERE id = 1",
    "SELECT * FROM t WHERE name LIKE 'p%' ORDER BY age DESC LIMIT 3",
    "SELECT age, count(*) FROM t GROUP BY age HAVING count(*) > 1",
    "SELECT a.id FROM t a JOIN t b ON a.id = b.age",
    "SELECT x FROM (SELECT id AS x FROM t) sub WHERE x IN (1, 2, 3)",
    "SELECT CAST(id AS DOUBLE) FROM t WHERE id BETWEEN 1 AND 5",
    "SELECT id FROM t WHERE name = 'it''s -- tricky'",
];

#[test]
fn truncated_queries_never_panic() {
    let s = session();
    for seed in SEEDS {
        for (end, _) in seed.char_indices() {
            assert_no_panic(&s, &seed[..end]);
        }
    }
}

#[test]
fn mangled_queries_never_panic() {
    let s = session();
    let junk = ['\'', '(', ')', '.', '-', '%', 'é', '\u{0}', '🔥', '\\'];
    for seed in SEEDS {
        for pos in 0..seed.chars().count() {
            for j in junk {
                // Replace the pos-th character with a junk character.
                let mangled: String = seed
                    .chars()
                    .enumerate()
                    .map(|(i, c)| if i == pos { j } else { c })
                    .collect();
                assert_no_panic(&s, &mangled);
            }
        }
    }
}

#[test]
fn pathological_inputs_never_panic() {
    let s = session();
    let cases = [
        String::new(),
        " \t\n ".to_string(),
        "SELECT".to_string(),
        format!(
            "SELECT {}1{} FROM t",
            "(".repeat(10_000),
            ")".repeat(10_000)
        ),
        format!("SELECT id FROM t WHERE {} id = 1", "NOT ".repeat(10_000)),
        format!("SELECT {}1 FROM t", "-".repeat(10_000)),
        format!("SELECT id FROM t WHERE id IN ({}1)", "1, ".repeat(5_000)),
        "SELECT é FROM tablé WHERE é = 'ünïcödé'".to_string(),
        "SELECT 날짜 FROM t".to_string(),
        "SELECT id FROM t WHERE id = 99999999999999999999999999".to_string(),
        "SELECT id FROM t WHERE id = 1e999".to_string(),
        "'".to_string(),
        "''".to_string(),
        "\u{feff}SELECT id FROM t".to_string(),
        "SELECT /*/ id FROM t".to_string(),
        "SELECT id FROM t --".to_string(),
    ];
    for q in &cases {
        assert_no_panic(&s, q);
    }
}

/// Materialized-view DDL goes through its own parse path (`CREATE
/// MATERIALIZED VIEW <name> AS <select>`), so junk behind — and inside —
/// the prefix must come back as a typed error, never a panic. Without the
/// views subsystem installed the well-formed forms are typed
/// `Unsupported` errors, which is exactly what this suite wants: the
/// whole parse happens before the dispatch.
#[test]
fn materialized_view_prefixed_junk_never_panics() {
    let s = session();
    let prefixes = [
        "CREATE MATERIALIZED VIEW v AS ",
        "CREATE MATERIALIZED VIEW ",
        "DROP MATERIALIZED VIEW ",
        "REFRESH MATERIALIZED VIEW ",
    ];
    for seed in SEEDS {
        for prefix in prefixes {
            let full = format!("{prefix}{seed}");
            assert_no_panic(&s, &full);
            for (end, _) in full.char_indices().step_by(3) {
                assert_no_panic(&s, &full[..end]);
            }
        }
    }
    let cases = [
        "CREATE MATERIALIZED".to_string(),
        "CREATE MATERIALIZED VIEW".to_string(),
        "CREATE MATERIALIZED VIEW v".to_string(),
        "CREATE MATERIALIZED VIEW v AS".to_string(),
        "CREATE MATERIALIZED VIEW v AS SELECT".to_string(),
        "CREATE MATERIALIZED VIEW 🔥 AS SELECT id FROM t".to_string(),
        "CREATE MATERIALIZED VIEW v AS DROP MATERIALIZED VIEW v".to_string(),
        "CREATE MATERIALIZED VIEW v AS EXPLAIN SELECT id FROM t".to_string(),
        "DROP MATERIALIZED VIEW v extra tokens".to_string(),
        "REFRESH MATERIALIZED VIEW ''".to_string(),
        format!(
            "CREATE MATERIALIZED VIEW v AS SELECT {}1{} FROM t",
            "(".repeat(10_000),
            ")".repeat(10_000)
        ),
    ];
    for q in &cases {
        assert_no_panic(&s, q);
    }
}

/// EXPLAIN runs the planner (and for ANALYZE, the executor) at planning
/// time — junk behind the EXPLAIN prefix must still come back as a typed
/// error, never a panic.
#[test]
fn explain_prefixed_junk_never_panics() {
    let s = session();
    for seed in SEEDS {
        for prefix in ["EXPLAIN ", "EXPLAIN ANALYZE "] {
            assert_no_panic(&s, &format!("{prefix}{seed}"));
            // Truncations of the prefixed query, covering cut-offs both
            // inside the EXPLAIN keywords and inside the payload.
            let full = format!("{prefix}{seed}");
            for (end, _) in full.char_indices().step_by(3) {
                assert_no_panic(&s, &full[..end]);
            }
        }
    }
}

#[test]
fn explain_of_broken_queries_is_typed_error() {
    let s = session();
    let cases = [
        "EXPLAIN",
        "EXPLAIN ANALYZE",
        "EXPLAIN SELEC id FROM t",
        "EXPLAIN ANALYZE SELECT FROM WHERE",
        "EXPLAIN SELECT id FROM no_such_table",
        "EXPLAIN ANALYZE SELECT id FROM t WHERE",
        "EXPLAIN SELECT id FROM t; DROP TABLE t",
        "EXPLAIN 🔥",
    ];
    for q in cases {
        let err = match s.sql(q) {
            Err(e) => e,
            Ok(_) => panic!("expected error for {q:?}"),
        };
        // Typed error, and displayable without panicking.
        let _ = err.to_string();
    }
}

#[test]
fn nested_explain_is_rejected_not_planned() {
    let s = session();
    for q in [
        "EXPLAIN EXPLAIN SELECT id FROM t",
        "EXPLAIN ANALYZE EXPLAIN SELECT id FROM t",
        "EXPLAIN EXPLAIN ANALYZE SELECT id FROM t",
    ] {
        let err = match s.sql(q) {
            Err(e) => e,
            Ok(_) => panic!("expected error for {q:?}"),
        };
        assert!(
            err.to_string().to_lowercase().contains("explain"),
            "error for {q:?} should mention EXPLAIN, got: {err}"
        );
    }
}

/// Well-formed EXPLAIN still works end to end (guards against the junk
/// tests passing because EXPLAIN is broken outright).
#[test]
fn explain_happy_path_produces_plan_rows() {
    let s = session();
    let out = s
        .sql("EXPLAIN SELECT id FROM t WHERE id = 1")
        .unwrap()
        .collect()
        .unwrap();
    assert!(!out.is_empty(), "EXPLAIN returned no plan rows");
    let all: String = (0..out.len())
        .map(|r| format!("{:?}", out.value_at(0, r)))
        .collect();
    assert!(all.contains("Logical") || all.contains("Physical"));
}

/// DML statements (`UPDATE`/`DELETE`/`COMPACT`) go through their own
/// parse paths and then execute a bound SELECT against the target table —
/// junk behind, inside, and instead of the payload must come back as a
/// typed error, never a panic. The registered table is a read-only
/// MemTable, so even well-formed DML returns a typed `Unsupported` after
/// the full parse-bind-execute of the matching phase.
#[test]
fn dml_prefixed_junk_never_panics() {
    let s = session();
    let prefixes = [
        "UPDATE t SET id = ",
        "UPDATE t SET ",
        "UPDATE ",
        "DELETE FROM t WHERE ",
        "DELETE FROM ",
        "COMPACT ",
    ];
    for seed in SEEDS {
        for prefix in prefixes {
            let full = format!("{prefix}{seed}");
            assert_no_panic(&s, &full);
            for (end, _) in full.char_indices().step_by(3) {
                assert_no_panic(&s, &full[..end]);
            }
        }
    }
    let cases = [
        "UPDATE".to_string(),
        "UPDATE t".to_string(),
        "UPDATE t SET".to_string(),
        "UPDATE t SET id".to_string(),
        "UPDATE t SET id =".to_string(),
        "UPDATE t SET id = 1,".to_string(),
        "UPDATE t SET id = 1 WHERE".to_string(),
        "UPDATE t SET 🔥 = 1".to_string(),
        "UPDATE t SET id = id WHERE name LIKE 5".to_string(),
        "UPDATE no_such SET id = 1".to_string(),
        "UPDATE t SET nope = 1".to_string(),
        "UPDATE t SET id = 1, id = 2".to_string(),
        "UPDATE t SET id = (SELECT id FROM t)".to_string(),
        "DELETE".to_string(),
        "DELETE FROM".to_string(),
        "DELETE t".to_string(),
        "DELETE FROM t WHERE".to_string(),
        "DELETE FROM t WHERE id = ".to_string(),
        "DELETE FROM t extra tokens".to_string(),
        "DELETE FROM no_such".to_string(),
        "COMPACT a b".to_string(),
        "COMPACT ''".to_string(),
        "COMPACT 🔥".to_string(),
        "COMPACT no_such_table".to_string(),
        format!(
            "UPDATE t SET id = {}1{}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        ),
        format!("DELETE FROM t WHERE {} id = 1", "NOT ".repeat(10_000)),
        format!("UPDATE t SET id = {}1", "-".repeat(10_000)),
    ];
    for q in &cases {
        assert_no_panic(&s, q);
    }
}

/// Well-formed DML against the read-only table comes back as a typed,
/// displayable error (guards against the junk tests passing because DML
/// is broken outright — the parse and bind must succeed first).
#[test]
fn dml_on_read_only_table_is_typed_error() {
    let s = session();
    for q in [
        "UPDATE t SET age = age + 1 WHERE id = 1",
        "DELETE FROM t WHERE id = 1",
        "COMPACT t",
        "COMPACT",
    ] {
        let err = match s.sql(q) {
            Err(e) => e,
            Ok(_) => panic!("expected error for {q:?}"),
        };
        let _ = err.to_string();
    }
}
