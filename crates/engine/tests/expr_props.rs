//! Randomized tests: the vectorized expression kernels must agree with
//! a naive scalar interpreter over random chunks, and relational-algebra
//! identities must hold end to end. Seeded generation keeps every case
//! reproducible: a failure message names the seed that replays it.

use std::sync::Arc;

use idf_engine::analyzer::resolve_expr;
use idf_engine::chunk::Chunk;
use idf_engine::expr::{col, lit, BinaryOp, Expr};
use idf_engine::physical::create_physical_expr;
use idf_engine::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Int64),
        Field::new("s", DataType::Utf8),
    ]))
}

fn random_rows(rng: &mut StdRng) -> Vec<Vec<Value>> {
    let int = |rng: &mut StdRng| {
        if rng.gen_bool(0.2) {
            Value::Null
        } else {
            Value::Int64(rng.gen_range(-50..50i64))
        }
    };
    let s = |rng: &mut StdRng| {
        if rng.gen_bool(0.2) {
            Value::Null
        } else {
            let len = rng.gen_range(0..4usize);
            Value::Utf8(
                (0..len)
                    .map(|_| char::from(b'a' + rng.gen_range(0..3u8)))
                    .collect(),
            )
        }
    };
    (0..rng.gen_range(1..60usize))
        .map(|_| vec![int(rng), int(rng), s(rng)])
        .collect()
}

/// Naive scalar three-valued-logic interpreter for the expression subset
/// the generator produces.
fn scalar_eval(e: &Expr, row: &[Value]) -> Value {
    match e {
        Expr::Column(c) => row[c.index.expect("bound")].clone(),
        Expr::Literal(v) => v.clone(),
        Expr::Cast { expr, to } => scalar_eval(expr, row).cast(*to).unwrap_or(Value::Null),
        Expr::Not(i) => match scalar_eval(i, row) {
            Value::Boolean(b) => Value::Boolean(!b),
            _ => Value::Null,
        },
        Expr::IsNull(i) => Value::Boolean(scalar_eval(i, row).is_null()),
        Expr::IsNotNull(i) => Value::Boolean(!scalar_eval(i, row).is_null()),
        Expr::Binary { left, op, right } => {
            let l = scalar_eval(left, row);
            let r = scalar_eval(right, row);
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    let lb = match &l {
                        Value::Boolean(b) => Some(*b),
                        _ => None,
                    };
                    let rb = match &r {
                        Value::Boolean(b) => Some(*b),
                        _ => None,
                    };
                    let out = if *op == BinaryOp::And {
                        match (lb, rb) {
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        }
                    } else {
                        match (lb, rb) {
                            (Some(true), _) | (_, Some(true)) => Some(true),
                            (Some(false), Some(false)) => Some(false),
                            _ => None,
                        }
                    };
                    out.map_or(Value::Null, Value::Boolean)
                }
                _ if l.is_null() || r.is_null() => Value::Null,
                BinaryOp::Eq => Value::Boolean(l == r),
                BinaryOp::NotEq => Value::Boolean(l != r),
                BinaryOp::Lt => Value::Boolean(l < r),
                BinaryOp::LtEq => Value::Boolean(l <= r),
                BinaryOp::Gt => Value::Boolean(l > r),
                BinaryOp::GtEq => Value::Boolean(l >= r),
                arith => {
                    let (Some(x), Some(y)) = (l.as_i64(), r.as_i64()) else {
                        return Value::Null;
                    };
                    let v = match arith {
                        BinaryOp::Plus => x.checked_add(y),
                        BinaryOp::Minus => x.checked_sub(y),
                        BinaryOp::Multiply => x.checked_mul(y),
                        BinaryOp::Divide => x.checked_div(y),
                        BinaryOp::Modulo => x.checked_rem(y),
                        _ => unreachable!(),
                    };
                    v.map_or(Value::Null, Value::Int64)
                }
            }
        }
        other => panic!("generator does not produce {other:?}"),
    }
}

/// Random integer-typed expression over (a, b) — arithmetic only, so
/// every nesting is well typed. `depth` bounds recursion.
fn random_int_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..3) {
            0 => col("a"),
            1 => col("b"),
            _ => lit(rng.gen_range(-20..20i64)),
        };
    }
    let l = random_int_expr(rng, depth - 1);
    let r = random_int_expr(rng, depth - 1);
    match rng.gen_range(0..5) {
        0 => l.add(r),
        1 => l.sub(r),
        2 => l.mul(r),
        3 => l.div(r),
        _ => l.rem(r),
    }
}

/// Random well-typed expression: integer arithmetic optionally capped by
/// a boolean combinator layer.
fn random_expr(rng: &mut StdRng) -> Expr {
    let ie = |rng: &mut StdRng| random_int_expr(rng, 3);
    match rng.gen_range(0..9) {
        0 => ie(rng),
        1 => {
            let (l, r) = (ie(rng), ie(rng));
            l.eq(r)
        }
        2 => {
            let (l, r) = (ie(rng), ie(rng));
            l.not_eq(r)
        }
        3 => {
            let (l, r) = (ie(rng), ie(rng));
            l.lt_eq(r)
        }
        4 => {
            let (a, b, c, d) = (ie(rng), ie(rng), ie(rng), ie(rng));
            a.eq(b).and(c.lt(d))
        }
        5 => {
            let (a, b, c, d) = (ie(rng), ie(rng), ie(rng), ie(rng));
            a.gt(b).or(c.gt_eq(d))
        }
        6 => {
            let (l, r) = (ie(rng), ie(rng));
            l.eq(r).not()
        }
        7 => ie(rng).is_null(),
        _ => ie(rng).is_not_null(),
    }
}

#[test]
fn kernels_agree_with_scalar_interpreter() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0xe49_0000 + seed);
        let rows = random_rows(&mut rng);
        let expr = random_expr(&mut rng);
        let schema = schema();
        let chunk = Chunk::from_rows(&schema, &rows).expect("chunk");
        let bound = resolve_expr(&expr, &schema).expect("analyzable");
        let pe = create_physical_expr(&bound, &schema).expect("compile");
        let out = pe.evaluate(&chunk).expect("evaluate");
        assert_eq!(out.len(), rows.len(), "seed {seed}");
        for (i, row) in rows.iter().enumerate() {
            let expected = scalar_eval(&bound, row);
            assert_eq!(
                out.value_at(i),
                expected,
                "seed {seed}: row {i} of {} under {}",
                rows.len(),
                bound
            );
        }
    }
}

#[test]
fn filter_then_count_equals_scalar_count() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xf117_0000 + seed);
        let rows = random_rows(&mut rng);
        let threshold = rng.gen_range(-50..50i64);
        let session = Session::new();
        let df = session.create_dataframe(schema(), rows.clone());
        let n = df
            .filter(col("a").gt(lit(threshold)))
            .expect("filter")
            .count()
            .expect("count");
        let expected = rows
            .iter()
            .filter(|r| matches!(r[0], Value::Int64(v) if v > threshold))
            .count();
        assert_eq!(n, expected, "seed {seed}, threshold {threshold}");
    }
}

#[test]
fn union_is_additive_and_sort_is_total() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x5047_0000 + seed);
        let rows = random_rows(&mut rng);
        let session = Session::new();
        let df = session.create_dataframe(schema(), rows.clone());
        let doubled = df.union(&df).expect("union");
        assert_eq!(
            doubled.count().expect("count"),
            rows.len() * 2,
            "seed {seed}"
        );
        let sorted = doubled
            .sort(vec![SortExpr::asc(col("a")), SortExpr::asc(col("s"))])
            .expect("sort")
            .collect()
            .expect("collect");
        for i in 1..sorted.len() {
            let prev = (sorted.value_at(0, i - 1), sorted.value_at(2, i - 1));
            let cur = (sorted.value_at(0, i), sorted.value_at(2, i));
            assert!(
                prev <= cur,
                "seed {seed}: row {i} out of order: {prev:?} > {cur:?}"
            );
        }
    }
}
