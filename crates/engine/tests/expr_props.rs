//! Property-based tests: the vectorized expression kernels must agree with
//! a naive scalar interpreter over random chunks, and relational-algebra
//! identities must hold end to end.

use std::sync::Arc;

use idf_engine::analyzer::resolve_expr;
use idf_engine::chunk::Chunk;
use idf_engine::expr::{col, lit, BinaryOp, Expr};
use idf_engine::physical::create_physical_expr;
use idf_engine::prelude::*;
use proptest::prelude::*;

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Int64),
        Field::new("s", DataType::Utf8),
    ]))
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(
        (
            prop_oneof![1 => Just(Value::Null), 4 => (-50i64..50).prop_map(Value::Int64)],
            prop_oneof![1 => Just(Value::Null), 4 => (-50i64..50).prop_map(Value::Int64)],
            prop_oneof![1 => Just(Value::Null), 4 => "[a-c]{0,3}".prop_map(Value::Utf8)],
        )
            .prop_map(|(a, b, s)| vec![a, b, s]),
        1..60,
    )
}

/// Naive scalar three-valued-logic interpreter for the expression subset
/// the generator produces.
fn scalar_eval(e: &Expr, row: &[Value]) -> Value {
    match e {
        Expr::Column(c) => row[c.index.expect("bound")].clone(),
        Expr::Literal(v) => v.clone(),
        Expr::Cast { expr, to } => {
            scalar_eval(expr, row).cast(*to).unwrap_or(Value::Null)
        }
        Expr::Not(i) => match scalar_eval(i, row) {
            Value::Boolean(b) => Value::Boolean(!b),
            _ => Value::Null,
        },
        Expr::IsNull(i) => Value::Boolean(scalar_eval(i, row).is_null()),
        Expr::IsNotNull(i) => Value::Boolean(!scalar_eval(i, row).is_null()),
        Expr::Binary { left, op, right } => {
            let l = scalar_eval(left, row);
            let r = scalar_eval(right, row);
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    let lb = match &l {
                        Value::Boolean(b) => Some(*b),
                        _ => None,
                    };
                    let rb = match &r {
                        Value::Boolean(b) => Some(*b),
                        _ => None,
                    };
                    let out = if *op == BinaryOp::And {
                        match (lb, rb) {
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        }
                    } else {
                        match (lb, rb) {
                            (Some(true), _) | (_, Some(true)) => Some(true),
                            (Some(false), Some(false)) => Some(false),
                            _ => None,
                        }
                    };
                    out.map_or(Value::Null, Value::Boolean)
                }
                _ if l.is_null() || r.is_null() => Value::Null,
                BinaryOp::Eq => Value::Boolean(l == r),
                BinaryOp::NotEq => Value::Boolean(l != r),
                BinaryOp::Lt => Value::Boolean(l < r),
                BinaryOp::LtEq => Value::Boolean(l <= r),
                BinaryOp::Gt => Value::Boolean(l > r),
                BinaryOp::GtEq => Value::Boolean(l >= r),
                arith => {
                    let (Some(x), Some(y)) = (l.as_i64(), r.as_i64()) else {
                        return Value::Null;
                    };
                    let v = match arith {
                        BinaryOp::Plus => x.checked_add(y),
                        BinaryOp::Minus => x.checked_sub(y),
                        BinaryOp::Multiply => x.checked_mul(y),
                        BinaryOp::Divide => x.checked_div(y),
                        BinaryOp::Modulo => x.checked_rem(y),
                        _ => unreachable!(),
                    };
                    v.map_or(Value::Null, Value::Int64)
                }
            }
        }
        other => panic!("generator does not produce {other:?}"),
    }
}

/// Random integer-typed expressions over (a, b) — arithmetic only, so
/// every nesting is well typed.
fn int_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(col("a")),
        Just(col("b")),
        (-20i64..20).prop_map(lit),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.add(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.sub(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.mul(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.div(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.rem(r)),
        ]
    })
}

/// Random well-typed expressions: integer arithmetic optionally capped by
/// a boolean combinator layer.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let ie = int_expr_strategy;
    prop_oneof![
        ie(),
        (ie(), ie()).prop_map(|(l, r)| l.eq(r)),
        (ie(), ie()).prop_map(|(l, r)| l.not_eq(r)),
        (ie(), ie()).prop_map(|(l, r)| l.lt_eq(r)),
        (ie(), ie(), ie(), ie()).prop_map(|(a, b, c, d)| a.eq(b).and(c.lt(d))),
        (ie(), ie(), ie(), ie()).prop_map(|(a, b, c, d)| a.gt(b).or(c.gt_eq(d))),
        (ie(), ie()).prop_map(|(l, r)| l.eq(r).not()),
        ie().prop_map(|e| e.is_null()),
        ie().prop_map(|e| e.is_not_null()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn kernels_agree_with_scalar_interpreter(
        rows in rows_strategy(),
        expr in expr_strategy(),
    ) {
        let schema = schema();
        let chunk = Chunk::from_rows(&schema, &rows).expect("chunk");
        let bound = resolve_expr(&expr, &schema).expect("analyzable");
        let pe = create_physical_expr(&bound, &schema).expect("compile");
        let out = pe.evaluate(&chunk).expect("evaluate");
        prop_assert_eq!(out.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            let expected = scalar_eval(&bound, row);
            prop_assert_eq!(
                out.value_at(i),
                expected,
                "row {} of {} under {}",
                i,
                rows.len(),
                bound
            );
        }
    }

    #[test]
    fn filter_then_count_equals_scalar_count(
        rows in rows_strategy(),
        threshold in -50i64..50,
    ) {
        let session = Session::new();
        let df = session.create_dataframe(schema(), rows.clone());
        let n = df
            .filter(col("a").gt(lit(threshold)))
            .expect("filter")
            .count()
            .expect("count");
        let expected = rows
            .iter()
            .filter(|r| matches!(r[0], Value::Int64(v) if v > threshold))
            .count();
        prop_assert_eq!(n, expected);
    }

    #[test]
    fn union_is_additive_and_sort_is_total(rows in rows_strategy()) {
        let session = Session::new();
        let df = session.create_dataframe(schema(), rows.clone());
        let doubled = df.union(&df).expect("union");
        prop_assert_eq!(doubled.count().expect("count"), rows.len() * 2);
        let sorted = doubled
            .sort(vec![SortExpr::asc(col("a")), SortExpr::asc(col("s"))])
            .expect("sort")
            .collect()
            .expect("collect");
        for i in 1..sorted.len() {
            let prev = (sorted.value_at(0, i - 1), sorted.value_at(2, i - 1));
            let cur = (sorted.value_at(0, i), sorted.value_at(2, i));
            prop_assert!(prev <= cur, "row {i} out of order: {prev:?} > {cur:?}");
        }
    }
}
