//! End-to-end SQL tests over the full stack: parse → bind → analyze →
//! optimize → plan → parallel execution.

use std::sync::Arc;

use idf_engine::prelude::*;

fn session() -> Session {
    let s = Session::new();
    let person_schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("city", DataType::Utf8),
        Field::new("age", DataType::Int64),
    ]));
    let person_rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(format!("p{i}")),
                Value::Utf8(["ams", "sfo", "nyc"][(i % 3) as usize].to_string()),
                Value::Int64(18 + i % 60),
            ]
        })
        .collect();
    let chunk = Chunk::from_rows(&person_schema, &person_rows).unwrap();
    s.register_table(
        "person",
        Arc::new(MemTable::from_chunk_partitioned(person_schema, chunk, 4).unwrap()),
    );

    let knows_schema = Arc::new(Schema::new(vec![
        Field::new("src", DataType::Int64),
        Field::new("dst", DataType::Int64),
        Field::new("since", DataType::Int64),
    ]));
    let knows_rows: Vec<Vec<Value>> = (0..5000)
        .map(|i| {
            vec![
                Value::Int64(i % 1000),
                Value::Int64((i * 7 + 3) % 1000),
                Value::Int64(2000 + i % 20),
            ]
        })
        .collect();
    let chunk = Chunk::from_rows(&knows_schema, &knows_rows).unwrap();
    s.register_table(
        "knows",
        Arc::new(MemTable::from_chunk_partitioned(knows_schema, chunk, 4).unwrap()),
    );
    s
}

#[test]
fn point_select() {
    let s = session();
    let out = s
        .sql("SELECT name FROM person WHERE id = 42")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.value_at(0, 0), Value::Utf8("p42".into()));
}

#[test]
fn select_star_with_limit() {
    let s = session();
    let out = s
        .sql("SELECT * FROM person LIMIT 5")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 5);
    assert_eq!(out.num_columns(), 4);
}

#[test]
fn range_filter_count() {
    let s = session();
    let out = s
        .sql("SELECT count(*) AS n FROM person WHERE age >= 18 AND age < 28")
        .unwrap()
        .collect()
        .unwrap();
    let Value::Int64(n) = out.value_at(0, 0) else {
        panic!()
    };
    // ages cycle 18..78, so 10 of every 60.
    assert_eq!(n, (0..1000).filter(|i| (18 + i % 60) < 28).count() as i64);
}

#[test]
fn join_two_tables() {
    let s = session();
    let out = s
        .sql(
            "SELECT p.name, k.dst FROM person p JOIN knows k ON p.id = k.src \
             WHERE p.id = 7",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 5, "person 7 has 5 outgoing edges");
    for r in 0..out.len() {
        assert_eq!(out.value_at(0, r), Value::Utf8("p7".into()));
    }
}

#[test]
fn group_by_having_order() {
    let s = session();
    let out = s
        .sql(
            "SELECT city, count(*) AS n, avg(age) AS a FROM person \
             GROUP BY city HAVING count(*) > 100 ORDER BY city",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 3);
    assert_eq!(out.value_at(0, 0), Value::Utf8("ams".into()));
    let Value::Int64(n) = out.value_at(1, 0) else {
        panic!()
    };
    assert_eq!(n, 334); // ceil(1000/3)
}

#[test]
fn order_by_desc_limit_topk() {
    let s = session();
    let out = s
        .sql("SELECT id FROM person ORDER BY id DESC LIMIT 3")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 3);
    assert_eq!(out.value_at(0, 0), Value::Int64(999));
    assert_eq!(out.value_at(0, 2), Value::Int64(997));
}

#[test]
fn left_join_preserves_unmatched() {
    let s = session();
    // dst values only go up to 999; join on a filtered right side.
    let out = s
        .sql(
            "SELECT p.id, k.src FROM person p \
             LEFT JOIN (SELECT src FROM knows WHERE src < 10) k ON p.id = k.src \
             WHERE p.id < 20",
        )
        .unwrap()
        .collect()
        .unwrap();
    // ids 0..10 match 5 edges each → 50 rows; ids 10..20 unmatched → 10 rows.
    assert_eq!(out.len(), 60);
    let nulls = (0..out.len())
        .filter(|&r| out.value_at(1, r) == Value::Null)
        .count();
    assert_eq!(nulls, 10);
}

#[test]
fn subquery_in_from() {
    let s = session();
    let out = s
        .sql(
            "SELECT city, n FROM \
             (SELECT city, count(*) AS n FROM person GROUP BY city) sub \
             WHERE n > 300 ORDER BY n DESC",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 3);
}

#[test]
fn self_join_with_aliases() {
    let s = session();
    let out = s
        .sql(
            "SELECT a.name, b.name FROM person a JOIN person b ON a.id = b.id \
             WHERE a.id = 1",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 1);
}

#[test]
fn arithmetic_and_aliases_in_select() {
    let s = session();
    let out = s
        .sql("SELECT id * 2 + 1 AS odd FROM person WHERE id = 10")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(21));
}

#[test]
fn aggregate_expression_in_select() {
    let s = session();
    let out = s
        .sql("SELECT count(*) * 2 AS double_n FROM person")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(2000));
}

#[test]
fn error_cases() {
    let s = session();
    assert!(s.sql("SELECT nope FROM person").is_err());
    assert!(s.sql("SELECT * FROM missing_table").is_err());
    assert!(s.sql("SELECT city FROM person GROUP BY age").is_err());
    assert!(s
        .sql("SELECT count(*) FROM person WHERE count(*) > 1")
        .is_err());
    assert!(s
        .sql("SELECT * FROM person JOIN knows ON person.id < knows.src")
        .is_err());
}

#[test]
fn explain_pushes_filters_and_prunes_columns() {
    let s = session();
    let df = s.sql("SELECT name FROM person WHERE age > 70").unwrap();
    let text = df.explain().unwrap();
    // Pruning should narrow the scan to name+age.
    assert!(text.contains("projection="), "{text}");
}

#[test]
fn is_null_and_boolean_literals() {
    let s = session();
    let out = s
        .sql("SELECT count(*) FROM person WHERE name IS NOT NULL AND TRUE")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(1000));
}

#[test]
fn cast_in_sql() {
    let s = session();
    let out = s
        .sql("SELECT CAST(id AS DOUBLE) / 4 AS q FROM person WHERE id = 1")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Float64(0.25));
}

#[test]
fn distinct_deduplicates() {
    let s = session();
    let out = s
        .sql("SELECT DISTINCT city FROM person")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 3);
    let n = s
        .sql("SELECT count(*) FROM (SELECT DISTINCT city, age FROM person) d")
        .unwrap()
        .collect()
        .unwrap();
    // city = i%3 is determined by age = 18 + i%60 (3 divides 60), so the
    // distinct (city, age) pairs collapse to the 60 distinct ages.
    assert_eq!(n.value_at(0, 0), Value::Int64(60));
}

#[test]
fn in_list_predicate() {
    let s = session();
    let out = s
        .sql("SELECT count(*) FROM person WHERE city IN ('ams', 'nyc')")
        .unwrap()
        .collect()
        .unwrap();
    let Value::Int64(n) = out.value_at(0, 0) else {
        panic!()
    };
    assert_eq!(n, (0..1000).filter(|i| i % 3 != 1).count() as i64);
    let none = s
        .sql("SELECT count(*) FROM person WHERE id NOT IN (1, 2, 3)")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(none.value_at(0, 0), Value::Int64(997));
}

#[test]
fn like_patterns() {
    let s = session();
    // names are p0..p999; p1% matches p1, p1x, p1xx.
    let out = s
        .sql("SELECT count(*) FROM person WHERE name LIKE 'p1%'")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(111));
    let underscore = s
        .sql("SELECT count(*) FROM person WHERE name LIKE 'p_'")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(underscore.value_at(0, 0), Value::Int64(10));
    let not_like = s
        .sql("SELECT count(*) FROM person WHERE name NOT LIKE 'p%'")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(not_like.value_at(0, 0), Value::Int64(0));
}

#[test]
fn between_predicate() {
    let s = session();
    let out = s
        .sql("SELECT count(*) FROM person WHERE id BETWEEN 10 AND 19")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(10));
    let out = s
        .sql("SELECT count(*) FROM person WHERE id NOT BETWEEN 10 AND 989")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(20));
}

#[test]
fn scalar_functions() {
    let s = session();
    let out = s
        .sql(
            "SELECT upper(city) AS u, lower(name) AS l, length(name) AS n, \
                    abs(id - 999) AS a, coalesce(name, 'x') AS c \
             FROM person WHERE id = 1",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Utf8("SFO".into()));
    assert_eq!(out.value_at(1, 0), Value::Utf8("p1".into()));
    assert_eq!(out.value_at(2, 0), Value::Int64(2));
    assert_eq!(out.value_at(3, 0), Value::Int64(998));
    assert_eq!(out.value_at(4, 0), Value::Utf8("p1".into()));
}

#[test]
fn scalar_function_type_errors() {
    let s = session();
    assert!(s.sql("SELECT upper(id) FROM person").is_err());
    assert!(s.sql("SELECT abs(name) FROM person").is_err());
    assert!(s.sql("SELECT length() FROM person").is_err());
    assert!(
        s.sql("SELECT id IN ('x') FROM person").is_err(),
        "IN type mismatch"
    );
    assert!(
        s.sql("SELECT id LIKE 'x' FROM person").is_err(),
        "LIKE over int"
    );
}

#[test]
fn scalar_functions_in_predicates_and_groups() {
    let s = session();
    let out = s
        .sql(
            "SELECT upper(city) AS u, count(*) AS n FROM person \
             WHERE length(name) >= 2 GROUP BY upper(city) ORDER BY u",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 3);
    assert_eq!(out.value_at(0, 0), Value::Utf8("AMS".into()));
}

#[test]
fn explain_analyze_reports_operator_metrics() {
    let s = session();
    let report = s
        .sql(
            "SELECT city, count(*) AS n FROM person WHERE age > 30 \
             GROUP BY city ORDER BY n DESC",
        )
        .unwrap()
        .explain_analyze()
        .unwrap();
    assert!(report.contains("== Metrics"), "{report}");
    assert!(report.contains("HashAggregate"), "{report}");
    assert!(report.contains("SourceScan"), "{report}");
    assert!(report.contains("Filter"), "{report}");
}

#[test]
fn ddl_insert_select_roundtrip() {
    let s = session();
    s.sql("CREATE TABLE events (id BIGINT, kind VARCHAR, score DOUBLE, at TIMESTAMP)")
        .unwrap()
        .collect()
        .unwrap();
    let n = s
        .sql("INSERT INTO events VALUES (1, 'click', 0.5, 1000), (2, 'view', 2, 2000), (3, NULL, NULL, 3000)")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(n.value_at(0, 0), Value::Int64(3));
    let out = s
        .sql("SELECT id, kind FROM events WHERE at >= 2000 ORDER BY id")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.value_at(0, 0), Value::Int64(2));
    // Created tables join against pre-registered ones.
    let joined = s
        .sql("SELECT p.name FROM events e JOIN person p ON e.id = p.id")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(joined.len(), 3);
    // Duplicate create is a typed error; drop removes the table.
    let err = s
        .sql("CREATE TABLE events (id BIGINT)")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::TableAlreadyExists(_)), "{err:?}");
    s.sql("DROP TABLE events").unwrap().collect().unwrap();
    assert!(s.sql("SELECT * FROM events").is_err());
    assert!(s.sql("DROP TABLE events").is_err());
    // INSERT into a read-only source and type errors are rejected.
    let err = s
        .sql("INSERT INTO person VALUES (1, 'x', 'ams', 30)")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "{err:?}");
}

#[test]
fn insert_rejects_mistyped_rows() {
    let s = Session::new();
    s.sql("CREATE TABLE t (id BIGINT, name VARCHAR)")
        .unwrap()
        .collect()
        .unwrap();
    let err = s.sql("INSERT INTO t VALUES (1)").map(|_| ()).unwrap_err();
    assert!(matches!(err, EngineError::Type(_)), "{err:?}");
    let err = s
        .sql("INSERT INTO t VALUES ('oops', 'x')")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::Type(_)), "{err:?}");
    let err = s
        .sql("INSERT INTO t VALUES (1 + id, 'x')")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::Sql(_)), "{err:?}");
    // Failed inserts leave the table unchanged.
    let out = s.sql("SELECT count(*) FROM t").unwrap().collect().unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(0));
    let err = s
        .sql("CREATE TABLE bad (id WIBBLE)")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::Sql(_)), "{err:?}");
}

#[test]
fn update_and_delete_end_to_end() {
    let s = Session::new();
    s.sql("CREATE TABLE accounts (id BIGINT, owner VARCHAR, balance BIGINT)")
        .unwrap()
        .collect()
        .unwrap();
    s.sql("INSERT INTO accounts VALUES (1, 'ada', 100), (2, 'bob', 200), (3, 'cy', 300)")
        .unwrap()
        .collect()
        .unwrap();
    // UPDATE with an expression over the row's current columns.
    let out = s
        .sql("UPDATE accounts SET balance = balance + 50 WHERE id <= 2")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(2), "rows affected");
    let out = s
        .sql("SELECT id, balance FROM accounts ORDER BY id")
        .unwrap()
        .collect()
        .unwrap();
    let got: Vec<Value> = (0..3).map(|r| out.value_at(1, r)).collect();
    assert_eq!(got, [150i64, 250, 300].map(Value::Int64).to_vec());
    // Multi-column SET.
    s.sql("UPDATE accounts SET owner = 'eve', balance = 0 WHERE id = 3")
        .unwrap()
        .collect()
        .unwrap();
    let out = s
        .sql("SELECT owner, balance FROM accounts WHERE id = 3")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Utf8("eve".into()));
    assert_eq!(out.value_at(1, 0), Value::Int64(0));
    // DELETE with predicate; rows-affected reported.
    let out = s
        .sql("DELETE FROM accounts WHERE balance = 0")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(1));
    let out = s
        .sql("SELECT count(*) FROM accounts")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(2));
    // WHERE matching nothing affects nothing.
    let out = s
        .sql("DELETE FROM accounts WHERE id = 999")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(0));
    // WHERE-less forms touch every row.
    let out = s
        .sql("UPDATE accounts SET balance = 7")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(2));
    let out = s.sql("DELETE FROM accounts").unwrap().collect().unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(2));
    let out = s
        .sql("SELECT count(*) FROM accounts")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(0));
}

#[test]
fn dml_errors_are_typed() {
    let s = session();
    // person is a read-only MemTable.
    let err = s
        .sql("UPDATE person SET age = 1 WHERE id = 1")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "{err:?}");
    let err = s.sql("DELETE FROM person").map(|_| ()).unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "{err:?}");
    // Unknown table / column / duplicate assignment.
    let err = s.sql("DELETE FROM nope").map(|_| ()).unwrap_err();
    assert!(matches!(err, EngineError::TableNotFound(_)), "{err:?}");
    let err = s.sql("UPDATE person SET nope = 1").map(|_| ()).unwrap_err();
    assert!(matches!(err, EngineError::Sql(_)), "{err:?}");
    let err = s
        .sql("UPDATE person SET age = 1, age = 2")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::Sql(_)), "{err:?}");
    // COMPACT without the subsystem installed is typed, not a panic.
    let err = s.sql("COMPACT").map(|_| ()).unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "{err:?}");
    let err = s.sql("COMPACT person").map(|_| ()).unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "{err:?}");
}
