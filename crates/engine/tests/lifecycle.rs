//! Query lifecycle hardening, engine level: cooperative cancellation,
//! deadlines, memory budgets, and panic isolation over plain `MemTable`
//! plans. The storage-layer (indexed) counterparts live in
//! `crates/core/tests/lifecycle.rs`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use idf_engine::config::EngineConfig;
use idf_engine::prelude::*;

/// Failpoints are process-global; tests that configure them serialize on
/// this lock (and tolerate a poisoned lock — a failed sibling test must
/// not cascade).
static FAIL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn session_with(config: EngineConfig, rows: i64) -> Session {
    let s = Session::with_config(config);
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("g", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]));
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int64(i), Value::Int64(i % 1000), Value::Int64(i * 3)])
        .collect();
    let chunk = Chunk::from_rows(&schema, &data).unwrap();
    s.register_table(
        "t",
        Arc::new(MemTable::from_chunk_partitioned(schema, chunk, 4).unwrap()),
    );
    s
}

#[test]
fn pre_cancelled_query_returns_cancelled() {
    let s = session_with(EngineConfig::default(), 10_000);
    let df = s.sql("SELECT g, count(*) FROM t GROUP BY g").unwrap();
    let query = s.new_query();
    query.cancel();
    assert_eq!(df.collect_ctx(&query).unwrap_err(), EngineError::Cancelled);
}

#[test]
fn cancel_mid_query_bounded_latency() {
    let s = session_with(EngineConfig::default(), 400_000);
    let df = s
        .sql("SELECT a.g, count(*) FROM t a JOIN t b ON a.g = b.g GROUP BY a.g")
        .unwrap();
    let query = s.new_query();
    let canceller = {
        let query = Arc::clone(&query);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            query.cancel();
            Instant::now()
        })
    };
    let result = df.collect_ctx(&query);
    let returned_at = Instant::now();
    let cancelled_at = canceller.join().unwrap();
    match result {
        Err(EngineError::Cancelled) => {
            let latency = returned_at.duration_since(cancelled_at);
            assert!(
                latency < Duration::from_secs(2),
                "cancellation took {latency:?}"
            );
        }
        // The query may legitimately win the race on a fast machine.
        Ok(_) => {}
        Err(other) => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn expired_deadline_returns_deadline_exceeded() {
    let s = session_with(EngineConfig::default(), 10_000);
    let df = s.sql("SELECT g, sum(v) FROM t GROUP BY g").unwrap();
    let err = df.collect_timeout(Duration::ZERO).unwrap_err();
    assert_eq!(err, EngineError::DeadlineExceeded);
}

#[test]
fn cancelled_query_leaves_session_usable() {
    let s = session_with(EngineConfig::default(), 10_000);
    let df = s.sql("SELECT g, count(*) FROM t GROUP BY g").unwrap();
    let query = s.new_query();
    query.cancel();
    assert!(df.collect_ctx(&query).is_err());
    // A fresh query on the same session (and same DataFrame) completes.
    let again = df.collect().unwrap();
    assert_eq!(again.len(), 1000);
}

#[test]
fn over_budget_aggregation_is_resource_exhausted() {
    let s = session_with(
        EngineConfig {
            query_memory_limit: Some(32 * 1024),
            ..Default::default()
        },
        100_000,
    );
    // 1000 groups of accumulators blow a 32 KiB budget.
    let err = s
        .sql("SELECT g, count(*), sum(v), min(v), max(v) FROM t GROUP BY g")
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted(_)),
        "got {err:?}"
    );
    // A small query under the same per-query budget still runs.
    let out = s
        .sql("SELECT k FROM t WHERE k = 17")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 1);
}

#[test]
fn global_governor_is_released_after_failure() {
    let s = session_with(
        EngineConfig {
            total_memory_limit: Some(48 * 1024),
            ..Default::default()
        },
        100_000,
    );
    let governor = s.memory_governor().expect("configured");
    let err = s
        .sql("SELECT g, count(*), sum(v), min(v), max(v) FROM t GROUP BY g")
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted(_)),
        "got {err:?}"
    );
    // The failed query's charges were returned to the pool...
    assert_eq!(governor.used(), 0, "leaked {} bytes", governor.used());
    // ...so later small queries are unaffected.
    let out = s
        .sql("SELECT k FROM t WHERE k = 17")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 1);
}

#[cfg(feature = "failpoints")]
#[test]
fn shuffle_fault_surfaces_as_query_error() {
    let _serial = FAIL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let s = session_with(EngineConfig::default(), 10_000);
    let df = s
        .sql("SELECT a.g, count(*) FROM t a JOIN t b ON a.g = b.g GROUP BY a.g")
        .unwrap();
    {
        let _fault = idf_fail::FailGuard::new(
            idf_engine::failpoints::SHUFFLE_EXCHANGE,
            idf_fail::FailConfig::error("io refused"),
        );
        let err = df.collect().unwrap_err();
        assert!(err.to_string().contains("injected"), "got: {err}");
    }
    // Fault removed: the very same plan completes.
    assert_eq!(df.collect().unwrap().len(), 1000);
}

#[cfg(feature = "failpoints")]
#[test]
fn worker_panic_becomes_error_not_abort() {
    let _serial = FAIL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let s = session_with(EngineConfig::default(), 10_000);
    let df = s.sql("SELECT g, count(*) FROM t GROUP BY g").unwrap();
    {
        let _fault = idf_fail::FailGuard::new(
            idf_engine::failpoints::WORKER_START,
            idf_fail::FailConfig::panic("simulated worker crash"),
        );
        let err = df.collect().unwrap_err();
        assert!(err.to_string().contains("panicked"), "got: {err}");
    }
    assert_eq!(df.collect().unwrap().len(), 1000);
}
