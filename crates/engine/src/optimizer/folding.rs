//! Constant folding and predicate simplification.

use crate::error::Result;
use crate::expr::{BinaryOp, Expr};
use crate::logical::LogicalPlan;
use crate::optimizer::{map_children, OptimizerRule};
use crate::types::Value;

/// Evaluates literal-only subtrees at plan time.
pub struct ConstantFolding;

impl OptimizerRule for ConstantFolding {
    fn name(&self) -> &str {
        "constant_folding"
    }

    fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        rewrite_exprs(plan, &fold_expr)
    }
}

/// Drops always-true filters; collapses always-false filters into empty
/// `Values` relations.
pub struct SimplifyPredicates;

impl OptimizerRule for SimplifyPredicates {
    fn name(&self) -> &str {
        "simplify_predicates"
    }

    fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let plan = map_children(plan, &mut |c| self.optimize(c))?;
        if let LogicalPlan::Filter { input, predicate } = &plan {
            match predicate {
                Expr::Literal(Value::Boolean(true)) => return Ok(input.as_ref().clone()),
                Expr::Literal(Value::Boolean(false)) | Expr::Literal(Value::Null) => {
                    return Ok(LogicalPlan::Values {
                        schema: input.schema(),
                        rows: vec![],
                    })
                }
                _ => {}
            }
        }
        Ok(plan)
    }
}

/// Apply `f` to every expression in the plan, bottom-up through children.
fn rewrite_exprs(plan: &LogicalPlan, f: &impl Fn(&Expr) -> Expr) -> Result<LogicalPlan> {
    let plan = map_children(plan, &mut |c| rewrite_exprs(c, f))?;
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: f(&predicate),
        },
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input,
            exprs: exprs.iter().map(f).collect(),
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
            schema,
        } => LogicalPlan::Join {
            left,
            right,
            on: on.iter().map(|(l, r)| (f(l), f(r))).collect(),
            join_type,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            agg_exprs,
            schema,
        } => LogicalPlan::Aggregate {
            input,
            group_exprs: group_exprs.iter().map(f).collect(),
            agg_exprs: agg_exprs.iter().map(f).collect(),
            schema,
        },
        other => other,
    })
}

/// Fold literal subtrees of one expression.
pub(crate) fn fold_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Binary { left, op, right } => {
            let l = fold_expr(left);
            let r = fold_expr(right);
            if let (Expr::Literal(lv), Expr::Literal(rv)) = (&l, &r) {
                if let Some(v) = eval_binary_literal(lv, *op, rv) {
                    return Expr::Literal(v);
                }
            }
            // Boolean identities.
            match op {
                BinaryOp::And => {
                    if matches!(l, Expr::Literal(Value::Boolean(true))) {
                        return r;
                    }
                    if matches!(r, Expr::Literal(Value::Boolean(true))) {
                        return l;
                    }
                    if matches!(l, Expr::Literal(Value::Boolean(false)))
                        || matches!(r, Expr::Literal(Value::Boolean(false)))
                    {
                        return Expr::Literal(Value::Boolean(false));
                    }
                }
                BinaryOp::Or => {
                    if matches!(l, Expr::Literal(Value::Boolean(false))) {
                        return r;
                    }
                    if matches!(r, Expr::Literal(Value::Boolean(false))) {
                        return l;
                    }
                    if matches!(l, Expr::Literal(Value::Boolean(true)))
                        || matches!(r, Expr::Literal(Value::Boolean(true)))
                    {
                        return Expr::Literal(Value::Boolean(true));
                    }
                }
                _ => {}
            }
            Expr::Binary {
                left: Box::new(l),
                op: *op,
                right: Box::new(r),
            }
        }
        Expr::Not(e) => {
            let e = fold_expr(e);
            if let Expr::Literal(Value::Boolean(b)) = e {
                return Expr::Literal(Value::Boolean(!b));
            }
            Expr::Not(Box::new(e))
        }
        Expr::Cast { expr: inner, to } => {
            let e = fold_expr(inner);
            if let Expr::Literal(v) = &e {
                if let Some(c) = v.cast(*to) {
                    return Expr::Literal(c);
                }
            }
            Expr::Cast {
                expr: Box::new(e),
                to: *to,
            }
        }
        Expr::IsNull(e) => {
            let e = fold_expr(e);
            if let Expr::Literal(v) = &e {
                return Expr::Literal(Value::Boolean(v.is_null()));
            }
            Expr::IsNull(Box::new(e))
        }
        Expr::IsNotNull(e) => {
            let e = fold_expr(e);
            if let Expr::Literal(v) = &e {
                return Expr::Literal(Value::Boolean(!v.is_null()));
            }
            Expr::IsNotNull(Box::new(e))
        }
        Expr::Alias(e, n) => Expr::Alias(Box::new(fold_expr(e)), n.clone()),
        Expr::Aggregate { func, arg } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(fold_expr(a))),
        },
        Expr::Scalar { func, args } => Expr::Scalar {
            func: *func,
            args: args.iter().map(fold_expr).collect(),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let tested = fold_expr(expr);
            let mut entries: Vec<Expr> = Vec::with_capacity(list.len());
            for e in list {
                let e = fold_expr(e);
                // Exact duplicate literals contribute nothing (NULLs
                // included: one NULL entry already forces the miss → NULL
                // outcome, extra copies are noise).
                if matches!(e, Expr::Literal(_)) && entries.contains(&e) {
                    continue;
                }
                entries.push(e);
            }
            // All-literal IN over a literal tested value folds completely.
            if let Expr::Literal(v) = &tested {
                let lits: Option<Vec<&Value>> = entries
                    .iter()
                    .map(|e| match e {
                        Expr::Literal(l) => Some(l),
                        _ => None,
                    })
                    .collect();
                if let Some(lits) = lits {
                    return Expr::Literal(eval_in_list_literal(v, &lits, *negated));
                }
            }
            // `x IN (a)` ⇔ `x = a`, `x NOT IN (a)` ⇔ `x <> a` — exact
            // under three-valued logic, and it exposes the single-key
            // equality shape to index pushdown.
            if entries.len() == 1 {
                let op = if *negated {
                    BinaryOp::NotEq
                } else {
                    BinaryOp::Eq
                };
                return fold_expr(&Expr::Binary {
                    left: Box::new(tested),
                    op,
                    right: Box::new(entries.remove(0)),
                });
            }
            Expr::InList {
                expr: Box::new(tested),
                list: entries,
                negated: *negated,
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(fold_expr(expr)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// `v IN (entries)` under SQL three-valued logic (flip for `NOT IN`):
/// NULL tested → NULL; a match → TRUE; no match but a NULL entry → NULL;
/// otherwise FALSE. Mirrors the physical `InListExpr` exactly, including
/// its strict `Value` equality.
fn eval_in_list_literal(v: &Value, entries: &[&Value], negated: bool) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    let mut saw_null = false;
    for e in entries {
        if e.is_null() {
            saw_null = true;
        } else if *e == v {
            return Value::Boolean(!negated);
        }
    }
    if saw_null {
        return Value::Null;
    }
    Value::Boolean(negated)
}

fn eval_binary_literal(l: &Value, op: BinaryOp, r: &Value) -> Option<Value> {
    use std::cmp::Ordering;
    if l.is_null() || r.is_null() {
        // NULL op x is NULL for comparisons/arithmetic; handled by
        // execution anyway — fold to NULL only for comparisons where it is
        // unambiguous.
        return match op {
            BinaryOp::And | BinaryOp::Or => None,
            _ => Some(Value::Null),
        };
    }
    if op.is_comparison() {
        if l.data_type() != r.data_type() {
            return None; // analyzer inserts casts; don't guess here
        }
        let ord = l.cmp(r);
        let b = match op {
            BinaryOp::Eq => ord == Ordering::Equal,
            BinaryOp::NotEq => ord != Ordering::Equal,
            BinaryOp::Lt => ord == Ordering::Less,
            BinaryOp::LtEq => ord != Ordering::Greater,
            BinaryOp::Gt => ord == Ordering::Greater,
            BinaryOp::GtEq => ord != Ordering::Less,
            _ => unreachable!(),
        };
        return Some(Value::Boolean(b));
    }
    if op.is_logic() {
        let (Value::Boolean(a), Value::Boolean(b)) = (l, r) else {
            return None;
        };
        return Some(Value::Boolean(match op {
            BinaryOp::And => *a && *b,
            BinaryOp::Or => *a || *b,
            _ => unreachable!(),
        }));
    }
    // Arithmetic on same-typed numerics.
    match (l, r) {
        (Value::Int64(a), Value::Int64(b)) => {
            let v = match op {
                BinaryOp::Plus => a.checked_add(*b),
                BinaryOp::Minus => a.checked_sub(*b),
                BinaryOp::Multiply => a.checked_mul(*b),
                BinaryOp::Divide => a.checked_div(*b),
                BinaryOp::Modulo => a.checked_rem(*b),
                _ => None,
            };
            Some(v.map_or(Value::Null, Value::Int64))
        }
        (Value::Float64(a), Value::Float64(b)) => {
            let v = match op {
                BinaryOp::Plus => a + b,
                BinaryOp::Minus => a - b,
                BinaryOp::Multiply => a * b,
                BinaryOp::Divide => a / b,
                BinaryOp::Modulo => a % b,
                _ => return None,
            };
            Some(Value::Float64(v))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn folds_arithmetic() {
        let e = fold_expr(&lit(2i64).add(lit(3i64)).mul(lit(4i64)));
        assert_eq!(e, lit(20i64));
    }

    #[test]
    fn folds_comparisons_and_logic() {
        let e = fold_expr(&lit(2i64).lt(lit(3i64)).and(lit(true)));
        assert_eq!(e, lit(true));
        let e2 = fold_expr(&col("x").gt(lit(1i64)).and(lit(true)));
        assert_eq!(e2, col("x").gt(lit(1i64)));
        let e3 = fold_expr(&col("x").gt(lit(1i64)).or(lit(true)));
        assert_eq!(e3, lit(true));
    }

    #[test]
    fn folds_casts_and_null_checks() {
        let e = fold_expr(&lit(5i32).cast(crate::types::DataType::Int64));
        assert_eq!(e, lit(5i64));
        assert_eq!(fold_expr(&lit(5i64).is_null()), lit(false));
        assert_eq!(fold_expr(&Expr::Literal(Value::Null).is_null()), lit(true));
    }

    #[test]
    fn does_not_fold_columns() {
        let e = col("x").add(lit(1i64));
        assert_eq!(fold_expr(&e), e);
    }

    #[test]
    fn div_by_zero_folds_to_null() {
        assert_eq!(
            fold_expr(&lit(1i64).div(lit(0i64))),
            Expr::Literal(Value::Null)
        );
    }

    #[test]
    fn in_list_dedupes_literal_entries() {
        let e = fold_expr(&col("x").in_list(vec![lit(1i64), lit(2i64), lit(1i64)]));
        assert_eq!(e, col("x").in_list(vec![lit(1i64), lit(2i64)]));
        // Dedup can leave a single entry, which then rewrites to equality.
        let e = fold_expr(&col("x").in_list(vec![lit(5i64), lit(5i64)]));
        assert_eq!(e, col("x").eq(lit(5i64)));
    }

    #[test]
    fn single_entry_in_list_becomes_equality() {
        assert_eq!(
            fold_expr(&col("x").in_list(vec![lit(3i64)])),
            col("x").eq(lit(3i64))
        );
        assert_eq!(
            fold_expr(&col("x").not_in_list(vec![lit(3i64)])),
            col("x").not_eq(lit(3i64))
        );
        // Folds inside entries happen first: x IN (1 + 2) → x = 3.
        assert_eq!(
            fold_expr(&col("x").in_list(vec![lit(1i64).add(lit(2i64))])),
            col("x").eq(lit(3i64))
        );
    }

    #[test]
    fn all_literal_in_list_folds_with_three_valued_logic() {
        let null = || Expr::Literal(Value::Null);
        // Plain hit and miss.
        assert_eq!(
            fold_expr(&lit(2i64).in_list(vec![lit(1i64), lit(2i64)])),
            lit(true)
        );
        assert_eq!(
            fold_expr(&lit(9i64).in_list(vec![lit(1i64), lit(2i64)])),
            lit(false)
        );
        assert_eq!(
            fold_expr(&lit(9i64).not_in_list(vec![lit(1i64), lit(2i64)])),
            lit(true)
        );
        // Miss with a NULL entry is NULL, not false; a hit still wins.
        assert_eq!(
            fold_expr(&lit(9i64).in_list(vec![lit(1i64), null()])),
            Expr::Literal(Value::Null)
        );
        assert_eq!(
            fold_expr(&lit(1i64).in_list(vec![lit(1i64), null()])),
            lit(true)
        );
        // NULL tested is NULL even over an empty list.
        assert_eq!(
            fold_expr(&null().in_list(vec![])),
            Expr::Literal(Value::Null)
        );
        // Non-literal entries block complete folding but keep the list.
        let kept = fold_expr(&lit(1i64).in_list(vec![lit(2i64), col("x")]));
        assert_eq!(kept, lit(1i64).in_list(vec![lit(2i64), col("x")]));
    }
}
