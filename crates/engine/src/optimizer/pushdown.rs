//! Predicate pushdown.
//!
//! Filters move toward the data: through projections (when they only touch
//! pass-through columns), through sorts, into both sides of joins, into
//! union branches, through aggregates (on group keys), and finally *into*
//! table sources that support native filter evaluation — which is how an
//! equality predicate over an Indexed DataFrame column becomes a cTrie
//! lookup instead of a scan.

use std::sync::Arc;

use crate::error::Result;
use crate::expr::Expr;
use crate::logical::{JoinType, LogicalPlan};
use crate::optimizer::{map_children, OptimizerRule};

/// The pushdown rule.
pub struct PredicatePushdown;

impl OptimizerRule for PredicatePushdown {
    fn name(&self) -> &str {
        "predicate_pushdown"
    }

    fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let plan = map_children(plan, &mut |c| self.optimize(c))?;
        if let LogicalPlan::Filter { input, predicate } = &plan {
            let conjuncts: Vec<Expr> = predicate.split_conjunction().into_iter().cloned().collect();
            return Ok(push_into(input.as_ref().clone(), conjuncts));
        }
        Ok(plan)
    }
}

/// Wrap `plan` in a filter for `conjuncts` (no-op when empty).
fn attach(plan: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    match Expr::conjunction(conjuncts) {
        Some(p) => LogicalPlan::Filter {
            input: Arc::new(plan),
            predicate: p,
        },
        None => plan,
    }
}

/// Push `conjuncts` as deep into `plan` as legality allows.
fn push_into(plan: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    let (plan, rest) = try_push(plan, conjuncts);
    attach(plan, rest)
}

/// Attempt to absorb `conjuncts` into `plan`; returns the rewritten plan and
/// the conjuncts that must stay above it.
fn try_push(plan: LogicalPlan, conjuncts: Vec<Expr>) -> (LogicalPlan, Vec<Expr>) {
    match plan {
        LogicalPlan::Scan {
            table,
            source,
            schema,
            projection,
            mut filters,
        } => {
            let mut rest = Vec::new();
            for c in conjuncts {
                // Scan filters are expressed against the full source
                // schema; remap through the scan projection if present.
                let remapped = match &projection {
                    Some(p) => c.map_column_indices(&|i| p[i]),
                    None => c.clone(),
                };
                if source.supports_filter_pushdown(&remapped) {
                    filters.push(remapped);
                } else {
                    rest.push(c);
                }
            }
            (
                LogicalPlan::Scan {
                    table,
                    source,
                    schema,
                    projection,
                    filters,
                },
                rest,
            )
        }
        LogicalPlan::Filter { input, predicate } => {
            // Merge with the lower filter and keep pushing.
            let mut all: Vec<Expr> = predicate.split_conjunction().into_iter().cloned().collect();
            all.extend(conjuncts);
            let (new_input, rest) = try_push(input.as_ref().clone(), all);
            (new_input, rest)
        }
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => {
            // Output column -> input column, when the projection is a pure
            // pass-through for that column.
            let mapping: Vec<Option<usize>> = exprs
                .iter()
                .map(|e| match unalias(e) {
                    Expr::Column(c) => c.index,
                    _ => None,
                })
                .collect();
            let mut below = Vec::new();
            let mut rest = Vec::new();
            for c in conjuncts {
                let mut refs = Vec::new();
                c.referenced_indices(&mut refs);
                if refs
                    .iter()
                    .all(|&i| mapping.get(i).copied().flatten().is_some())
                {
                    below.push(c.map_column_indices(&|i| mapping[i].expect("checked above")));
                } else {
                    rest.push(c);
                }
            }
            let new_input = push_into(input.as_ref().clone(), below);
            (
                LogicalPlan::Projection {
                    input: Arc::new(new_input),
                    exprs,
                    schema,
                },
                rest,
            )
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
            schema,
        } => {
            let left_width = left.schema().len();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut rest = Vec::new();
            for c in conjuncts {
                let mut refs = Vec::new();
                c.referenced_indices(&mut refs);
                let all_left = refs.iter().all(|&i| i < left_width);
                let all_right = refs.iter().all(|&i| i >= left_width);
                if all_left {
                    to_left.push(c);
                } else if all_right && matches!(join_type, JoinType::Inner) {
                    to_right.push(c.map_column_indices(&|i| i - left_width));
                } else {
                    rest.push(c);
                }
            }
            let new_left = push_into(left.as_ref().clone(), to_left);
            let new_right = push_into(right.as_ref().clone(), to_right);
            (
                LogicalPlan::Join {
                    left: Arc::new(new_left),
                    right: Arc::new(new_right),
                    on,
                    join_type,
                    schema,
                },
                rest,
            )
        }
        LogicalPlan::Sort { input, exprs } => {
            let new_input = push_into(input.as_ref().clone(), conjuncts);
            (
                LogicalPlan::Sort {
                    input: Arc::new(new_input),
                    exprs,
                },
                Vec::new(),
            )
        }
        LogicalPlan::Union { inputs, schema } => {
            let new_inputs = inputs
                .iter()
                .map(|i| Arc::new(push_into(i.as_ref().clone(), conjuncts.clone())))
                .collect();
            (
                LogicalPlan::Union {
                    inputs: new_inputs,
                    schema,
                },
                Vec::new(),
            )
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            agg_exprs,
            schema,
        } => {
            // A conjunct referencing only pass-through group keys can run
            // before the aggregation.
            let n_groups = group_exprs.len();
            let mapping: Vec<Option<usize>> = group_exprs
                .iter()
                .map(|e| match unalias(e) {
                    Expr::Column(c) => c.index,
                    _ => None,
                })
                .collect();
            let mut below = Vec::new();
            let mut rest = Vec::new();
            for c in conjuncts {
                let mut refs = Vec::new();
                c.referenced_indices(&mut refs);
                let pushable = refs.iter().all(|&i| i < n_groups && mapping[i].is_some());
                if pushable {
                    below.push(c.map_column_indices(&|i| mapping[i].expect("checked above")));
                } else {
                    rest.push(c);
                }
            }
            let new_input = push_into(input.as_ref().clone(), below);
            (
                LogicalPlan::Aggregate {
                    input: Arc::new(new_input),
                    group_exprs,
                    agg_exprs,
                    schema,
                },
                rest,
            )
        }
        // Limit and Values are barriers.
        other => (other, conjuncts),
    }
}

fn unalias(e: &Expr) -> &Expr {
    match e {
        Expr::Alias(inner, _) => unalias(inner),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::catalog::MemTable;
    use crate::chunk::Chunk;
    use crate::expr::{col, lit};
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn scan() -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ]));
        let source = Arc::new(MemTable::from_chunk(
            Arc::clone(&schema),
            Chunk::empty(&schema),
        ));
        LogicalPlan::Scan {
            table: "t".into(),
            source,
            schema,
            projection: None,
            filters: vec![],
        }
    }

    fn bound(e: &Expr, plan: &LogicalPlan) -> Expr {
        resolve_expr(e, &plan.schema()).unwrap()
    }

    #[test]
    fn pushes_through_sort() {
        let s = scan();
        let pred = bound(&col("a").eq(lit(1i64)), &s);
        let plan = LogicalPlan::Filter {
            input: Arc::new(LogicalPlan::Sort {
                input: Arc::new(s),
                exprs: vec![],
            }),
            predicate: pred,
        };
        let out = PredicatePushdown.optimize(&plan).unwrap();
        // Filter must now be below the sort.
        let LogicalPlan::Sort { input, .. } = &out else {
            panic!("expected Sort on top, got {out:?}")
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn does_not_push_through_limit() {
        let s = scan();
        let pred = bound(&col("a").eq(lit(1i64)), &s);
        let plan = LogicalPlan::Filter {
            input: Arc::new(LogicalPlan::Limit {
                input: Arc::new(s),
                n: 5,
            }),
            predicate: pred,
        };
        let out = PredicatePushdown.optimize(&plan).unwrap();
        assert!(matches!(out, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn splits_conjuncts_across_inner_join() {
        let l = scan();
        let r = scan();
        let join_schema = Arc::new(l.schema().join(&r.schema()));
        let join = LogicalPlan::Join {
            left: Arc::new(l),
            right: Arc::new(r),
            on: vec![],
            join_type: JoinType::Inner,
            schema: Arc::clone(&join_schema),
        };
        // a (index 0) on left; index 2 is right's a.
        let p_left = resolve_expr(&col("a").eq(lit(1i64)), &join_schema);
        // ambiguous name; build bound refs manually instead
        drop(p_left);
        let mut left_ref = col("a");
        if let Expr::Column(c) = &mut left_ref {
            c.index = Some(0);
        }
        let mut right_ref = col("a");
        if let Expr::Column(c) = &mut right_ref {
            c.index = Some(2);
        }
        let pred = left_ref.eq(lit(1i64)).and(right_ref.eq(lit(2i64)));
        let plan = LogicalPlan::Filter {
            input: Arc::new(join),
            predicate: pred,
        };
        let out = PredicatePushdown.optimize(&plan).unwrap();
        let LogicalPlan::Join { left, right, .. } = &out else {
            panic!("expected bare Join, got {out:?}")
        };
        assert!(matches!(left.as_ref(), LogicalPlan::Filter { .. }));
        let LogicalPlan::Filter { predicate, .. } = right.as_ref() else {
            panic!("right side must have filter")
        };
        let mut refs = Vec::new();
        predicate.referenced_indices(&mut refs);
        assert_eq!(refs, vec![0], "right-side predicate must be remapped");
    }

    #[test]
    fn left_join_keeps_right_conjuncts_above() {
        let l = scan();
        let r = scan();
        let join_schema = Arc::new(l.schema().join(&r.schema()));
        let join = LogicalPlan::Join {
            left: Arc::new(l),
            right: Arc::new(r),
            on: vec![],
            join_type: JoinType::Left,
            schema: join_schema,
        };
        let mut right_ref = col("a");
        if let Expr::Column(c) = &mut right_ref {
            c.index = Some(2);
        }
        let plan = LogicalPlan::Filter {
            input: Arc::new(join),
            predicate: right_ref.eq(lit(2i64)),
        };
        let out = PredicatePushdown.optimize(&plan).unwrap();
        assert!(
            matches!(out, LogicalPlan::Filter { .. }),
            "must stay above left join"
        );
    }

    #[test]
    fn pushes_through_passthrough_projection() {
        let s = scan();
        let in_schema = s.schema();
        let exprs = vec![
            resolve_expr(&col("b"), &in_schema).unwrap(),
            resolve_expr(&col("a").add(col("b")).alias("ab"), &in_schema).unwrap(),
        ];
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("b", DataType::Int64),
            Field::new("ab", DataType::Int64),
        ]));
        let proj = LogicalPlan::Projection {
            input: Arc::new(s),
            exprs,
            schema: Arc::clone(&out_schema),
        };
        // Predicate on output col 0 ("b") — pass-through, pushable.
        let mut b_ref = col("b");
        if let Expr::Column(c) = &mut b_ref {
            c.index = Some(0);
        }
        // Predicate on output col 1 ("ab") — computed, not pushable.
        let mut ab_ref = col("ab");
        if let Expr::Column(c) = &mut ab_ref {
            c.index = Some(1);
        }
        let plan = LogicalPlan::Filter {
            input: Arc::new(proj),
            predicate: b_ref.eq(lit(1i64)).and(ab_ref.gt(lit(0i64))),
        };
        let out = PredicatePushdown.optimize(&plan).unwrap();
        let LogicalPlan::Filter { input, predicate } = &out else {
            panic!("computed-column filter must remain, got {out:?}")
        };
        assert!(predicate.to_string().contains("ab"));
        let LogicalPlan::Projection { input: pin, .. } = input.as_ref() else {
            panic!("projection expected")
        };
        let LogicalPlan::Filter {
            predicate: below, ..
        } = pin.as_ref()
        else {
            panic!("pushed filter expected below projection")
        };
        let mut refs = Vec::new();
        below.referenced_indices(&mut refs);
        assert_eq!(refs, vec![1], "b is column 1 of the scan");
    }
}
