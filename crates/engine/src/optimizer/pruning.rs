//! Projection pruning: narrow scans to the columns a query actually uses.
//!
//! With a columnar cache this is what makes projections and aggregations
//! cheap for the vanilla engine — only the referenced column vectors are
//! touched. (The Indexed DataFrame's row-major cache cannot benefit, which
//! reproduces the projection slowdown the paper reports in Figure 2.)
//!
//! The rule handles the plan shapes the DataFrame API and SQL binder emit:
//! a consumer (`Projection` or `Aggregate`) above a chain of `Filter`s over
//! a `Scan`, including both sides of a `Join` directly under a projection.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::Result;
use crate::expr::Expr;
use crate::logical::LogicalPlan;
use crate::optimizer::{map_children, OptimizerRule};

/// The pruning rule.
pub struct ProjectionPruning;

impl OptimizerRule for ProjectionPruning {
    fn name(&self) -> &str {
        "projection_pruning"
    }

    fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let plan = map_children(plan, &mut |c| self.optimize(c))?;
        Ok(match &plan {
            LogicalPlan::Projection {
                input,
                exprs,
                schema,
            } => match input.as_ref() {
                LogicalPlan::Join { .. } => {
                    prune_join_under_projection(input, exprs, schema).unwrap_or(plan)
                }
                _ => {
                    let required = exprs_refs(exprs);
                    let plan = match narrow(input, &required) {
                        Some((new_input, mapping)) => {
                            let exprs = exprs
                                .iter()
                                .map(|e| e.map_column_indices(&|i| mapping[&i]))
                                .collect();
                            LogicalPlan::Projection {
                                input: Arc::new(new_input),
                                exprs,
                                schema: Arc::clone(schema),
                            }
                        }
                        None => plan,
                    };
                    collapse_column_projection(&plan).unwrap_or(plan)
                }
            },
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                agg_exprs,
                schema,
            } => {
                let mut required = exprs_refs(group_exprs);
                required.extend(exprs_refs(agg_exprs));
                let narrowed = match input.as_ref() {
                    LogicalPlan::Join { .. } => prune_join_sides(input, &required),
                    _ => narrow(input, &required),
                };
                match narrowed {
                    Some((new_input, mapping)) => {
                        let remap = |es: &Vec<Expr>| -> Vec<Expr> {
                            es.iter()
                                .map(|e| e.map_column_indices(&|i| mapping[&i]))
                                .collect()
                        };
                        LogicalPlan::Aggregate {
                            input: Arc::new(new_input),
                            group_exprs: remap(group_exprs),
                            agg_exprs: remap(agg_exprs),
                            schema: Arc::clone(schema),
                        }
                    }
                    None => plan,
                }
            }
            _ => plan,
        })
    }
}

/// Merge a bare-column projection straight into the scan underneath it:
/// `Projection[cols](Scan)` becomes `Scan[projection=cols]` carrying the
/// projection's (possibly re-qualified) schema. This keeps aliased scans —
/// which the DataFrame/SQL `alias` wraps in identity projections —
/// recognizable to custom planning strategies such as the Indexed
/// DataFrame's, and removes one operator from the pipeline.
fn collapse_column_projection(plan: &LogicalPlan) -> Option<LogicalPlan> {
    let LogicalPlan::Projection {
        input,
        exprs,
        schema,
    } = plan
    else {
        return None;
    };
    let LogicalPlan::Scan {
        table,
        source,
        projection,
        filters,
        ..
    } = input.as_ref()
    else {
        return None;
    };
    let mut scan_cols = Vec::with_capacity(exprs.len());
    for e in exprs {
        // Only bare columns (an alias changes the output name, which the
        // provided schema already reflects, so it is fine to unwrap).
        let inner = match e {
            Expr::Alias(i, _) => i.as_ref(),
            other => other,
        };
        let Expr::Column(c) = inner else { return None };
        let out_idx = c.index?;
        scan_cols.push(match projection {
            Some(p) => *p.get(out_idx)?,
            None => out_idx,
        });
    }
    Some(LogicalPlan::Scan {
        table: table.clone(),
        source: Arc::clone(source),
        schema: Arc::clone(schema),
        projection: Some(scan_cols),
        filters: filters.clone(),
    })
}

fn exprs_refs(exprs: &[Expr]) -> BTreeSet<usize> {
    let mut v = Vec::new();
    for e in exprs {
        e.referenced_indices(&mut v);
    }
    v.into_iter().collect()
}

/// Narrow `plan` (a Filter* chain over a Scan) to the `required` output
/// columns plus whatever its own predicates need. Returns the rewritten
/// plan and the old→new index mapping for the columns that survive.
type Mapping = std::collections::HashMap<usize, usize>;

fn narrow(plan: &LogicalPlan, required: &BTreeSet<usize>) -> Option<(LogicalPlan, Mapping)> {
    match plan {
        LogicalPlan::Scan {
            table,
            source,
            schema,
            projection,
            filters,
        } => {
            if required.len() == schema.len() {
                return None; // nothing to prune
            }
            let req: Vec<usize> = required.iter().copied().collect();
            let new_projection: Vec<usize> = match projection {
                Some(p) => req.iter().map(|&i| p[i]).collect(),
                None => req.clone(),
            };
            let new_schema = Arc::new(schema.project(&req));
            let mapping: Mapping = req
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Some((
                LogicalPlan::Scan {
                    table: table.clone(),
                    source: Arc::clone(source),
                    schema: new_schema,
                    projection: Some(new_projection),
                    filters: filters.clone(),
                },
                mapping,
            ))
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut need = required.clone();
            let mut refs = Vec::new();
            predicate.referenced_indices(&mut refs);
            need.extend(refs);
            let (new_input, mapping) = narrow(input, &need)?;
            let predicate = predicate.map_column_indices(&|i| mapping[&i]);
            Some((
                LogicalPlan::Filter {
                    input: Arc::new(new_input),
                    predicate,
                },
                mapping,
            ))
        }
        _ => None,
    }
}

/// Prune both inputs of `join` so only the `required` output columns (plus
/// the join keys) survive; returns the rewritten join and the old→new
/// output-index mapping for the surviving columns.
fn prune_join_sides(
    join: &LogicalPlan,
    required: &BTreeSet<usize>,
) -> Option<(LogicalPlan, Mapping)> {
    let LogicalPlan::Join {
        left,
        right,
        on,
        join_type,
        ..
    } = join
    else {
        return None;
    };
    let left_width = left.schema().len();
    let mut required = required.clone();
    for (l, r) in on {
        let mut refs = Vec::new();
        l.referenced_indices(&mut refs);
        required.extend(refs.iter().copied());
        let mut refs = Vec::new();
        r.referenced_indices(&mut refs);
        required.extend(refs.iter().map(|&i| i + left_width));
    }
    let left_req: BTreeSet<usize> = required
        .iter()
        .copied()
        .filter(|&i| i < left_width)
        .collect();
    let right_req: BTreeSet<usize> = required
        .iter()
        .copied()
        .filter(|&i| i >= left_width)
        .map(|i| i - left_width)
        .collect();
    // Narrow each side (tolerate one side not narrowing).
    let narrowed_left = narrow(left, &left_req);
    let narrowed_right = narrow(right, &right_req);
    if narrowed_left.is_none() && narrowed_right.is_none() {
        return None;
    }
    let (new_left, left_map) = narrowed_left.unwrap_or_else(|| {
        (
            left.as_ref().clone(),
            (0..left_width).map(|i| (i, i)).collect(),
        )
    });
    let (new_right, right_map) = narrowed_right.unwrap_or_else(|| {
        (
            (*right).as_ref().clone(),
            (0..right.schema().len()).map(|i| (i, i)).collect(),
        )
    });
    let new_left_width = new_left.schema().len();
    let new_on: Vec<(Expr, Expr)> = on
        .iter()
        .map(|(l, r)| {
            (
                l.map_column_indices(&|i| left_map[&i]),
                r.map_column_indices(&|i| right_map[&i]),
            )
        })
        .collect();
    let new_join_schema = Arc::new(new_left.schema().join(&new_right.schema()));
    let mut mapping: Mapping = Mapping::new();
    for (&old, &new) in &left_map {
        mapping.insert(old, new);
    }
    for (&old, &new) in &right_map {
        mapping.insert(old + left_width, new + new_left_width);
    }
    Some((
        LogicalPlan::Join {
            left: Arc::new(new_left),
            right: Arc::new(new_right),
            on: new_on,
            join_type: *join_type,
            schema: new_join_schema,
        },
        mapping,
    ))
}

/// `Projection` directly over `Join`: prune both join inputs to the columns
/// used by the projection and the join keys.
fn prune_join_under_projection(
    join: &LogicalPlan,
    exprs: &[Expr],
    out_schema: &crate::schema::SchemaRef,
) -> Option<LogicalPlan> {
    let (new_join, mapping) = prune_join_sides(join, &exprs_refs(exprs))?;
    let new_exprs: Vec<Expr> = exprs
        .iter()
        .map(|e| e.map_column_indices(&|i| mapping[&i]))
        .collect();
    Some(LogicalPlan::Projection {
        input: Arc::new(new_join),
        exprs: new_exprs,
        schema: Arc::clone(out_schema),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{expr_to_field, resolve_expr};
    use crate::catalog::MemTable;
    use crate::chunk::Chunk;
    use crate::expr::{col, count_star, lit};
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn scan3() -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Utf8),
        ]));
        let source = Arc::new(MemTable::from_chunk(
            Arc::clone(&schema),
            Chunk::empty(&schema),
        ));
        LogicalPlan::Scan {
            table: "t".into(),
            source,
            schema,
            projection: None,
            filters: vec![],
        }
    }

    fn projection_of(plan: LogicalPlan, names: &[&str]) -> LogicalPlan {
        let in_schema = plan.schema();
        let exprs: Vec<Expr> = names
            .iter()
            .map(|n| resolve_expr(&col(n), &in_schema).unwrap())
            .collect();
        let schema = Arc::new(Schema::new(
            exprs
                .iter()
                .map(|e| expr_to_field(e, &in_schema).unwrap())
                .collect(),
        ));
        LogicalPlan::Projection {
            input: Arc::new(plan),
            exprs,
            schema,
        }
    }

    #[test]
    fn narrows_scan_under_projection() {
        let plan = projection_of(scan3(), &["c"]);
        let out = ProjectionPruning.optimize(&plan).unwrap();
        // A bare-column projection collapses straight into the scan.
        let LogicalPlan::Scan {
            projection, schema, ..
        } = &out
        else {
            panic!("collapsed scan expected, got {out:?}")
        };
        assert_eq!(projection.as_deref(), Some(&[2usize][..]));
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.field(0).name, "c");
    }

    #[test]
    fn computed_projection_is_not_collapsed() {
        let s = scan3();
        let in_schema = s.schema();
        let exprs = vec![resolve_expr(&col("a").add(col("b")).alias("ab"), &in_schema).unwrap()];
        let schema = Arc::new(Schema::new(vec![Field::new("ab", DataType::Int64)]));
        let plan = LogicalPlan::Projection {
            input: Arc::new(s),
            exprs,
            schema,
        };
        let out = ProjectionPruning.optimize(&plan).unwrap();
        let LogicalPlan::Projection { input, .. } = &out else {
            panic!("computed projection must remain")
        };
        let LogicalPlan::Scan { projection, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(
            projection.as_deref(),
            Some(&[0usize, 1][..]),
            "c pruned away"
        );
    }

    #[test]
    fn narrows_through_filter_keeping_predicate_columns() {
        let s = scan3();
        let pred = resolve_expr(&col("b").gt(lit(1i64)), &s.schema()).unwrap();
        let filtered = LogicalPlan::Filter {
            input: Arc::new(s),
            predicate: pred,
        };
        let plan = projection_of(filtered, &["a"]);
        let out = ProjectionPruning.optimize(&plan).unwrap();
        let LogicalPlan::Projection { input, .. } = &out else {
            panic!()
        };
        let LogicalPlan::Filter {
            input: scan,
            predicate,
        } = input.as_ref()
        else {
            panic!("filter expected")
        };
        let LogicalPlan::Scan { projection, .. } = scan.as_ref() else {
            panic!()
        };
        assert_eq!(projection.as_deref(), Some(&[0usize, 1][..]), "a + b kept");
        let mut refs = Vec::new();
        predicate.referenced_indices(&mut refs);
        assert_eq!(refs, vec![1], "b remapped to position 1");
    }

    #[test]
    fn narrows_under_aggregate() {
        let s = scan3();
        let in_schema = s.schema();
        let group = vec![resolve_expr(&col("a"), &in_schema).unwrap()];
        let aggs = vec![count_star()];
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("count(*)", DataType::Int64),
        ]));
        let plan = LogicalPlan::Aggregate {
            input: Arc::new(s),
            group_exprs: group,
            agg_exprs: aggs,
            schema,
        };
        let out = ProjectionPruning.optimize(&plan).unwrap();
        let LogicalPlan::Aggregate { input, .. } = &out else {
            panic!()
        };
        let LogicalPlan::Scan { projection, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(projection.as_deref(), Some(&[0usize][..]));
    }

    #[test]
    fn identity_projection_collapses_into_scan() {
        let plan = projection_of(scan3(), &["a", "b", "c"]);
        let out = ProjectionPruning.optimize(&plan).unwrap();
        let LogicalPlan::Scan {
            projection, schema, ..
        } = &out
        else {
            panic!("collapsed scan expected, got {out:?}")
        };
        assert_eq!(projection.as_deref(), Some(&[0usize, 1, 2][..]));
        assert_eq!(schema.len(), 3);
    }

    #[test]
    fn prunes_both_join_sides() {
        let l = scan3();
        let r = scan3();
        let join_schema = Arc::new(l.schema().join(&r.schema()));
        let mut lk = col("a");
        if let Expr::Column(c) = &mut lk {
            c.index = Some(0);
        }
        let mut rk = col("a");
        if let Expr::Column(c) = &mut rk {
            c.index = Some(0);
        }
        let join = LogicalPlan::Join {
            left: Arc::new(l),
            right: Arc::new(r),
            on: vec![(lk, rk)],
            join_type: crate::logical::JoinType::Inner,
            schema: Arc::clone(&join_schema),
        };
        // Project right side's c (global index 5).
        let mut ce = col("c");
        if let Expr::Column(cc) = &mut ce {
            cc.index = Some(5);
        }
        let out_schema = Arc::new(Schema::new(vec![Field::new("c", DataType::Utf8)]));
        let plan = LogicalPlan::Projection {
            input: Arc::new(join),
            exprs: vec![ce],
            schema: out_schema,
        };
        let out = ProjectionPruning.optimize(&plan).unwrap();
        let LogicalPlan::Projection { input, exprs, .. } = &out else {
            panic!()
        };
        let LogicalPlan::Join {
            left, right, on, ..
        } = input.as_ref()
        else {
            panic!()
        };
        let LogicalPlan::Scan { projection: lp, .. } = left.as_ref() else {
            panic!()
        };
        let LogicalPlan::Scan { projection: rp, .. } = right.as_ref() else {
            panic!()
        };
        assert_eq!(
            lp.as_deref(),
            Some(&[0usize][..]),
            "left keeps only the key"
        );
        assert_eq!(rp.as_deref(), Some(&[0usize, 2][..]), "right keeps key + c");
        let mut refs = Vec::new();
        exprs[0].referenced_indices(&mut refs);
        assert_eq!(refs, vec![2], "c remapped: left width 1 + right-local 1");
        let mut kref = Vec::new();
        on[0].1.referenced_indices(&mut kref);
        assert_eq!(kref, vec![0]);
    }
}
