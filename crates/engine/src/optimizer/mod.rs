//! The rule-based logical optimizer — the analogue of Catalyst's logical
//! optimization phase.
//!
//! Rules are trait objects so libraries can register their own (the
//! extension seam shown in the paper's Figure 1: *"Our library includes
//! optimization rules that make regular Spark SQL queries aware of our
//! custom indexed operations"*). The built-in pipeline:
//!
//! 1. [`ConstantFolding`] — evaluate literal subtrees.
//! 2. [`SimplifyPredicates`] — drop `TRUE` filters, collapse `FALSE`
//!    filters to empty relations.
//! 3. [`PredicatePushdown`] — move filters toward the data, including
//!    *into* table sources that support native evaluation; this is what
//!    routes an equality filter on an indexed column into a cTrie lookup.
//! 4. [`ProjectionPruning`] — narrow scans to the referenced columns (the
//!    columnar cache then touches only those columns, which is why the
//!    vanilla engine wins the paper's projection microbenchmark).

mod folding;
mod pruning;
mod pushdown;

pub use folding::{ConstantFolding, SimplifyPredicates};
pub use pruning::ProjectionPruning;
pub use pushdown::PredicatePushdown;

use std::sync::Arc;

use crate::error::Result;
use crate::logical::LogicalPlan;

/// A logical-to-logical rewrite.
pub trait OptimizerRule: Send + Sync {
    /// Rule name (for EXPLAIN / debugging).
    fn name(&self) -> &str;
    /// Rewrite the plan (return it unchanged if not applicable).
    fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan>;
}

/// An ordered rule pipeline.
pub struct Optimizer {
    rules: Vec<Arc<dyn OptimizerRule>>,
}

impl Optimizer {
    /// The default pipeline plus `extra` rules appended at the end.
    pub fn with_rules(extra: Vec<Arc<dyn OptimizerRule>>) -> Self {
        let mut rules: Vec<Arc<dyn OptimizerRule>> = vec![
            Arc::new(ConstantFolding),
            Arc::new(SimplifyPredicates),
            Arc::new(PredicatePushdown),
            Arc::new(ProjectionPruning),
        ];
        rules.extend(extra);
        Optimizer { rules }
    }

    /// Run every rule once, in order.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let mut plan = plan.clone();
        for rule in &self.rules {
            plan = rule.optimize(&plan)?;
        }
        Ok(plan)
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Self::with_rules(Vec::new())
    }
}

/// Rebuild a plan node with children produced by `f` (bottom-up transform
/// helper shared by the rules).
pub(crate) fn map_children(
    plan: &LogicalPlan,
    f: &mut impl FnMut(&LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => plan.clone(),
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Arc::new(f(input)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Arc::new(f(input)?),
            exprs: exprs.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
            schema,
        } => LogicalPlan::Join {
            left: Arc::new(f(left)?),
            right: Arc::new(f(right)?),
            on: on.clone(),
            join_type: *join_type,
            schema: Arc::clone(schema),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            agg_exprs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Arc::new(f(input)?),
            group_exprs: group_exprs.clone(),
            agg_exprs: agg_exprs.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Sort { input, exprs } => LogicalPlan::Sort {
            input: Arc::new(f(input)?),
            exprs: exprs.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Arc::new(f(input)?),
            n: *n,
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| f(i).map(Arc::new))
                .collect::<Result<_>>()?,
            schema: Arc::clone(schema),
        },
    })
}
