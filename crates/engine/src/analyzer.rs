//! Name resolution and type coercion — the engine's analysis layer
//! (the analogue of Catalyst's analyzer).
//!
//! The DataFrame API and the SQL binder both resolve expressions eagerly
//! against their input schema (as Spark does), so every plan the optimizer
//! sees has bound column indices and coherent types.

use crate::error::{EngineError, Result};
use crate::expr::{AggFunc, BinaryOp, ColumnRefExpr, Expr, ScalarFunc};
use crate::schema::{Field, Schema};
use crate::types::DataType;

/// Resolve column references in `expr` against `schema` (filling indices)
/// and insert casts so both sides of every binary operator agree.
pub fn resolve_expr(expr: &Expr, schema: &Schema) -> Result<Expr> {
    let resolved = bind_columns(expr, schema)?;
    coerce(&resolved, schema)
}

fn bind_columns(expr: &Expr, schema: &Schema) -> Result<Expr> {
    Ok(match expr {
        Expr::Column(c) => {
            let index = schema.index_of(c.qualifier.as_deref(), &c.name)?;
            Expr::Column(ColumnRefExpr {
                qualifier: c.qualifier.clone(),
                name: c.name.clone(),
                index: Some(index),
            })
        }
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bind_columns(left, schema)?),
            op: *op,
            right: Box::new(bind_columns(right, schema)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(bind_columns(e, schema)?)),
        Expr::IsNull(e) => Expr::IsNull(Box::new(bind_columns(e, schema)?)),
        Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(bind_columns(e, schema)?)),
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(bind_columns(expr, schema)?),
            to: *to,
        },
        Expr::Alias(e, n) => Expr::Alias(Box::new(bind_columns(e, schema)?), n.clone()),
        Expr::Aggregate { func, arg } => Expr::Aggregate {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(bind_columns(a, schema)?)),
                None => None,
            },
        },
        Expr::Scalar { func, args } => Expr::Scalar {
            func: *func,
            args: args
                .iter()
                .map(|a| bind_columns(a, schema))
                .collect::<Result<_>>()?,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_columns(expr, schema)?),
            list: list
                .iter()
                .map(|e| bind_columns(e, schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(bind_columns(expr, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
    })
}

/// Insert casts so binary operands share a type; verify logic/arithmetic
/// typing.
fn coerce(expr: &Expr, schema: &Schema) -> Result<Expr> {
    Ok(match expr {
        Expr::Binary { left, op, right } => {
            let l = coerce(left, schema)?;
            let r = coerce(right, schema)?;
            let lt = expr_type(&l, schema)?;
            let rt = expr_type(&r, schema)?;
            if op.is_logic() {
                for (side, t) in [("left", lt), ("right", rt)] {
                    if t != DataType::Boolean {
                        return Err(EngineError::type_err(format!(
                            "{side} operand of {op} must be BOOLEAN, got {t}"
                        )));
                    }
                }
                return Ok(Expr::Binary {
                    left: Box::new(l),
                    op: *op,
                    right: Box::new(r),
                });
            }
            let (l, r) = unify_operands(l, lt, r, rt, *op)?;
            Expr::Binary {
                left: Box::new(l),
                op: *op,
                right: Box::new(r),
            }
        }
        Expr::Not(e) => {
            let e = coerce(e, schema)?;
            if expr_type(&e, schema)? != DataType::Boolean {
                return Err(EngineError::type_err("NOT requires a BOOLEAN operand"));
            }
            Expr::Not(Box::new(e))
        }
        Expr::IsNull(e) => Expr::IsNull(Box::new(coerce(e, schema)?)),
        Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(coerce(e, schema)?)),
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(coerce(expr, schema)?),
            to: *to,
        },
        Expr::Alias(e, n) => Expr::Alias(Box::new(coerce(e, schema)?), n.clone()),
        Expr::Aggregate { func, arg } => {
            let arg = match arg {
                Some(a) => {
                    let a = coerce(a, schema)?;
                    let t = expr_type(&a, schema)?;
                    match func {
                        AggFunc::Sum | AggFunc::Avg if !t.is_numeric() => {
                            return Err(EngineError::type_err(format!(
                                "{func} requires a numeric argument, got {t}"
                            )))
                        }
                        _ => {}
                    }
                    Some(Box::new(a))
                }
                None => None,
            };
            Expr::Aggregate { func: *func, arg }
        }
        Expr::Scalar { func, args } => {
            let args: Vec<Expr> = args
                .iter()
                .map(|a| coerce(a, schema))
                .collect::<Result<_>>()?;
            check_scalar_args(*func, &args, schema)?;
            Expr::Scalar { func: *func, args }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let tested = coerce(expr, schema)?;
            let tt = expr_type(&tested, schema)?;
            let list = list
                .iter()
                .map(|e| {
                    let e = coerce(e, schema)?;
                    // A NULL entry is valid against any tested type —
                    // under three-valued logic it can only ever yield
                    // NULL, never a type error.
                    if matches!(&e, Expr::Literal(crate::types::Value::Null)) {
                        return Ok(e);
                    }
                    let et = expr_type(&e, schema)?;
                    if et == tt {
                        return Ok(e);
                    }
                    // Numeric widening toward the tested type.
                    if et.numeric_rank().is_some() && tt.numeric_rank().is_some() {
                        return Ok(e.cast(tt));
                    }
                    Err(EngineError::type_err(format!(
                        "IN list entry type {et} does not match tested type {tt}"
                    )))
                })
                .collect::<Result<_>>()?;
            Expr::InList {
                expr: Box::new(tested),
                list,
                negated: *negated,
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let tested = coerce(expr, schema)?;
            if expr_type(&tested, schema)? != DataType::Utf8 {
                return Err(EngineError::type_err("LIKE requires a UTF8 operand"));
            }
            Expr::Like {
                expr: Box::new(tested),
                pattern: pattern.clone(),
                negated: *negated,
            }
        }
        other => other.clone(),
    })
}

/// Argument checking for scalar functions.
fn check_scalar_args(func: ScalarFunc, args: &[Expr], schema: &Schema) -> Result<()> {
    let arity_ok = match func {
        ScalarFunc::Coalesce => !args.is_empty(),
        _ => args.len() == 1,
    };
    if !arity_ok {
        return Err(EngineError::type_err(format!(
            "wrong number of arguments to {func}"
        )));
    }
    match func {
        ScalarFunc::Upper | ScalarFunc::Lower | ScalarFunc::Length => {
            let t = expr_type(&args[0], schema)?;
            if t != DataType::Utf8 {
                return Err(EngineError::type_err(format!(
                    "{func} requires UTF8, got {t}"
                )));
            }
        }
        ScalarFunc::Abs => {
            let t = expr_type(&args[0], schema)?;
            if !t.is_numeric() {
                return Err(EngineError::type_err(format!(
                    "{func} requires a numeric argument, got {t}"
                )));
            }
        }
        ScalarFunc::Coalesce => {
            let t0 = expr_type(&args[0], schema)?;
            for a in &args[1..] {
                if expr_type(a, schema)? != t0 {
                    return Err(EngineError::type_err(
                        "coalesce arguments must share one type",
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Make two operand types agree, inserting casts as needed.
fn unify_operands(
    l: Expr,
    lt: DataType,
    r: Expr,
    rt: DataType,
    op: BinaryOp,
) -> Result<(Expr, Expr)> {
    if lt == rt {
        if op.is_arithmetic() && !lt.is_numeric() {
            return Err(EngineError::type_err(format!("cannot apply {op} to {lt}")));
        }
        return Ok((l, r));
    }
    // Numeric widening.
    if let (Some(lr), Some(rr)) = (lt.numeric_rank(), rt.numeric_rank()) {
        let target = if lr >= rr { lt } else { rt };
        let l = if lt == target { l } else { l.cast(target) };
        let r = if rt == target { r } else { r.cast(target) };
        return Ok((l, r));
    }
    // Timestamps compare/compute with integers via Int64.
    let ts_pair = matches!(
        (lt, rt),
        (DataType::Timestamp, DataType::Int64)
            | (DataType::Int64, DataType::Timestamp)
            | (DataType::Timestamp, DataType::Int32)
            | (DataType::Int32, DataType::Timestamp)
    );
    if ts_pair {
        return Ok((l.cast(DataType::Int64), r.cast(DataType::Int64)));
    }
    Err(EngineError::type_err(format!(
        "cannot apply {op} to {lt} and {rt}"
    )))
}

/// The data type `expr` evaluates to over `schema`. Requires bound columns.
pub fn expr_type(expr: &Expr, schema: &Schema) -> Result<DataType> {
    Ok(match expr {
        Expr::Column(c) => {
            let idx = c.index.ok_or_else(|| {
                EngineError::internal(format!("unresolved column {}", c.display_name()))
            })?;
            schema.field(idx).data_type
        }
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Boolean),
        Expr::Binary { left, op, right } => {
            if op.is_comparison() || op.is_logic() {
                DataType::Boolean
            } else {
                // Arithmetic: operands are unified post-coercion.
                let lt = expr_type(left, schema)?;
                let rt = expr_type(right, schema)?;
                if lt.numeric_rank() >= rt.numeric_rank() {
                    lt
                } else {
                    rt
                }
            }
        }
        Expr::Not(_) | Expr::IsNull(_) | Expr::IsNotNull(_) => DataType::Boolean,
        Expr::Cast { to, .. } => *to,
        Expr::Alias(e, _) => expr_type(e, schema)?,
        Expr::Aggregate { func, arg } => match func {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match arg {
                Some(a) => match expr_type(a, schema)? {
                    DataType::Float64 => DataType::Float64,
                    _ => DataType::Int64,
                },
                None => DataType::Int64,
            },
            AggFunc::Min | AggFunc::Max => match arg {
                Some(a) => expr_type(a, schema)?,
                None => {
                    return Err(EngineError::type_err(format!(
                        "{func} requires an argument"
                    )))
                }
            },
        },
        Expr::Scalar { func, args } => match func {
            ScalarFunc::Upper | ScalarFunc::Lower => DataType::Utf8,
            ScalarFunc::Length => DataType::Int64,
            ScalarFunc::Abs => expr_type(&args[0], schema)?,
            ScalarFunc::Coalesce => expr_type(&args[0], schema)?,
        },
        Expr::InList { .. } | Expr::Like { .. } => DataType::Boolean,
    })
}

/// Whether `expr` may evaluate to null over `schema`.
pub fn expr_nullable(expr: &Expr, schema: &Schema) -> bool {
    match expr {
        Expr::Column(c) => c.index.is_none_or(|i| schema.field(i).nullable),
        Expr::Literal(v) => v.is_null(),
        Expr::Binary { left, right, .. } => {
            expr_nullable(left, schema) || expr_nullable(right, schema)
        }
        Expr::Not(e) => expr_nullable(e, schema),
        Expr::IsNull(_) | Expr::IsNotNull(_) => false,
        Expr::Cast { expr, .. } => expr_nullable(expr, schema),
        Expr::Alias(e, _) => expr_nullable(e, schema),
        Expr::Aggregate { func, .. } => !matches!(func, AggFunc::Count),
        Expr::Scalar { args, .. } => args.iter().any(|a| expr_nullable(a, schema)),
        Expr::InList { expr, list, .. } => {
            expr_nullable(expr, schema) || list.iter().any(|e| expr_nullable(e, schema))
        }
        Expr::Like { expr, .. } => expr_nullable(expr, schema),
    }
}

/// Build the output field for a projected expression.
pub fn expr_to_field(expr: &Expr, schema: &Schema) -> Result<Field> {
    let dt = expr_type(expr, schema)?;
    let nullable = expr_nullable(expr, schema);
    let qualifier = match expr {
        Expr::Column(c) => c
            .index
            .and_then(|i| schema.field(i).qualifier.clone())
            .or_else(|| c.qualifier.clone()),
        _ => None,
    };
    Ok(Field {
        name: expr.output_name(),
        data_type: dt,
        nullable,
        qualifier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, count_star, lit, sum};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int32),
            Field::new("b", DataType::Int64),
            Field::required("s", DataType::Utf8),
            Field::new("t", DataType::Timestamp),
            Field::new("f", DataType::Float64),
        ])
    }

    #[test]
    fn in_list_accepts_null_entries_and_rejects_type_mismatches() {
        let s = schema();
        // NULL entries type-check against any tested type (3VL).
        let e = resolve_expr(
            &col("b").in_list(vec![lit(5i64), Expr::Literal(crate::types::Value::Null)]),
            &s,
        );
        assert!(e.is_ok(), "NULL IN-list entry must be accepted: {e:?}");
        // Genuine mismatches still error.
        assert!(resolve_expr(&col("b").in_list(vec![lit("x")]), &s).is_err());
    }

    #[test]
    fn binds_column_indices() {
        let s = schema();
        let e = resolve_expr(&col("b").eq(lit(5i64)), &s).unwrap();
        let mut idx = Vec::new();
        e.referenced_indices(&mut idx);
        assert_eq!(idx, vec![1]);
    }

    #[test]
    fn widens_int32_to_int64() {
        let s = schema();
        let e = resolve_expr(&col("a").eq(lit(5i64)), &s).unwrap();
        // the Int32 column must be cast up
        assert!(e.to_string().contains("CAST(a AS INT64)"), "{e}");
    }

    #[test]
    fn widens_to_float() {
        let s = schema();
        let e = resolve_expr(&col("b").add(col("f")), &s).unwrap();
        assert_eq!(expr_type(&e, &s).unwrap(), DataType::Float64);
    }

    #[test]
    fn timestamp_vs_int_comparison() {
        let s = schema();
        let e = resolve_expr(&col("t").gt(lit(100i64)), &s).unwrap();
        assert_eq!(expr_type(&e, &s).unwrap(), DataType::Boolean);
        assert!(e.to_string().contains("CAST(t AS INT64)"));
    }

    #[test]
    fn rejects_string_arithmetic() {
        let s = schema();
        assert!(resolve_expr(&col("s").add(lit(1i64)), &s).is_err());
        assert!(resolve_expr(&col("s").add(col("s")), &s).is_err());
    }

    #[test]
    fn rejects_non_boolean_logic() {
        let s = schema();
        assert!(resolve_expr(&col("a").and(col("b")), &s).is_err());
        assert!(resolve_expr(&col("a").eq(lit(1i64)).and(col("b").gt(lit(0i64))), &s).is_ok());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        assert!(matches!(
            resolve_expr(&col("zzz"), &s),
            Err(EngineError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn aggregate_types() {
        let s = schema();
        assert_eq!(expr_type(&count_star(), &s).unwrap(), DataType::Int64);
        let e = resolve_expr(&sum(col("a")), &s).unwrap();
        assert_eq!(expr_type(&e, &s).unwrap(), DataType::Int64);
        assert!(resolve_expr(&sum(col("s")), &s).is_err());
    }

    #[test]
    fn field_inherits_nullability() {
        let s = schema();
        let e = resolve_expr(&col("s"), &s).unwrap();
        let f = expr_to_field(&e, &s).unwrap();
        assert!(!f.nullable);
        assert_eq!(f.data_type, DataType::Utf8);
        let g = expr_to_field(&resolve_expr(&col("a"), &s).unwrap(), &s).unwrap();
        assert!(g.nullable);
    }
}
