//! Minimal CSV import/export (no external dependencies).
//!
//! Enough to move datasets in and out of the engine: RFC-4180-style
//! quoting, header row, schema-driven parsing with `NULL`/empty-as-null
//! handling. The SNB generator can dump its tables for external tools and
//! users can load their own data.

use std::io::{BufRead, Write};

use crate::chunk::Chunk;
use crate::column::ColumnBuilder;
use crate::error::{EngineError, Result};
use crate::schema::SchemaRef;
use crate::types::{DataType, Value};

/// Split one CSV record, honouring double quotes and `""` escapes.
fn split_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => {
                return Err(EngineError::exec(format!(
                    "stray quote inside unquoted CSV field: {line}"
                )))
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    if in_quotes {
        return Err(EngineError::exec(format!(
            "unterminated quote in CSV record: {line}"
        )));
    }
    fields.push(cur);
    Ok(fields)
}

fn parse_value(field: &str, dt: DataType) -> Result<Value> {
    if field.is_empty() || field == "NULL" {
        return Ok(Value::Null);
    }
    let bad = |what: &str| EngineError::exec(format!("cannot parse {field:?} as {what}"));
    Ok(match dt {
        DataType::Boolean => Value::Boolean(match field {
            "true" | "TRUE" | "1" => true,
            "false" | "FALSE" | "0" => false,
            _ => return Err(bad("BOOLEAN")),
        }),
        DataType::Int32 => Value::Int32(field.parse().map_err(|_| bad("INT32"))?),
        DataType::Int64 => Value::Int64(field.parse().map_err(|_| bad("INT64"))?),
        DataType::Float64 => Value::Float64(field.parse().map_err(|_| bad("FLOAT64"))?),
        DataType::Utf8 => Value::Utf8(field.to_string()),
        DataType::Timestamp => Value::Timestamp(field.parse().map_err(|_| bad("TIMESTAMP"))?),
    })
}

/// Read CSV (with a header row that must match `schema`'s column names)
/// into a single chunk.
pub fn read_csv(reader: impl BufRead, schema: &SchemaRef) -> Result<Chunk> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| EngineError::exec("empty CSV input"))?
        .map_err(|e| EngineError::exec(format!("CSV read error: {e}")))?;
    let names = split_record(&header)?;
    if names.len() != schema.len() || names.iter().zip(&schema.fields).any(|(n, f)| *n != f.name) {
        return Err(EngineError::exec(format!(
            "CSV header {names:?} does not match schema {schema}"
        )));
    }
    let mut builders: Vec<ColumnBuilder> = schema
        .fields
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type))
        .collect();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| EngineError::exec(format!("CSV read error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line)?;
        if fields.len() != schema.len() {
            return Err(EngineError::exec(format!(
                "CSV record {} has {} fields, expected {}",
                lineno + 2,
                fields.len(),
                schema.len()
            )));
        }
        for ((b, field), f) in builders.iter_mut().zip(&fields).zip(&schema.fields) {
            b.push(&parse_value(field, f.data_type)?)?;
        }
    }
    Chunk::new(
        builders
            .into_iter()
            .map(|b| std::sync::Arc::new(b.finish()))
            .collect(),
    )
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write `chunk` as CSV with a header row (nulls as empty fields).
pub fn write_csv(writer: &mut impl Write, schema: &SchemaRef, chunk: &Chunk) -> Result<()> {
    let io_err = |e: std::io::Error| EngineError::exec(format!("CSV write error: {e}"));
    let header: Vec<String> = schema.fields.iter().map(|f| quote(&f.name)).collect();
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for row in 0..chunk.len() {
        let fields: Vec<String> = (0..chunk.num_columns())
            .map(|c| match chunk.value_at(c, row) {
                Value::Null => String::new(),
                v => quote(&v.to_string()),
            })
            .collect();
        writeln!(writer, "{}", fields.join(",")).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("score", DataType::Float64),
            Field::new("ok", DataType::Boolean),
        ]))
    }

    #[test]
    fn roundtrip() {
        let s = schema();
        let chunk = Chunk::from_rows(
            &s,
            &[
                vec![
                    Value::Int64(1),
                    Value::Utf8("plain".into()),
                    Value::Float64(1.5),
                    Value::Boolean(true),
                ],
                vec![
                    Value::Int64(2),
                    Value::Utf8("with, comma and \"quotes\"".into()),
                    Value::Null,
                    Value::Boolean(false),
                ],
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &s, &chunk).unwrap();
        let back = read_csv(std::io::Cursor::new(&buf), &s).unwrap();
        assert_eq!(back.to_rows(), chunk.to_rows());
    }

    #[test]
    fn parses_nulls_and_rejects_garbage() {
        let s = schema();
        let csv = "id,name,score,ok\n1,alice,,true\n,NULL,2.5,0\n";
        let chunk = read_csv(std::io::Cursor::new(csv), &s).unwrap();
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.value_at(2, 0), Value::Null);
        assert_eq!(chunk.value_at(0, 1), Value::Null);
        // The literal "NULL" token reads back as SQL NULL, even for strings.
        assert_eq!(chunk.value_at(1, 1), Value::Null);
        let bad = "id,name,score,ok\nxx,a,1.0,true\n";
        assert!(read_csv(std::io::Cursor::new(bad), &s).is_err());
    }

    #[test]
    fn header_mismatch_rejected() {
        let s = schema();
        assert!(read_csv(std::io::Cursor::new("a,b,c,d\n"), &s).is_err());
        assert!(read_csv(std::io::Cursor::new("id,name,score\n"), &s).is_err());
        assert!(read_csv(std::io::Cursor::new(""), &s).is_err());
    }

    #[test]
    fn quoted_field_edge_cases() {
        assert_eq!(split_record("a,\"b,c\",d").unwrap(), vec!["a", "b,c", "d"]);
        assert_eq!(
            split_record("\"he said \"\"hi\"\"\"").unwrap(),
            vec!["he said \"hi\""]
        );
        assert_eq!(split_record("a,,c").unwrap(), vec!["a", "", "c"]);
        assert!(split_record("a\"b").is_err());
        assert!(split_record("\"unterminated").is_err());
    }

    #[test]
    fn wrong_arity_rejected() {
        let s = schema();
        let csv = "id,name,score,ok\n1,a\n";
        assert!(read_csv(std::io::Cursor::new(csv), &s).is_err());
    }
}
