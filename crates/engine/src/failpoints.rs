//! Named fault-injection sites in the engine's physical layer.
//!
//! Each constant names a site where `idf_fail::eval` is called; tests
//! configure sites via `idf_fail::FailGuard` to return errors, panic, or
//! delay. See the workspace `idf-fail` crate and the "Robustness" section
//! of DESIGN.md for the full catalogue.

use crate::error::{EngineError, Result};

/// Start of a shuffle exchange: triggered once per `ShuffleExec`
/// materialization, before any input chunk is buffered.
pub const SHUFFLE_EXCHANGE: &str = "engine::shuffle::exchange";

/// Start of a partition worker task inside `execute_collect_partitions`.
pub const WORKER_START: &str = "engine::exec::worker";

/// Every registered engine site, for chaos suites that iterate them.
pub const SITES: &[&str] = &[SHUFFLE_EXCHANGE, WORKER_START];

/// Evaluate the failpoint at `site`, mapping an injected error into a
/// typed [`EngineError::Execution`] that names the site.
#[inline]
pub fn check(site: &str) -> Result<()> {
    idf_fail::eval(site)
        .map_err(|msg| EngineError::exec(format!("injected failure at {site}: {msg}")))
}
