//! Data types and scalar values.

use std::fmt;

/// The engine's column data types.
///
/// The Indexed DataFrame paper recommends indexing primitive column types —
/// integers, floats, strings and datetimes — which is exactly this set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Boolean,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Milliseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// Whether the type is numeric (participates in arithmetic).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }

    /// Numeric widening rank used by the coercion rules
    /// (Int32 < Int64 < Float64).
    pub(crate) fn numeric_rank(&self) -> Option<u8> {
        match self {
            DataType::Int32 => Some(0),
            DataType::Int64 => Some(1),
            DataType::Float64 => Some(2),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Boolean => "BOOLEAN",
            DataType::Int32 => "INT32",
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Utf8 => "UTF8",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A scalar value (one cell of a column, or a literal in an expression).
///
/// `Eq`/`Ord`/`Hash` are total: floats compare via their IEEE bit patterns
/// for hashing and use `total_cmp` for ordering, and `Null` sorts first.
/// This makes `Value` directly usable as a join/group key.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean value.
    Boolean(bool),
    /// 32-bit integer value.
    Int32(i32),
    /// 64-bit integer value.
    Int64(i64),
    /// 64-bit float value.
    Float64(f64),
    /// String value.
    Utf8(String),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Utf8(_) => Some(DataType::Utf8),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as i64 if losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(i64::from(*v)),
            Value::Int64(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as f64 if numerically possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(f64::from(*v)),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Cast to `to`, following SQL semantics (`Null` stays `Null`).
    pub fn cast(&self, to: DataType) -> Option<Value> {
        if self.is_null() {
            return Some(Value::Null);
        }
        match to {
            DataType::Boolean => match self {
                Value::Boolean(b) => Some(Value::Boolean(*b)),
                _ => None,
            },
            DataType::Int32 => match self {
                Value::Int32(v) => Some(Value::Int32(*v)),
                Value::Int64(v) => i32::try_from(*v).ok().map(Value::Int32),
                Value::Float64(v) => Some(Value::Int32(*v as i32)),
                _ => None,
            },
            DataType::Int64 => match self {
                Value::Int32(v) => Some(Value::Int64(i64::from(*v))),
                Value::Int64(v) => Some(Value::Int64(*v)),
                Value::Float64(v) => Some(Value::Int64(*v as i64)),
                Value::Timestamp(v) => Some(Value::Int64(*v)),
                _ => None,
            },
            DataType::Float64 => self.as_f64().map(Value::Float64),
            DataType::Utf8 => Some(Value::Utf8(self.to_string())),
            DataType::Timestamp => match self {
                Value::Int64(v) | Value::Timestamp(v) => Some(Value::Timestamp(*v)),
                Value::Int32(v) => Some(Value::Timestamp(i64::from(*v))),
                _ => None,
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Boolean(a), Boolean(b)) => a == b,
            (Int32(a), Int32(b)) => a == b,
            (Int64(a), Int64(b)) => a == b,
            (Float64(a), Float64(b)) => a.to_bits() == b.to_bits(),
            (Utf8(a), Utf8(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Boolean(b) => b.hash(state),
            Value::Int32(v) => v.hash(state),
            Value::Int64(v) => v.hash(state),
            Value::Float64(v) => v.to_bits().hash(state),
            Value::Utf8(s) => s.hash(state),
            Value::Timestamp(v) => v.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Int32(a), Int32(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            // Mixed numeric comparison (post-coercion plans never hit this,
            // but sorting heterogeneous literal rows must not panic).
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => format!("{a}").cmp(&format!("{b}")),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Utf8(s) => f.write_str(s),
            Value::Timestamp(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_rank_ordering() {
        assert!(DataType::Int32.numeric_rank() < DataType::Int64.numeric_rank());
        assert!(DataType::Int64.numeric_rank() < DataType::Float64.numeric_rank());
        assert_eq!(DataType::Utf8.numeric_rank(), None);
    }

    #[test]
    fn value_casts() {
        assert_eq!(Value::Int32(5).cast(DataType::Int64), Some(Value::Int64(5)));
        assert_eq!(
            Value::Int64(5).cast(DataType::Float64),
            Some(Value::Float64(5.0))
        );
        assert_eq!(Value::Null.cast(DataType::Int64), Some(Value::Null));
        assert_eq!(Value::Utf8("x".into()).cast(DataType::Int64), None);
        assert_eq!(
            Value::Int64(i64::from(i32::MAX) + 1).cast(DataType::Int32),
            None,
            "overflowing narrow must fail"
        );
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int64(2), Value::Null, Value::Int64(1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int64(1));
    }

    #[test]
    fn float_eq_and_hash_total() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Float64(f64::NAN));
        assert!(set.contains(&Value::Float64(f64::NAN)));
        assert!(!set.contains(&Value::Float64(0.0)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Utf8("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Boolean(true).to_string(), "true");
    }
}
