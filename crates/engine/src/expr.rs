//! Logical expressions: the AST the DataFrame API and SQL front end build,
//! the analyzer resolves, and the optimizer rewrites.

use std::fmt;

use crate::types::{DataType, Value};

/// A column reference, unresolved (`name`, optional `qualifier`) until the
/// analyzer fills in `index` against the input schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRefExpr {
    /// Optional table qualifier (`person` in `person.id`).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Position in the operator's input schema; `None` until analyzed.
    pub index: Option<usize>,
}

impl ColumnRefExpr {
    /// Display name (`qualifier.name` or `name`).
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Multiply,
    /// `/`
    Divide,
    /// `%`
    Modulo,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// Whether the operator yields a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// Whether the operator is boolean conjunction/disjunction.
    pub fn is_logic(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// Whether the operator is arithmetic.
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinaryOp::Plus
                | BinaryOp::Minus
                | BinaryOp::Multiply
                | BinaryOp::Divide
                | BinaryOp::Modulo
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Scalar (per-row) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// Uppercase a string.
    Upper,
    /// Lowercase a string.
    Lower,
    /// Byte length of a string.
    Length,
    /// Absolute value of a number.
    Abs,
    /// First non-null argument.
    Coalesce,
}

impl fmt::Display for ScalarFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarFunc::Upper => "upper",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Length => "length",
            ScalarFunc::Abs => "abs",
            ScalarFunc::Coalesce => "coalesce",
        };
        f.write_str(s)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)` when the argument is absent.
    Count,
    /// `SUM(expr)`
    Sum,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `AVG(expr)`
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// A logical expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRefExpr),
    /// Literal scalar.
    Literal(Value),
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Boolean negation.
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// Type conversion.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        to: DataType,
    },
    /// Output renaming.
    Alias(Box<Expr>, String),
    /// Aggregate call; only valid inside `Aggregate` plans.
    Aggregate {
        /// The function.
        func: AggFunc,
        /// Argument; `None` means `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
    /// Scalar function call.
    Scalar {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, ...)` with literal list entries.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (SQL `%`/`_` wildcards).
    Like {
        /// Tested string expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
}

impl Expr {
    /// The column's output name when this expression is projected.
    pub fn output_name(&self) -> String {
        match self {
            Expr::Column(c) => c.name.clone(),
            Expr::Literal(v) => v.to_string(),
            Expr::Alias(_, name) => name.clone(),
            Expr::Binary { left, op, right } => {
                format!("{} {op} {}", left.output_name(), right.output_name())
            }
            Expr::Not(e) => format!("NOT {}", e.output_name()),
            Expr::IsNull(e) => format!("{} IS NULL", e.output_name()),
            Expr::IsNotNull(e) => format!("{} IS NOT NULL", e.output_name()),
            Expr::Cast { expr, to } => format!("CAST({} AS {to})", expr.output_name()),
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => format!("{func}({})", a.output_name()),
                None => format!("{func}(*)"),
            },
            Expr::Scalar { func, args } => {
                let parts: Vec<String> = args.iter().map(Expr::output_name).collect();
                format!("{func}({})", parts.join(", "))
            }
            Expr::InList { expr, negated, .. } => format!(
                "{}{} IN (...)",
                expr.output_name(),
                if *negated { " NOT" } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => format!(
                "{}{} LIKE '{pattern}'",
                expr.output_name(),
                if *negated { " NOT" } else { "" }
            ),
        }
    }

    /// Whether the tree contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.has_aggregate(),
            Expr::Cast { expr, .. } => expr.has_aggregate(),
            Expr::Alias(e, _) => e.has_aggregate(),
            Expr::Scalar { args, .. } => args.iter().any(Expr::has_aggregate),
            Expr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::Like { expr, .. } => expr.has_aggregate(),
        }
    }

    /// Collect the indices of all bound column references.
    pub fn referenced_indices(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(c) => {
                if let Some(i) = c.index {
                    out.push(i);
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_indices(out);
                right.referenced_indices(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.referenced_indices(out),
            Expr::Cast { expr, .. } => expr.referenced_indices(out),
            Expr::Alias(e, _) => e.referenced_indices(out),
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_indices(out);
                }
            }
            Expr::Scalar { args, .. } => {
                for a in args {
                    a.referenced_indices(out);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_indices(out);
                for e in list {
                    e.referenced_indices(out);
                }
            }
            Expr::Like { expr, .. } => expr.referenced_indices(out),
        }
    }

    /// Rewrite every bound column index through `f` (used when an
    /// expression moves across operators during optimization).
    pub fn map_column_indices(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(c) => Expr::Column(ColumnRefExpr {
                qualifier: c.qualifier.clone(),
                name: c.name.clone(),
                index: c.index.map(f),
            }),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.map_column_indices(f)),
                op: *op,
                right: Box::new(right.map_column_indices(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.map_column_indices(f))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.map_column_indices(f))),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.map_column_indices(f))),
            Expr::Cast { expr, to } => Expr::Cast {
                expr: Box::new(expr.map_column_indices(f)),
                to: *to,
            },
            Expr::Alias(e, n) => Expr::Alias(Box::new(e.map_column_indices(f)), n.clone()),
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.map_column_indices(f))),
            },
            Expr::Scalar { func, args } => Expr::Scalar {
                func: *func,
                args: args.iter().map(|a| a.map_column_indices(f)).collect(),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.map_column_indices(f)),
                list: list.iter().map(|e| e.map_column_indices(f)).collect(),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.map_column_indices(f)),
                pattern: pattern.clone(),
                negated: *negated,
            },
        }
    }

    /// Split a conjunctive predicate into its AND-ed parts.
    pub fn split_conjunction(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut parts = left.split_conjunction();
                parts.extend(right.split_conjunction());
                parts
            }
            other => vec![other],
        }
    }

    /// AND together a list of predicates (`None` when empty).
    pub fn conjunction(parts: Vec<Expr>) -> Option<Expr> {
        parts.into_iter().reduce(|acc, e| Expr::Binary {
            left: Box::new(acc),
            op: BinaryOp::And,
            right: Box::new(e),
        })
    }

    // ---- builder methods ----

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }
    /// `self <> other`
    pub fn not_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::NotEq, other)
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Lt, other)
    }
    /// `self <= other`
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, other)
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }
    /// `self >= other`
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, other)
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }
    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Plus, other)
    }
    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Minus, other)
    }
    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Multiply, other)
    }
    /// `self / other`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Divide, other)
    }
    /// `self % other`
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Modulo, other)
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self IS NOT NULL`
    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }
    /// `CAST(self AS to)`
    pub fn cast(self, to: DataType) -> Expr {
        Expr::Cast {
            expr: Box::new(self),
            to,
        }
    }
    /// `self IN (list...)`
    pub fn in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }
    /// `self NOT IN (list...)`
    pub fn not_in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: true,
        }
    }
    /// `self LIKE pattern` (`%` any run, `_` any single char)
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: false,
        }
    }
    /// `self NOT LIKE pattern`
    pub fn not_like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: true,
        }
    }
    /// `self BETWEEN low AND high` (inclusive; plain sugar)
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        self.clone().gt_eq(low).and(self.lt_eq(high))
    }
    /// `self AS name`
    pub fn alias(self, name: impl Into<String>) -> Expr {
        Expr::Alias(Box::new(self), name.into())
    }

    fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{}", c.display_name()),
            Expr::Literal(Value::Utf8(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::IsNotNull(e) => write!(f, "{e} IS NOT NULL"),
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Alias(e, n) => write!(f, "{e} AS {n}"),
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => write!(f, "{func}({a})"),
                None => write!(f, "{func}(*)"),
            },
            Expr::Scalar { func, args } => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{func}({})", parts.join(", "))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let parts: Vec<String> = list.iter().map(|a| a.to_string()).collect();
                write!(
                    f,
                    "{expr}{} IN ({})",
                    if *negated { " NOT" } else { "" },
                    parts.join(", ")
                )
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr}{} LIKE '{pattern}'",
                    if *negated { " NOT" } else { "" }
                )
            }
        }
    }
}

/// Reference a column by name (optionally `table.column`).
pub fn col(name: &str) -> Expr {
    match name.split_once('.') {
        Some((q, n)) => Expr::Column(ColumnRefExpr {
            qualifier: Some(q.to_string()),
            name: n.to_string(),
            index: None,
        }),
        None => Expr::Column(ColumnRefExpr {
            qualifier: None,
            name: name.to_string(),
            index: None,
        }),
    }
}

/// A literal expression.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// `COUNT(*)`.
pub fn count_star() -> Expr {
    Expr::Aggregate {
        func: AggFunc::Count,
        arg: None,
    }
}

/// `COUNT(expr)`.
pub fn count(e: Expr) -> Expr {
    Expr::Aggregate {
        func: AggFunc::Count,
        arg: Some(Box::new(e)),
    }
}

/// `SUM(expr)`.
pub fn sum(e: Expr) -> Expr {
    Expr::Aggregate {
        func: AggFunc::Sum,
        arg: Some(Box::new(e)),
    }
}

/// `MIN(expr)`.
pub fn min(e: Expr) -> Expr {
    Expr::Aggregate {
        func: AggFunc::Min,
        arg: Some(Box::new(e)),
    }
}

/// `MAX(expr)`.
pub fn max(e: Expr) -> Expr {
    Expr::Aggregate {
        func: AggFunc::Max,
        arg: Some(Box::new(e)),
    }
}

/// `AVG(expr)`.
pub fn avg(e: Expr) -> Expr {
    Expr::Aggregate {
        func: AggFunc::Avg,
        arg: Some(Box::new(e)),
    }
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortExpr {
    /// The key expression.
    pub expr: Expr,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

impl SortExpr {
    /// Ascending sort on `expr`.
    pub fn asc(expr: Expr) -> Self {
        SortExpr {
            expr,
            ascending: true,
        }
    }

    /// Descending sort on `expr`.
    pub fn desc(expr: Expr) -> Self {
        SortExpr {
            expr,
            ascending: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_parses_qualifier() {
        let e = col("person.id");
        match &e {
            Expr::Column(c) => {
                assert_eq!(c.qualifier.as_deref(), Some("person"));
                assert_eq!(c.name, "id");
            }
            _ => panic!(),
        }
        assert_eq!(e.to_string(), "person.id");
    }

    #[test]
    fn builders_compose() {
        let e = col("a").eq(lit(5i64)).and(col("b").gt(lit(1.0)));
        assert_eq!(e.to_string(), "((a = 5) AND (b > 1))");
    }

    #[test]
    fn split_and_rebuild_conjunction() {
        let e = col("a")
            .eq(lit(1i64))
            .and(col("b").eq(lit(2i64)))
            .and(col("c").eq(lit(3i64)));
        let parts = e.split_conjunction();
        assert_eq!(parts.len(), 3);
        let rebuilt = Expr::conjunction(parts.into_iter().cloned().collect()).unwrap();
        assert_eq!(rebuilt, e);
    }

    #[test]
    fn has_aggregate_detects_nesting() {
        assert!(sum(col("x")).add(lit(1i64)).has_aggregate());
        assert!(!col("x").add(lit(1i64)).has_aggregate());
    }

    #[test]
    fn output_names() {
        assert_eq!(col("x").alias("y").output_name(), "y");
        assert_eq!(count_star().output_name(), "count(*)");
        assert_eq!(sum(col("v")).output_name(), "sum(v)");
    }

    #[test]
    fn map_column_indices_rewrites() {
        let mut e = col("a");
        if let Expr::Column(c) = &mut e {
            c.index = Some(3);
        }
        let mapped = e.add(col("b")).map_column_indices(&|i| i + 10);
        let mut idx = Vec::new();
        mapped.referenced_indices(&mut idx);
        assert_eq!(idx, vec![13]);
    }
}
