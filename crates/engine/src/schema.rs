//! Schemas: named, typed, optionally table-qualified fields.

use std::fmt;
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::types::DataType;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether nulls may appear.
    pub nullable: bool,
    /// Table alias the field came from, used to disambiguate in joins
    /// (`person.id` vs `knows.id`).
    pub qualifier: Option<String>,
}

impl Field {
    /// A nullable field with no qualifier.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
            qualifier: None,
        }
    }

    /// A non-nullable field with no qualifier.
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
            qualifier: None,
        }
    }

    /// Copy of the field carrying `qualifier`.
    pub fn with_qualifier(&self, qualifier: impl Into<String>) -> Self {
        Field {
            qualifier: Some(qualifier.into()),
            ..self.clone()
        }
    }

    /// `qualifier.name` if qualified, else `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the unique field matching `name` (optionally qualified as
    /// `table.column`). Errors if missing or ambiguous.
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name == name
                    && match qualifier {
                        Some(q) => f.qualifier.as_deref() == Some(q),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(EngineError::ColumnNotFound(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
            _ => Err(EngineError::ColumnNotFound(format!(
                "ambiguous column reference: {name} (qualify it, e.g. table.{name})"
            ))),
        }
    }

    /// Concatenate two schemas (for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Schema with only the columns at `indices`.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Copy of the schema with every field re-qualified as `qualifier`.
    pub fn qualified(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.with_qualifier(qualifier))
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.qualified_name(), field.data_type)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64).with_qualifier("person"),
            Field::new("name", DataType::Utf8).with_qualifier("person"),
            Field::new("id", DataType::Int64).with_qualifier("knows"),
        ])
    }

    #[test]
    fn index_of_qualified() {
        let s = sample();
        assert_eq!(s.index_of(Some("person"), "id").unwrap(), 0);
        assert_eq!(s.index_of(Some("knows"), "id").unwrap(), 2);
        assert_eq!(s.index_of(None, "name").unwrap(), 1);
    }

    #[test]
    fn index_of_ambiguous_errors() {
        let s = sample();
        let err = s.index_of(None, "id").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn index_of_missing_errors() {
        let s = sample();
        assert!(matches!(
            s.index_of(None, "zzz"),
            Err(EngineError::ColumnNotFound(_))
        ));
        assert!(s.index_of(Some("nope"), "id").is_err());
    }

    #[test]
    fn join_and_project() {
        let a = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let b = Schema::new(vec![Field::new("y", DataType::Utf8)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        let p = j.project(&[1]);
        assert_eq!(p.field(0).name, "y");
    }

    #[test]
    fn qualified_display() {
        let s = sample();
        let shown = format!("{s}");
        assert!(shown.contains("person.id: INT64"));
    }
}
