//! Query lifecycle control: cooperative cancellation, deadlines, and
//! byte-accounted memory budgets.
//!
//! A [`QueryContext`] is an `Arc`-shared token attached to one logical
//! query. Execution code checks it at chunk granularity (every operator's
//! output iterator is wrapped by `TaskContext::instrument`) and charges it
//! for every buffer it materializes, so:
//!
//! - [`QueryContext::cancel`] from any thread stops the query within a
//!   bounded latency (one chunk per pipeline stage), surfacing
//!   [`EngineError::Cancelled`];
//! - a deadline set at construction surfaces
//!   [`EngineError::DeadlineExceeded`] the same way — a slow query can
//!   never hang its caller;
//! - per-query and global byte budgets surface
//!   [`EngineError::ResourceExhausted`] when a shuffle buffer, join build
//!   side, aggregation hash table, or sort buffer grows past its limit,
//!   unwinding only the offending query.
//!
//! Accounting is *conservative peak* accounting: operators charge what
//! they materialize and the total is released back to the global
//! [`MemoryGovernor`] when the `QueryContext` drops. Intermediate buffers
//! are not individually released mid-query, so the budget bounds the
//! total bytes a query may materialize, which is an upper bound on its
//! true peak residency.

// idf-lint: allow-file(atomics-audit) -- memory accounting is approximate
// by design: independent RMW counters; nothing else is published through
// them, so Relaxed cannot reorder anything that matters.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::error::{EngineError, Result};

/// Process-wide memory budget shared by every query on a session.
///
/// Queries charge it through their [`QueryContext`]; a query's total
/// charge is released when its context drops, so a finished (or failed)
/// query immediately returns its budget to concurrent ones.
#[derive(Debug)]
pub struct MemoryGovernor {
    limit: usize,
    used: AtomicUsize,
}

impl MemoryGovernor {
    /// A governor admitting at most `limit` bytes across all queries.
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(Self {
            limit,
            used: AtomicUsize::new(0),
        })
    }

    /// The global limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently charged across all live queries.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    fn try_charge(&self, bytes: usize) -> bool {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        if prev + bytes > self.limit {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// Builder for a [`QueryContext`]; obtained via [`QueryContext::builder`].
#[derive(Debug, Default)]
pub struct QueryContextBuilder {
    timeout: Option<Duration>,
    memory_limit: Option<usize>,
    governor: Option<Arc<MemoryGovernor>>,
}

impl QueryContextBuilder {
    /// Stop the query with [`EngineError::DeadlineExceeded`] once `timeout`
    /// has elapsed from *execution start*, not from this call: the
    /// deadline is armed when [`QueryContext::arm_deadline`] runs (the
    /// engine calls it as execution begins, and the first
    /// [`QueryContext::check`] arms it as a fallback). Parse, bind, and
    /// plan time are therefore never charged against the client's
    /// execution timeout — a long optimizer pass cannot make a short
    /// timeout fire before the first chunk is produced.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Cap the bytes this query may materialize.
    pub fn memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    /// Also charge the given global governor for every byte.
    pub fn governor(mut self, governor: Arc<MemoryGovernor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Build the shared context.
    pub fn build(self) -> Arc<QueryContext> {
        Arc::new(QueryContext {
            cancelled: AtomicBool::new(false),
            timeout: self.timeout,
            deadline: OnceLock::new(),
            memory_limit: self.memory_limit,
            memory_used: AtomicUsize::new(0),
            memory_peak: AtomicUsize::new(0),
            governor: self.governor,
        })
    }
}

/// Cooperative cancellation token, deadline, and memory account for one
/// query. Cheap to clone via `Arc`; hold a clone to cancel from another
/// thread while the query runs.
///
/// # Deadline contract
///
/// A timeout set via [`QueryContextBuilder::timeout`] measures *execution*
/// time only. The deadline is armed — once, idempotently — by
/// [`QueryContext::arm_deadline`] when execution starts (or by the first
/// [`QueryContext::check`] if nothing armed it earlier), so time spent
/// parsing, binding, optimizing, and physical-planning between minting
/// the context and starting execution is not charged against the
/// client's timeout.
#[derive(Debug)]
pub struct QueryContext {
    cancelled: AtomicBool,
    timeout: Option<Duration>,
    deadline: OnceLock<Instant>,
    memory_limit: Option<usize>,
    memory_used: AtomicUsize,
    memory_peak: AtomicUsize,
    governor: Option<Arc<MemoryGovernor>>,
}

impl QueryContext {
    /// A context with no deadline and no memory limits.
    pub fn unbounded() -> Arc<Self> {
        Self::builder().build()
    }

    /// Start building a context with limits.
    pub fn builder() -> QueryContextBuilder {
        QueryContextBuilder::default()
    }

    /// Request cooperative cancellation; execution stops at the next
    /// chunk boundary with [`EngineError::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Anchor the configured timeout at the current instant (idempotent:
    /// only the first call arms; later calls and checks reuse that
    /// anchor). The engine calls this as execution starts so plan time is
    /// excluded from the timeout — see the deadline contract on
    /// [`QueryContext`]. No-op when the context has no timeout.
    pub fn arm_deadline(&self) {
        if let Some(timeout) = self.timeout {
            let _ = self.deadline.get_or_init(|| Instant::now() + timeout);
        }
    }

    /// The configured execution timeout, if any.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Return the typed stop error if this query should stop (cancelled
    /// or past its deadline), else `Ok(())`. Called by every operator at
    /// chunk granularity. Arms the deadline if nothing armed it yet, so a
    /// bare context used without the engine's execution wrapper still
    /// times out relative to its first check.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(EngineError::Cancelled);
        }
        if let Some(timeout) = self.timeout {
            let deadline = *self.deadline.get_or_init(|| Instant::now() + timeout);
            if Instant::now() >= deadline {
                return Err(EngineError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Charge `bytes` against the per-query and global budgets, failing
    /// with [`EngineError::ResourceExhausted`] if either would be
    /// exceeded. A failed charge leaves both accounts unchanged.
    pub fn charge_memory(&self, bytes: usize) -> Result<()> {
        if bytes == 0 {
            return Ok(());
        }
        let prev = self.memory_used.fetch_add(bytes, Ordering::Relaxed);
        if let Some(limit) = self.memory_limit {
            if prev + bytes > limit {
                self.memory_used.fetch_sub(bytes, Ordering::Relaxed);
                return Err(EngineError::resource(format!(
                    "query memory budget exceeded: {bytes} bytes requested on top of \
                     {prev} used, limit {limit} bytes"
                )));
            }
        }
        if let Some(gov) = &self.governor {
            if !gov.try_charge(bytes) {
                self.memory_used.fetch_sub(bytes, Ordering::Relaxed);
                return Err(EngineError::resource(format!(
                    "global memory budget exceeded: {bytes} bytes requested, {} of {} in use",
                    gov.used(),
                    gov.limit()
                )));
            }
        }
        self.memory_peak.fetch_max(prev + bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Return `bytes` to both accounts (for buffers freed mid-query).
    pub fn release_memory(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        self.memory_used.fetch_sub(bytes, Ordering::Relaxed);
        if let Some(gov) = &self.governor {
            gov.release(bytes);
        }
    }

    /// Bytes currently charged to this query.
    pub fn memory_used(&self) -> usize {
        self.memory_used.load(Ordering::Relaxed)
    }

    /// High-water mark of bytes charged to this query.
    pub fn memory_peak(&self) -> usize {
        self.memory_peak.load(Ordering::Relaxed)
    }
}

impl Drop for QueryContext {
    fn drop(&mut self) {
        // Return everything this query still holds to the global pool so
        // concurrent queries regain budget the moment this one finishes.
        if let Some(gov) = &self.governor {
            gov.release(self.memory_used.load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_context_never_stops() {
        let q = QueryContext::unbounded();
        assert!(q.check().is_ok());
        assert!(q.charge_memory(usize::MAX / 2).is_ok());
    }

    #[test]
    fn cancel_yields_typed_error() {
        let q = QueryContext::unbounded();
        q.cancel();
        assert_eq!(q.check(), Err(EngineError::Cancelled));
    }

    #[test]
    fn elapsed_deadline_yields_typed_error() {
        let q = QueryContext::builder()
            .timeout(Duration::from_millis(0))
            .build();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(q.check(), Err(EngineError::DeadlineExceeded));
    }

    /// Regression: the deadline used to be anchored when the context was
    /// minted, so time spent planning before execution was charged
    /// against the client's timeout. It now anchors at `arm_deadline`
    /// (execution start); mint-to-arm latency is free.
    #[test]
    fn deadline_is_anchored_at_execution_start_not_mint() {
        let q = QueryContext::builder()
            .timeout(Duration::from_millis(40))
            .build();
        // Simulated plan time longer than the whole timeout.
        std::thread::sleep(Duration::from_millis(60));
        q.arm_deadline();
        assert!(q.check().is_ok(), "plan time must not consume the timeout");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(q.check(), Err(EngineError::DeadlineExceeded));
    }

    #[test]
    fn arm_deadline_is_idempotent() {
        let q = QueryContext::builder()
            .timeout(Duration::from_millis(30))
            .build();
        q.arm_deadline();
        std::thread::sleep(Duration::from_millis(45));
        // Re-arming must not extend the original anchor.
        q.arm_deadline();
        assert_eq!(q.check(), Err(EngineError::DeadlineExceeded));
    }

    #[test]
    fn per_query_budget_is_enforced_and_backed_out() {
        let q = QueryContext::builder().memory_limit(100).build();
        assert!(q.charge_memory(60).is_ok());
        let err = q.charge_memory(50).unwrap_err();
        assert!(matches!(err, EngineError::ResourceExhausted(_)));
        // The failed charge must not stick.
        assert_eq!(q.memory_used(), 60);
        assert!(q.charge_memory(40).is_ok());
    }

    #[test]
    fn governor_is_shared_and_released_on_drop() {
        let gov = MemoryGovernor::new(100);
        let a = QueryContext::builder().governor(Arc::clone(&gov)).build();
        let b = QueryContext::builder().governor(Arc::clone(&gov)).build();
        assert!(a.charge_memory(80).is_ok());
        assert!(matches!(
            b.charge_memory(40),
            Err(EngineError::ResourceExhausted(_))
        ));
        drop(a); // releases its 80 bytes
        assert_eq!(gov.used(), 0);
        assert!(b.charge_memory(40).is_ok());
    }

    #[test]
    fn release_memory_returns_budget_mid_query() {
        let gov = MemoryGovernor::new(100);
        let q = QueryContext::builder()
            .memory_limit(100)
            .governor(Arc::clone(&gov))
            .build();
        q.charge_memory(90).unwrap();
        q.release_memory(90);
        assert_eq!(q.memory_used(), 0);
        assert_eq!(gov.used(), 0);
        assert!(q.charge_memory(100).is_ok());
    }
}
