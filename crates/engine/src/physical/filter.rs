//! Row filtering.

use std::sync::Arc;

use crate::catalog::ChunkIter;
use crate::error::Result;
use crate::physical::expr::evaluate_predicate;
use crate::physical::{ExecPlanRef, ExecutionPlan, PhysicalExprRef, TaskContext};
use crate::schema::SchemaRef;

/// Keeps rows whose predicate evaluates to `true` (nulls drop, per SQL).
#[derive(Debug)]
pub struct FilterExec {
    /// Input operator.
    pub input: ExecPlanRef,
    /// Boolean predicate.
    pub predicate: PhysicalExprRef,
    /// Display string of the original logical predicate.
    pub display: String,
}

impl ExecutionPlan for FilterExec {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn output_partitions(&self) -> usize {
        self.input.output_partitions()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.input)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let input = self.input.execute(partition, ctx)?;
        let predicate = Arc::clone(&self.predicate);
        let iter: ChunkIter = Box::new(input.map(move |chunk| {
            let chunk = chunk?;
            let mask = evaluate_predicate(predicate.as_ref(), &chunk)?;
            chunk.filter(&mask)
        }));
        Ok(ctx.instrument(self, iter))
    }

    fn detail(&self) -> String {
        self.display.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::chunk::Chunk;
    use crate::expr::{col, lit};
    use crate::physical::execute_collect;
    use crate::physical::expr::create_physical_expr;
    use crate::physical::scan::ValuesExec;
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    #[test]
    fn filters_rows() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let input: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: (0..10).map(|i| vec![Value::Int64(i)]).collect(),
        });
        let pred = resolve_expr(&col("x").gt_eq(lit(7i64)), &schema).unwrap();
        let plan: ExecPlanRef = Arc::new(FilterExec {
            input,
            predicate: create_physical_expr(&pred, &schema).unwrap(),
            display: pred.to_string(),
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.value_at(0, 0), Value::Int64(7));
    }

    #[test]
    fn empty_result_keeps_schema() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let input: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![vec![Value::Int64(1)]],
        });
        let pred = resolve_expr(&col("x").gt(lit(100i64)), &schema).unwrap();
        let plan: ExecPlanRef = Arc::new(FilterExec {
            input,
            predicate: create_physical_expr(&pred, &schema).unwrap(),
            display: String::new(),
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 0);
        assert_eq!(out.num_columns(), 1);
        let _ = Chunk::empty(&plan.schema());
    }
}
