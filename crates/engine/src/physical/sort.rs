//! Sorting (single-partition; the planner coalesces first).

use std::sync::Arc;

use crate::catalog::ChunkIter;
use crate::chunk::Chunk;
use crate::error::{EngineError, Result};
use crate::physical::{ExecPlanRef, ExecutionPlan, PhysicalExprRef, TaskContext};
use crate::schema::SchemaRef;

/// One physical sort key.
#[derive(Debug, Clone)]
pub struct PhysicalSortKey {
    /// Key expression.
    pub expr: PhysicalExprRef,
    /// Ascending?
    pub ascending: bool,
}

/// Total sort of a single input partition.
#[derive(Debug)]
pub struct SortExec {
    /// Input operator (must have one partition).
    pub input: ExecPlanRef,
    /// Sort keys, major first.
    pub keys: Vec<PhysicalSortKey>,
    /// Optional `LIMIT` fused into the sort (top-k).
    pub fetch: Option<usize>,
}

impl ExecutionPlan for SortExec {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn output_partitions(&self) -> usize {
        1
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.input)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        if self.input.output_partitions() != 1 {
            return Err(EngineError::internal(
                "SortExec requires a single input partition (planner bug)",
            ));
        }
        let chunks: Vec<Chunk> = self.input.execute(partition, ctx)?.collect::<Result<_>>()?;
        let chunk = if chunks.is_empty() {
            Chunk::empty(&self.schema())
        } else {
            Chunk::concat(&chunks)?
        };
        if chunk.is_empty() {
            return Ok(ctx.instrument(self, Box::new(std::iter::once(Ok(chunk)))));
        }
        // The whole input is buffered for sorting; bill it (plus the
        // index vec) to the query's memory budget before the O(n log n)
        // work starts.
        ctx.charge_memory(chunk.byte_size() + chunk.len() * 4)?;
        ctx.check_cancelled()?;
        // Evaluate all keys once, then sort row indices.
        let key_cols = self
            .keys
            .iter()
            .map(|k| k.expr.evaluate(&chunk))
            .collect::<Result<Vec<_>>>()?;
        let mut indices: Vec<u32> = (0..chunk.len() as u32).collect();
        indices.sort_by(|&a, &b| {
            for (k, col) in self.keys.iter().zip(&key_cols) {
                let va = col.value_at(a as usize);
                let vb = col.value_at(b as usize);
                let ord = va.cmp(&vb);
                let ord = if k.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(n) = self.fetch {
            indices.truncate(n);
        }
        Ok(ctx.instrument(self, Box::new(std::iter::once(chunk.take(&indices)))))
    }

    fn detail(&self) -> String {
        let mut s = format!("{} keys", self.keys.len());
        if let Some(n) = self.fetch {
            s.push_str(&format!(", fetch {n}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::expr::col;
    use crate::physical::execute_collect;
    use crate::physical::expr::create_physical_expr;
    use crate::physical::scan::ValuesExec;
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    fn input() -> (ExecPlanRef, SchemaRef) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]));
        let rows = vec![
            vec![Value::Int64(2), Value::Utf8("y".into())],
            vec![Value::Int64(1), Value::Utf8("z".into())],
            vec![Value::Null, Value::Utf8("n".into())],
            vec![Value::Int64(2), Value::Utf8("x".into())],
        ];
        (
            Arc::new(ValuesExec {
                schema: Arc::clone(&schema),
                rows,
            }),
            schema,
        )
    }

    fn key(schema: &SchemaRef, name: &str, asc: bool) -> PhysicalSortKey {
        let e = resolve_expr(&col(name), schema).unwrap();
        PhysicalSortKey {
            expr: create_physical_expr(&e, schema).unwrap(),
            ascending: asc,
        }
    }

    #[test]
    fn multi_key_sort_nulls_first() {
        let (inp, schema) = input();
        let plan: ExecPlanRef = Arc::new(SortExec {
            input: inp,
            keys: vec![key(&schema, "a", true), key(&schema, "b", true)],
            fetch: None,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        let bs: Vec<String> = (0..4).map(|r| out.value_at(1, r).to_string()).collect();
        assert_eq!(bs, vec!["n", "z", "x", "y"]);
    }

    #[test]
    fn descending_with_fetch() {
        let (inp, schema) = input();
        let plan: ExecPlanRef = Arc::new(SortExec {
            input: inp,
            keys: vec![key(&schema, "a", false)],
            fetch: Some(2),
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value_at(0, 0), Value::Int64(2));
        assert_eq!(out.value_at(0, 1), Value::Int64(2));
    }

    #[test]
    fn empty_input_ok() {
        let schema = Arc::new(Schema::new(vec![Field::new("a", DataType::Int64)]));
        let inp: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![],
        });
        let plan: ExecPlanRef = Arc::new(SortExec {
            input: inp,
            keys: vec![key(&schema, "a", true)],
            fetch: None,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 0);
    }
}
