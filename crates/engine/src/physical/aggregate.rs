//! Hash aggregation.
//!
//! The operator aggregates its input partition completely; for grouped
//! aggregates the planner first shuffles on the group keys (so equal groups
//! are co-located), and for global aggregates it coalesces to a single
//! partition.

use std::collections::HashMap;
use std::sync::Arc;

use crate::catalog::ChunkIter;
use crate::chunk::Chunk;
use crate::column::ColumnBuilder;
use crate::error::{EngineError, Result};
use crate::expr::AggFunc;
use crate::physical::{ExecPlanRef, ExecutionPlan, PhysicalExprRef, TaskContext};
use crate::schema::SchemaRef;
use crate::types::{DataType, Value};

/// One aggregate to compute.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` = `COUNT(*)`).
    pub arg: Option<PhysicalExprRef>,
    /// Output type (from the analyzer).
    pub output_type: DataType,
}

/// A running accumulator for one (group, aggregate) pair.
#[derive(Debug, Clone)]
enum Acc {
    Count { n: i64 },
    SumI { v: Option<i64> },
    SumF { v: Option<f64> },
    Min { v: Option<Value> },
    Max { v: Option<Value> },
    Avg { sum: f64, n: i64 },
}

impl Acc {
    fn new(spec: &AggregateSpec) -> Acc {
        match spec.func {
            AggFunc::Count => Acc::Count { n: 0 },
            AggFunc::Sum => match spec.output_type {
                DataType::Float64 => Acc::SumF { v: None },
                _ => Acc::SumI { v: None },
            },
            AggFunc::Min => Acc::Min { v: None },
            AggFunc::Max => Acc::Max { v: None },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: &Value) {
        match self {
            Acc::Count { n } => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Acc::SumI { v: acc } => {
                if let Some(x) = v.as_i64() {
                    *acc = Some(acc.unwrap_or(0).wrapping_add(x));
                }
            }
            Acc::SumF { v: acc } => {
                if let Some(x) = v.as_f64() {
                    *acc = Some(acc.unwrap_or(0.0) + x);
                }
            }
            Acc::Min { v: acc } => {
                if !v.is_null() && acc.as_ref().is_none_or(|m| v < m) {
                    *acc = Some(v.clone());
                }
            }
            Acc::Max { v: acc } => {
                if !v.is_null() && acc.as_ref().is_none_or(|m| v > m) {
                    *acc = Some(v.clone());
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                }
            }
        }
    }

    /// Vectorized update from a whole column (global-aggregate fast path).
    fn update_from_column(&mut self, col: &crate::column::Column) {
        use crate::column::Column;
        match (&mut *self, col) {
            (Acc::Count { n }, c) => {
                let valid = (0..c.len()).filter(|&i| c.is_valid(i)).count();
                *n += valid as i64;
            }
            (Acc::SumI { v }, Column::Int64(p)) => {
                let mut sum = v.unwrap_or(0);
                let mut any = v.is_some();
                match &p.validity {
                    None => {
                        for &x in &p.values {
                            sum = sum.wrapping_add(x);
                        }
                        any |= !p.values.is_empty();
                    }
                    Some(b) => {
                        for (i, &x) in p.values.iter().enumerate() {
                            if b.get(i) {
                                sum = sum.wrapping_add(x);
                                any = true;
                            }
                        }
                    }
                }
                *v = any.then_some(sum);
            }
            (Acc::SumI { v }, Column::Int32(p)) => {
                let mut sum = v.unwrap_or(0);
                let mut any = v.is_some();
                for i in 0..p.len() {
                    if let Some(x) = p.get(i) {
                        sum = sum.wrapping_add(i64::from(x));
                        any = true;
                    }
                }
                *v = any.then_some(sum);
            }
            (Acc::SumF { v }, Column::Float64(p)) => {
                let mut sum = v.unwrap_or(0.0);
                let mut any = v.is_some();
                match &p.validity {
                    None => {
                        for &x in &p.values {
                            sum += x;
                        }
                        any |= !p.values.is_empty();
                    }
                    Some(b) => {
                        for (i, &x) in p.values.iter().enumerate() {
                            if b.get(i) {
                                sum += x;
                                any = true;
                            }
                        }
                    }
                }
                *v = any.then_some(sum);
            }
            (Acc::Avg { sum, n }, Column::Float64(p)) => {
                for i in 0..p.len() {
                    if let Some(x) = p.get(i) {
                        *sum += x;
                        *n += 1;
                    }
                }
            }
            (Acc::Avg { sum, n }, Column::Int64(p)) => {
                for i in 0..p.len() {
                    if let Some(x) = p.get(i) {
                        *sum += x as f64;
                        *n += 1;
                    }
                }
            }
            // Min/max and remaining type combinations: scalar fallback.
            (acc, c) => {
                for i in 0..c.len() {
                    acc.update(&c.value_at(i));
                }
            }
        }
    }

    /// `COUNT(*)` fast path: every row counts.
    fn count_rows(&mut self, rows: usize) {
        if let Acc::Count { n } = self {
            *n += rows as i64;
        }
    }

    fn finish(self, output_type: DataType) -> Value {
        match self {
            Acc::Count { n } => Value::Int64(n),
            Acc::SumI { v } => v.map_or(Value::Null, Value::Int64),
            Acc::SumF { v } => v.map_or(Value::Null, Value::Float64),
            Acc::Min { v } | Acc::Max { v } => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / n as f64)
                }
            }
        }
        .cast(output_type)
        .unwrap_or(Value::Null)
    }
}

/// Approximate resident bytes of one aggregation hash-table entry: the
/// key values (with string payloads), the accumulator vec, and map
/// overhead. Used to bill the query's memory budget.
fn group_entry_bytes(key: &[Value], num_aggs: usize) -> usize {
    const ENTRY_OVERHEAD: usize = 64;
    let key_bytes: usize = key
        .iter()
        .map(|v| {
            std::mem::size_of::<Value>()
                + match v {
                    Value::Utf8(s) => s.len(),
                    _ => 0,
                }
        })
        .sum();
    ENTRY_OVERHEAD + key_bytes + num_aggs * std::mem::size_of::<Acc>()
}

/// Hash-based grouped aggregation over one partition.
#[derive(Debug)]
pub struct HashAggregateExec {
    /// Input operator (shuffled/coalesced by the planner).
    pub input: ExecPlanRef,
    /// Group-by key expressions.
    pub group_exprs: Vec<PhysicalExprRef>,
    /// Aggregates to compute.
    pub aggs: Vec<AggregateSpec>,
    /// Output schema: group columns then aggregate columns.
    pub schema: SchemaRef,
}

impl ExecutionPlan for HashAggregateExec {
    fn name(&self) -> &'static str {
        "HashAggregate"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        self.input.output_partitions()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.input)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        for chunk in self.input.execute(partition, ctx)? {
            let chunk = chunk?;
            if chunk.is_empty() {
                continue;
            }
            // Global aggregates take a vectorized path: whole-column
            // accumulation with no per-cell scalar boxing.
            if self.group_exprs.is_empty() {
                let accs = groups
                    .entry(Vec::new())
                    .or_insert_with(|| self.aggs.iter().map(Acc::new).collect());
                for (spec, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                    match &spec.arg {
                        Some(e) => {
                            let column = e.evaluate(&chunk)?;
                            acc.update_from_column(&column);
                        }
                        None => acc.count_rows(chunk.len()),
                    }
                }
                continue;
            }
            let key_cols = self
                .group_exprs
                .iter()
                .map(|e| e.evaluate(&chunk))
                .collect::<Result<Vec<_>>>()?;
            let arg_cols = self
                .aggs
                .iter()
                .map(|a| a.arg.as_ref().map(|e| e.evaluate(&chunk)).transpose())
                .collect::<Result<Vec<_>>>()?;
            let mut key: Vec<Value> = Vec::with_capacity(key_cols.len());
            let mut new_group_bytes = 0usize;
            for row in 0..chunk.len() {
                key.clear();
                key.extend(key_cols.iter().map(|c| c.value_at(row)));
                // Reuse the key buffer; clone only for new groups.
                let accs = match groups.get_mut(key.as_slice()) {
                    Some(accs) => accs,
                    None => {
                        new_group_bytes += group_entry_bytes(&key, self.aggs.len());
                        groups
                            .entry(key.clone())
                            .or_insert_with(|| self.aggs.iter().map(Acc::new).collect())
                    }
                };
                for (i, acc) in accs.iter_mut().enumerate() {
                    match &arg_cols[i] {
                        Some(c) => acc.update(&c.value_at(row)),
                        // COUNT(*): every row counts.
                        None => acc.update(&Value::Int64(1)),
                    }
                }
            }
            // Bill hash-table growth per chunk, so an over-budget
            // aggregation fails before the table outgrows the budget by
            // more than one chunk's worth of groups.
            ctx.charge_memory(new_group_bytes)?;
        }
        // Global aggregate over empty input still yields one identity row.
        if groups.is_empty() && self.group_exprs.is_empty() && partition == 0 {
            groups.insert(Vec::new(), self.aggs.iter().map(Acc::new).collect());
        }
        let mut builders: Vec<ColumnBuilder> = self
            .schema
            .fields
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        for (key, accs) in groups {
            for (i, v) in key.iter().enumerate() {
                push_coerced(&mut builders[i], v)?;
            }
            for (i, acc) in accs.into_iter().enumerate() {
                let out_i = self.group_exprs.len() + i;
                let v = acc.finish(self.aggs[i].output_type);
                push_coerced(&mut builders[out_i], &v)?;
            }
        }
        let chunk = Chunk::new(builders.into_iter().map(|b| Arc::new(b.finish())).collect())?;
        Ok(ctx.instrument(self, Box::new(std::iter::once(Ok(chunk)))))
    }

    fn detail(&self) -> String {
        format!(
            "{} groups keys, {} aggs",
            self.group_exprs.len(),
            self.aggs.len()
        )
    }
}

/// Push `v` into `b`, casting when the scalar's runtime type differs from
/// the declared column type (e.g. Int32 group keys).
fn push_coerced(b: &mut ColumnBuilder, v: &Value) -> Result<()> {
    if v.is_null() {
        return b.push(&Value::Null);
    }
    if v.data_type() == Some(b.data_type()) {
        return b.push(v);
    }
    match v.cast(b.data_type()) {
        Some(c) => b.push(&c),
        None => Err(EngineError::type_err(format!(
            "aggregate output {v:?} does not fit column type {}",
            b.data_type()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::expr::col;
    use crate::physical::execute_collect;
    use crate::physical::expr::create_physical_expr;
    use crate::physical::scan::ValuesExec;
    use crate::schema::{Field, Schema};

    fn input() -> (ExecPlanRef, SchemaRef) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Utf8),
            Field::new("v", DataType::Int64),
        ]));
        let rows = vec![
            vec![Value::Utf8("a".into()), Value::Int64(1)],
            vec![Value::Utf8("b".into()), Value::Int64(10)],
            vec![Value::Utf8("a".into()), Value::Int64(2)],
            vec![Value::Utf8("b".into()), Value::Null],
            vec![Value::Utf8("a".into()), Value::Int64(3)],
        ];
        (
            Arc::new(ValuesExec {
                schema: Arc::clone(&schema),
                rows,
            }),
            schema,
        )
    }

    fn pe(schema: &SchemaRef, name: &str) -> PhysicalExprRef {
        let e = resolve_expr(&col(name), schema).unwrap();
        create_physical_expr(&e, schema).unwrap()
    }

    #[test]
    fn grouped_aggregates() {
        let (inp, schema) = input();
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Utf8),
            Field::new("count", DataType::Int64),
            Field::new("sum", DataType::Int64),
            Field::new("min", DataType::Int64),
            Field::new("avg", DataType::Float64),
        ]));
        let plan: ExecPlanRef = Arc::new(HashAggregateExec {
            input: inp,
            group_exprs: vec![pe(&schema, "g")],
            aggs: vec![
                AggregateSpec {
                    func: AggFunc::Count,
                    arg: Some(pe(&schema, "v")),
                    output_type: DataType::Int64,
                },
                AggregateSpec {
                    func: AggFunc::Sum,
                    arg: Some(pe(&schema, "v")),
                    output_type: DataType::Int64,
                },
                AggregateSpec {
                    func: AggFunc::Min,
                    arg: Some(pe(&schema, "v")),
                    output_type: DataType::Int64,
                },
                AggregateSpec {
                    func: AggFunc::Avg,
                    arg: Some(pe(&schema, "v")),
                    output_type: DataType::Float64,
                },
            ],
            schema: out_schema,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 2);
        let row_a = (0..2)
            .find(|&r| out.value_at(0, r) == Value::Utf8("a".into()))
            .unwrap();
        let row_b = 1 - row_a;
        assert_eq!(out.value_at(1, row_a), Value::Int64(3));
        assert_eq!(out.value_at(2, row_a), Value::Int64(6));
        assert_eq!(out.value_at(3, row_a), Value::Int64(1));
        assert_eq!(out.value_at(4, row_a), Value::Float64(2.0));
        assert_eq!(out.value_at(1, row_b), Value::Int64(1), "count skips null");
        assert_eq!(out.value_at(2, row_b), Value::Int64(10));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_identity() {
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int64)]));
        let empty: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![],
        });
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("count(*)", DataType::Int64),
            Field::new("sum", DataType::Int64),
        ]));
        let plan: ExecPlanRef = Arc::new(HashAggregateExec {
            input: empty,
            group_exprs: vec![],
            aggs: vec![
                AggregateSpec {
                    func: AggFunc::Count,
                    arg: None,
                    output_type: DataType::Int64,
                },
                AggregateSpec {
                    func: AggFunc::Sum,
                    arg: Some(pe(&schema, "v")),
                    output_type: DataType::Int64,
                },
            ],
            schema: out_schema,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value_at(0, 0), Value::Int64(0));
        assert_eq!(out.value_at(1, 0), Value::Null);
    }

    #[test]
    fn count_star_counts_null_rows() {
        let (inp, _) = input();
        let out_schema = Arc::new(Schema::new(vec![Field::new("n", DataType::Int64)]));
        let plan: ExecPlanRef = Arc::new(HashAggregateExec {
            input: inp,
            group_exprs: vec![],
            aggs: vec![AggregateSpec {
                func: AggFunc::Count,
                arg: None,
                output_type: DataType::Int64,
            }],
            schema: out_schema,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.value_at(0, 0), Value::Int64(5));
    }

    #[test]
    fn vectorized_global_path_handles_nulls_and_types() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ]));
        let inp: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![
                vec![
                    Value::Int64(1),
                    Value::Float64(0.5),
                    Value::Utf8("b".into()),
                ],
                vec![Value::Null, Value::Null, Value::Null],
                vec![
                    Value::Int64(3),
                    Value::Float64(1.5),
                    Value::Utf8("a".into()),
                ],
            ],
        });
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("n", DataType::Int64),
            Field::new("ni", DataType::Int64),
            Field::new("si", DataType::Int64),
            Field::new("sf", DataType::Float64),
            Field::new("af", DataType::Float64),
            Field::new("mn", DataType::Utf8),
            Field::new("mx", DataType::Utf8),
        ]));
        let arg = |name: &str| Some(pe(&schema, name));
        let plan: ExecPlanRef = Arc::new(HashAggregateExec {
            input: inp,
            group_exprs: vec![],
            aggs: vec![
                AggregateSpec {
                    func: AggFunc::Count,
                    arg: None,
                    output_type: DataType::Int64,
                },
                AggregateSpec {
                    func: AggFunc::Count,
                    arg: arg("i"),
                    output_type: DataType::Int64,
                },
                AggregateSpec {
                    func: AggFunc::Sum,
                    arg: arg("i"),
                    output_type: DataType::Int64,
                },
                AggregateSpec {
                    func: AggFunc::Sum,
                    arg: arg("f"),
                    output_type: DataType::Float64,
                },
                AggregateSpec {
                    func: AggFunc::Avg,
                    arg: arg("f"),
                    output_type: DataType::Float64,
                },
                AggregateSpec {
                    func: AggFunc::Min,
                    arg: arg("s"),
                    output_type: DataType::Utf8,
                },
                AggregateSpec {
                    func: AggFunc::Max,
                    arg: arg("s"),
                    output_type: DataType::Utf8,
                },
            ],
            schema: out_schema,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(
            out.value_at(0, 0),
            Value::Int64(3),
            "count(*) counts null rows"
        );
        assert_eq!(out.value_at(1, 0), Value::Int64(2), "count(i) skips nulls");
        assert_eq!(out.value_at(2, 0), Value::Int64(4));
        assert_eq!(out.value_at(3, 0), Value::Float64(2.0));
        assert_eq!(out.value_at(4, 0), Value::Float64(1.0));
        assert_eq!(out.value_at(5, 0), Value::Utf8("a".into()));
        assert_eq!(out.value_at(6, 0), Value::Utf8("b".into()));
    }

    #[test]
    fn distinct_shape_zero_aggregates() {
        // SELECT DISTINCT compiles to an Aggregate with no agg outputs.
        let schema = Arc::new(Schema::new(vec![Field::new("g", DataType::Int64)]));
        let inp: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![
                vec![Value::Int64(1)],
                vec![Value::Int64(2)],
                vec![Value::Int64(1)],
                vec![Value::Null],
                vec![Value::Null],
            ],
        });
        let plan: ExecPlanRef = Arc::new(HashAggregateExec {
            input: inp,
            group_exprs: vec![pe(&schema, "g")],
            aggs: vec![],
            schema,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 3, "1, 2, NULL");
    }

    #[test]
    fn null_group_keys_form_a_group() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]));
        let inp: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![
                vec![Value::Null, Value::Int64(1)],
                vec![Value::Null, Value::Int64(2)],
                vec![Value::Int64(1), Value::Int64(3)],
            ],
        });
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("sum", DataType::Int64),
        ]));
        let plan: ExecPlanRef = Arc::new(HashAggregateExec {
            input: inp,
            group_exprs: vec![pe(&schema, "g")],
            aggs: vec![AggregateSpec {
                func: AggFunc::Sum,
                arg: Some(pe(&schema, "v")),
                output_type: DataType::Int64,
            }],
            schema: out_schema,
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 2);
        let null_row = (0..2).find(|&r| out.value_at(0, r) == Value::Null).unwrap();
        assert_eq!(out.value_at(1, null_row), Value::Int64(3));
    }
}
