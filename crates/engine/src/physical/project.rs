//! Column projection / computation.

use std::sync::Arc;

use crate::catalog::ChunkIter;
use crate::chunk::Chunk;
use crate::error::Result;
use crate::physical::{ExecPlanRef, ExecutionPlan, PhysicalExprRef, TaskContext};
use crate::schema::SchemaRef;

/// Computes one output column per expression.
#[derive(Debug)]
pub struct ProjectionExec {
    /// Input operator.
    pub input: ExecPlanRef,
    /// Output expressions.
    pub exprs: Vec<PhysicalExprRef>,
    /// Output schema (names decided at planning).
    pub schema: SchemaRef,
    /// Display strings of the logical expressions.
    pub display: Vec<String>,
}

impl ExecutionPlan for ProjectionExec {
    fn name(&self) -> &'static str {
        "Projection"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        self.input.output_partitions()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.input)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let input = self.input.execute(partition, ctx)?;
        let exprs = self.exprs.clone();
        let iter: ChunkIter = Box::new(input.map(move |chunk| {
            let chunk = chunk?;
            if exprs.is_empty() {
                // COUNT(*)-style projections: carry the row count only.
                return Ok(Chunk::new_empty_columns(chunk.len()));
            }
            let columns = exprs
                .iter()
                .map(|e| e.evaluate(&chunk))
                .collect::<Result<Vec<_>>>()?;
            Chunk::new(columns)
        }));
        Ok(ctx.instrument(self, iter))
    }

    fn detail(&self) -> String {
        self.display.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{expr_to_field, resolve_expr};
    use crate::expr::{col, lit};
    use crate::physical::execute_collect;
    use crate::physical::expr::create_physical_expr;
    use crate::physical::scan::ValuesExec;
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    #[test]
    fn computes_expressions() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("y", DataType::Int64),
        ]));
        let input: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![
                vec![Value::Int64(1), Value::Int64(10)],
                vec![Value::Int64(2), Value::Int64(20)],
            ],
        });
        let exprs = [
            resolve_expr(&col("y"), &schema).unwrap(),
            resolve_expr(&col("x").add(lit(100i64)).alias("x100"), &schema).unwrap(),
        ];
        let out_schema = Arc::new(Schema::new(
            exprs
                .iter()
                .map(|e| expr_to_field(e, &schema).unwrap())
                .collect(),
        ));
        let plan: ExecPlanRef = Arc::new(ProjectionExec {
            input,
            exprs: exprs
                .iter()
                .map(|e| create_physical_expr(e, &schema).unwrap())
                .collect(),
            schema: Arc::clone(&out_schema),
            display: exprs.iter().map(|e| e.to_string()).collect(),
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.num_columns(), 2);
        assert_eq!(out.value_at(1, 1), Value::Int64(102));
        assert_eq!(plan.schema().field(1).name, "x100");
    }
}
