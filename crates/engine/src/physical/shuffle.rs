//! Exchange operators: hash repartitioning (shuffle) and coalescing.
//!
//! The single-process analogue of Spark's shuffle: the first output
//! partition to be pulled materializes *all* input partitions in parallel
//! behind an [`ExecCache`] keyed by the execution id, bucketing rows by
//! key hash; every output partition of the same execution then reads its
//! bucket, while a later execution of the same plan recomputes (the input
//! may be a live, updatable source). The Indexed DataFrame's hash partitioning on the
//! indexed key uses the same [`hash_values`] function, which is what makes
//! its indexed joins co-partitioned with shuffled probe sides.

use std::sync::Arc;

use crate::catalog::ChunkIter;
use crate::chunk::Chunk;
use crate::error::Result;
use crate::physical::{
    hash_values, ExecCache, ExecPlanRef, ExecutionPlan, PhysicalExprRef, TaskContext,
};
use crate::schema::SchemaRef;

/// Hash-repartition rows on key expressions into `num_partitions` buckets.
pub struct ShuffleExec {
    /// Input operator.
    pub input: ExecPlanRef,
    /// Partitioning key expressions.
    pub keys: Vec<PhysicalExprRef>,
    /// Number of output partitions.
    pub num_partitions: usize,
    state: ExecCache<Arc<Vec<Vec<Chunk>>>>,
}

impl std::fmt::Debug for ShuffleExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShuffleExec(n={})", self.num_partitions)
    }
}

impl ShuffleExec {
    /// Create a shuffle of `input` on `keys`.
    pub fn new(input: ExecPlanRef, keys: Vec<PhysicalExprRef>, num_partitions: usize) -> Self {
        ShuffleExec {
            input,
            keys,
            num_partitions: num_partitions.max(1),
            state: ExecCache::new(),
        }
    }

    /// Bucket one chunk's rows by key hash.
    fn bucket_chunk(chunk: &Chunk, keys: &[PhysicalExprRef], n: usize) -> Result<Vec<Vec<u32>>> {
        let key_cols = keys
            .iter()
            .map(|k| k.evaluate(chunk))
            .collect::<Result<Vec<_>>>()?;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut key = Vec::with_capacity(key_cols.len());
        for row in 0..chunk.len() {
            key.clear();
            for c in &key_cols {
                key.push(c.value_at(row));
            }
            let b = (hash_values(&key) % n as u64) as usize;
            buckets[b].push(row as u32);
        }
        Ok(buckets)
    }

    fn materialize(&self, ctx: &TaskContext) -> Result<Arc<Vec<Vec<Chunk>>>> {
        self.state.get_or_try_init(ctx, || {
            crate::failpoints::check(crate::failpoints::SHUFFLE_EXCHANGE)?;
            let n = self.num_partitions;
            let inputs = crate::physical::execute_collect_partitions(&self.input, ctx)?;
            let mut out: Vec<Vec<Chunk>> = vec![Vec::new(); n];
            for chunks in inputs {
                for chunk in chunks {
                    if chunk.is_empty() {
                        continue;
                    }
                    // The whole exchange is buffered until consumed; bill
                    // it to the query's memory budget.
                    ctx.charge_memory(chunk.byte_size())?;
                    let buckets = Self::bucket_chunk(&chunk, &self.keys, n)?;
                    for (b, rows) in buckets.into_iter().enumerate() {
                        if !rows.is_empty() {
                            out[b].push(chunk.take(&rows)?);
                        }
                    }
                }
            }
            Ok(Arc::new(out))
        })
    }
}

impl ExecutionPlan for ShuffleExec {
    fn name(&self) -> &'static str {
        "Shuffle"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn output_partitions(&self) -> usize {
        self.num_partitions
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.input)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let buckets = self.materialize(ctx)?;
        let chunks = buckets[partition].clone();
        Ok(ctx.instrument(self, Box::new(chunks.into_iter().map(Ok))))
    }

    fn detail(&self) -> String {
        format!("hash, {} partitions", self.num_partitions)
    }
}

/// Merge all input partitions into one.
pub struct CoalesceExec {
    /// Input operator.
    pub input: ExecPlanRef,
    state: ExecCache<Arc<Vec<Chunk>>>,
}

impl std::fmt::Debug for CoalesceExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoalesceExec")
    }
}

impl CoalesceExec {
    /// Coalesce `input` into a single partition.
    pub fn new(input: ExecPlanRef) -> Self {
        CoalesceExec {
            input,
            state: ExecCache::new(),
        }
    }
}

impl ExecutionPlan for CoalesceExec {
    fn name(&self) -> &'static str {
        "Coalesce"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn output_partitions(&self) -> usize {
        1
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.input)]
    }

    fn execute(&self, _partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let chunks = self.state.get_or_try_init(ctx, || {
            let parts = crate::physical::execute_collect_partitions(&self.input, ctx)?;
            let chunks: Vec<Chunk> = parts.into_iter().flatten().collect();
            ctx.charge_memory(chunks.iter().map(Chunk::byte_size).sum())?;
            Ok(Arc::new(chunks))
        })?;
        Ok(ctx.instrument(self, Box::new(chunks.as_ref().clone().into_iter().map(Ok))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::catalog::MemTable;
    use crate::expr::col;
    use crate::physical::expr::create_physical_expr;
    use crate::physical::scan::SourceScanExec;
    use crate::physical::{execute_collect, execute_collect_partitions};
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    fn scan(n_rows: i64, parts: usize) -> (ExecPlanRef, SchemaRef) {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let chunk = Chunk::from_rows(
            &schema,
            &(0..n_rows)
                .map(|i| vec![Value::Int64(i % 10)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let source =
            Arc::new(MemTable::from_chunk_partitioned(Arc::clone(&schema), chunk, parts).unwrap());
        (
            Arc::new(SourceScanExec {
                table: "t".into(),
                source,
                schema: Arc::clone(&schema),
                projection: None,
                filters: vec![],
            }),
            schema,
        )
    }

    #[test]
    fn shuffle_groups_equal_keys_together() {
        let (input, schema) = scan(100, 4);
        let key = resolve_expr(&col("k"), &schema).unwrap();
        let plan: ExecPlanRef = Arc::new(ShuffleExec::new(
            input,
            vec![create_physical_expr(&key, &schema).unwrap()],
            3,
        ));
        let parts = execute_collect_partitions(&plan, &TaskContext::default()).unwrap();
        assert_eq!(parts.len(), 3);
        // Every key value must land in exactly one partition.
        let mut seen: std::collections::HashMap<i64, usize> = Default::default();
        let mut total = 0;
        for (p, chunks) in parts.iter().enumerate() {
            for c in chunks {
                total += c.len();
                for r in 0..c.len() {
                    let Value::Int64(k) = c.value_at(0, r) else {
                        panic!()
                    };
                    if let Some(prev) = seen.insert(k, p) {
                        assert_eq!(prev, p, "key {k} split across partitions");
                    }
                }
            }
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn coalesce_merges_everything() {
        let (input, _) = scan(50, 5);
        let plan: ExecPlanRef = Arc::new(CoalesceExec::new(input));
        assert_eq!(plan.output_partitions(), 1);
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 50);
    }

    /// A single-partition source whose contents can grow between scans —
    /// a stand-in for the live Indexed DataFrame source.
    struct LiveSource {
        schema: SchemaRef,
        chunks: std::sync::Mutex<Vec<Chunk>>,
        scans: std::sync::atomic::AtomicUsize,
    }

    impl crate::catalog::TableSource for LiveSource {
        fn schema(&self) -> SchemaRef {
            Arc::clone(&self.schema)
        }

        fn num_partitions(&self) -> usize {
            1
        }

        fn scan(&self, _partition: usize, _projection: Option<&[usize]>) -> Result<ChunkIter> {
            self.scans.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let chunks = self.chunks.lock().unwrap().clone();
            Ok(Box::new(chunks.into_iter().map(Ok)))
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    /// Regression test: `ShuffleExec` used to cache its materialized
    /// buckets in a `OnceLock`, so a second execution of the *same
    /// physical plan* over a source that had since grown replayed the
    /// first execution's rows. The cache is now keyed by execution id.
    #[test]
    fn shuffle_recomputes_for_a_new_execution_over_a_live_source() {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let rows = |lo: i64, hi: i64| (lo..hi).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>();
        let source = Arc::new(LiveSource {
            schema: Arc::clone(&schema),
            chunks: std::sync::Mutex::new(vec![Chunk::from_rows(&schema, &rows(0, 10)).unwrap()]),
            scans: std::sync::atomic::AtomicUsize::new(0),
        });
        let input: ExecPlanRef = Arc::new(SourceScanExec {
            table: "live".into(),
            source: Arc::clone(&source) as _,
            schema: Arc::clone(&schema),
            projection: None,
            filters: vec![],
        });
        let key = resolve_expr(&col("k"), &schema).unwrap();
        let plan: ExecPlanRef = Arc::new(ShuffleExec::new(
            input,
            vec![create_physical_expr(&key, &schema).unwrap()],
            4,
        ));

        let total =
            |parts: &[Vec<Chunk>]| -> usize { parts.iter().flatten().map(Chunk::len).sum() };

        // First execution sees the initial 10 rows, scanning the input
        // exactly once even though 4 output partitions pull from the cache.
        let ctx_a = TaskContext::default();
        let first = execute_collect_partitions(&plan, &ctx_a).unwrap();
        assert_eq!(total(&first), 10);
        assert_eq!(source.scans.load(std::sync::atomic::Ordering::SeqCst), 1);

        // The source grows between executions.
        source
            .chunks
            .lock()
            .unwrap()
            .push(Chunk::from_rows(&schema, &rows(10, 30)).unwrap());

        // Re-executing with the SAME context stays within the original
        // execution: cached buckets, no rescan (snapshot stability).
        let again = execute_collect_partitions(&plan, &ctx_a).unwrap();
        assert_eq!(total(&again), 10);
        assert_eq!(source.scans.load(std::sync::atomic::Ordering::SeqCst), 1);

        // A fresh context is a new execution and must see the new rows —
        // the OnceLock bug returned 10 here.
        let second = execute_collect_partitions(&plan, &TaskContext::default()).unwrap();
        assert_eq!(total(&second), 30);
        assert_eq!(source.scans.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    /// Same regression for `CoalesceExec`, which shared the stale-cache
    /// pattern.
    #[test]
    fn coalesce_recomputes_for_a_new_execution_over_a_live_source() {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let rows = |lo: i64, hi: i64| (lo..hi).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>();
        let source = Arc::new(LiveSource {
            schema: Arc::clone(&schema),
            chunks: std::sync::Mutex::new(vec![Chunk::from_rows(&schema, &rows(0, 5)).unwrap()]),
            scans: std::sync::atomic::AtomicUsize::new(0),
        });
        let input: ExecPlanRef = Arc::new(SourceScanExec {
            table: "live".into(),
            source: Arc::clone(&source) as _,
            schema: Arc::clone(&schema),
            projection: None,
            filters: vec![],
        });
        let plan: ExecPlanRef = Arc::new(CoalesceExec::new(input));

        assert_eq!(
            execute_collect(&plan, &TaskContext::default())
                .unwrap()
                .len(),
            5
        );
        source
            .chunks
            .lock()
            .unwrap()
            .push(Chunk::from_rows(&schema, &rows(5, 12)).unwrap());
        assert_eq!(
            execute_collect(&plan, &TaskContext::default())
                .unwrap()
                .len(),
            12
        );
    }

    #[test]
    fn shuffle_is_deterministic_across_runs() {
        for _ in 0..2 {
            let (input, schema) = scan(40, 2);
            let key = resolve_expr(&col("k"), &schema).unwrap();
            let plan: ExecPlanRef = Arc::new(ShuffleExec::new(
                input,
                vec![create_physical_expr(&key, &schema).unwrap()],
                4,
            ));
            let parts = execute_collect_partitions(&plan, &TaskContext::default()).unwrap();
            let sizes: Vec<usize> = parts
                .iter()
                .map(|c| c.iter().map(Chunk::len).sum())
                .collect();
            assert_eq!(sizes.iter().sum::<usize>(), 40);
        }
    }
}
