//! Physical (executable) expressions with vectorized kernels.
//!
//! Logical expressions are compiled once per operator into a tree of
//! [`PhysicalExpr`]s; evaluation is column-at-a-time over [`Chunk`]s.
//! Null semantics follow SQL: comparisons and arithmetic propagate null,
//! `AND`/`OR` use Kleene three-valued logic, and division by zero yields
//! null (as Spark does).

use std::fmt;
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::chunk::Chunk;
use crate::column::{Column, ColumnRef, PrimVec, StrVec};
use crate::error::{EngineError, Result};
use crate::expr::{BinaryOp, Expr, ScalarFunc};
use crate::schema::Schema;
use crate::types::{DataType, Value};

/// An executable expression.
pub trait PhysicalExpr: Send + Sync + fmt::Debug {
    /// The output type.
    fn data_type(&self) -> DataType;
    /// Evaluate over a chunk, producing one column of `chunk.len()` rows.
    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef>;
}

/// Shared physical expression handle.
pub type PhysicalExprRef = Arc<dyn PhysicalExpr>;

/// Compile a bound logical expression against its input schema.
pub fn create_physical_expr(expr: &Expr, schema: &Schema) -> Result<PhysicalExprRef> {
    Ok(match expr {
        Expr::Column(c) => {
            let index = c.index.ok_or_else(|| {
                EngineError::internal(format!(
                    "cannot compile unresolved column {}",
                    c.display_name()
                ))
            })?;
            Arc::new(ColumnExpr {
                index,
                dt: schema.field(index).data_type,
            })
        }
        Expr::Literal(v) => Arc::new(LiteralExpr { value: v.clone() }),
        Expr::Binary { left, op, right } => {
            let l = create_physical_expr(left, schema)?;
            let r = create_physical_expr(right, schema)?;
            let dt = if op.is_comparison() || op.is_logic() {
                DataType::Boolean
            } else if l.data_type().numeric_rank() >= r.data_type().numeric_rank() {
                l.data_type()
            } else {
                r.data_type()
            };
            Arc::new(BinaryExpr {
                left: l,
                op: *op,
                right: r,
                dt,
            })
        }
        Expr::Not(e) => Arc::new(NotExpr {
            input: create_physical_expr(e, schema)?,
        }),
        Expr::IsNull(e) => Arc::new(IsNullExpr {
            input: create_physical_expr(e, schema)?,
            negated: false,
        }),
        Expr::IsNotNull(e) => Arc::new(IsNullExpr {
            input: create_physical_expr(e, schema)?,
            negated: true,
        }),
        Expr::Cast { expr, to } => Arc::new(CastExpr {
            input: create_physical_expr(expr, schema)?,
            to: *to,
        }),
        Expr::Alias(e, _) => create_physical_expr(e, schema)?,
        Expr::Aggregate { .. } => {
            return Err(EngineError::plan(
                "aggregate expression outside an Aggregate operator".to_string(),
            ))
        }
        Expr::Scalar { func, args } => {
            let args = args
                .iter()
                .map(|a| create_physical_expr(a, schema))
                .collect::<Result<Vec<_>>>()?;
            let dt = match func {
                ScalarFunc::Upper | ScalarFunc::Lower => DataType::Utf8,
                ScalarFunc::Length => DataType::Int64,
                ScalarFunc::Abs | ScalarFunc::Coalesce => args[0].data_type(),
            };
            Arc::new(ScalarFuncExpr {
                func: *func,
                args,
                dt,
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let tested = create_physical_expr(expr, schema)?;
            // The analyzer guarantees list entries are literal-typed
            // expressions of the tested type; evaluate constants eagerly
            // when possible, falling back to runtime evaluation.
            let entries = list
                .iter()
                .map(|e| create_physical_expr(e, schema))
                .collect::<Result<Vec<_>>>()?;
            Arc::new(InListExpr {
                tested,
                entries,
                negated: *negated,
            })
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Arc::new(LikeExpr {
            input: create_physical_expr(expr, schema)?,
            pattern: pattern.clone(),
            negated: *negated,
        }),
    })
}

/// Build a bare column-extraction expression (used by the planner for
/// column-reordering projections).
pub fn column_expr(index: usize, dt: DataType) -> PhysicalExprRef {
    Arc::new(ColumnExpr { index, dt })
}

/// Column extraction by index.
#[derive(Debug)]
struct ColumnExpr {
    index: usize,
    dt: DataType,
}

impl PhysicalExpr for ColumnExpr {
    fn data_type(&self) -> DataType {
        self.dt
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        Ok(Arc::clone(chunk.column(self.index)))
    }
}

/// Constant column.
#[derive(Debug)]
struct LiteralExpr {
    value: Value,
}

impl PhysicalExpr for LiteralExpr {
    fn data_type(&self) -> DataType {
        self.value.data_type().unwrap_or(DataType::Boolean)
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        Ok(Arc::new(Column::repeat(
            self.data_type(),
            &self.value,
            chunk.len(),
        )?))
    }
}

#[derive(Debug)]
struct BinaryExpr {
    left: PhysicalExprRef,
    op: BinaryOp,
    right: PhysicalExprRef,
    dt: DataType,
}

impl PhysicalExpr for BinaryExpr {
    fn data_type(&self) -> DataType {
        self.dt
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        let l = self.left.evaluate(chunk)?;
        let r = self.right.evaluate(chunk)?;
        if self.op.is_logic() {
            return kernels::logic(&l, self.op, &r);
        }
        if self.op.is_comparison() {
            return kernels::compare(&l, self.op, &r);
        }
        kernels::arithmetic(&l, self.op, &r)
    }
}

#[derive(Debug)]
struct NotExpr {
    input: PhysicalExprRef,
}

impl PhysicalExpr for NotExpr {
    fn data_type(&self) -> DataType {
        DataType::Boolean
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        let c = self.input.evaluate(chunk)?;
        let Column::Boolean(v) = c.as_ref() else {
            return Err(EngineError::type_err("NOT over non-boolean column"));
        };
        let values: Vec<bool> = v.values.iter().map(|b| !b).collect();
        Ok(Arc::new(Column::Boolean(PrimVec {
            values,
            validity: v.validity.clone(),
        })))
    }
}

#[derive(Debug)]
struct IsNullExpr {
    input: PhysicalExprRef,
    negated: bool,
}

impl PhysicalExpr for IsNullExpr {
    fn data_type(&self) -> DataType {
        DataType::Boolean
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        let c = self.input.evaluate(chunk)?;
        let values: Vec<bool> = (0..c.len())
            .map(|i| c.is_valid(i) == self.negated)
            .collect();
        Ok(Arc::new(Column::Boolean(PrimVec::from_values(values))))
    }
}

#[derive(Debug)]
struct CastExpr {
    input: PhysicalExprRef,
    to: DataType,
}

impl PhysicalExpr for CastExpr {
    fn data_type(&self) -> DataType {
        self.to
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        let c = self.input.evaluate(chunk)?;
        kernels::cast(&c, self.to)
    }
}

#[derive(Debug)]
struct ScalarFuncExpr {
    func: ScalarFunc,
    args: Vec<PhysicalExprRef>,
    dt: DataType,
}

impl PhysicalExpr for ScalarFuncExpr {
    fn data_type(&self) -> DataType {
        self.dt
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        let cols = self
            .args
            .iter()
            .map(|a| a.evaluate(chunk))
            .collect::<Result<Vec<_>>>()?;
        match self.func {
            ScalarFunc::Upper | ScalarFunc::Lower => {
                let Column::Utf8(v) = cols[0].as_ref() else {
                    return Err(EngineError::type_err("upper/lower over non-string"));
                };
                let mut out = StrVec::new();
                for i in 0..v.len() {
                    match v.get(i) {
                        Some(s) if self.func == ScalarFunc::Upper => {
                            out.push(Some(&s.to_uppercase()))
                        }
                        Some(s) => out.push(Some(&s.to_lowercase())),
                        None => out.push(None),
                    }
                }
                Ok(Arc::new(Column::Utf8(out)))
            }
            ScalarFunc::Length => {
                let Column::Utf8(v) = cols[0].as_ref() else {
                    return Err(EngineError::type_err("length over non-string"));
                };
                let values: Vec<i64> = (0..v.len())
                    .map(|i| v.get(i).map_or(0, |s| s.len() as i64))
                    .collect();
                Ok(Arc::new(Column::Int64(PrimVec {
                    values,
                    validity: v.validity.clone(),
                })))
            }
            ScalarFunc::Abs => match cols[0].as_ref() {
                Column::Int32(v) => Ok(Arc::new(Column::Int32(PrimVec {
                    values: v.values.iter().map(|x| x.wrapping_abs()).collect(),
                    validity: v.validity.clone(),
                }))),
                Column::Int64(v) => Ok(Arc::new(Column::Int64(PrimVec {
                    values: v.values.iter().map(|x| x.wrapping_abs()).collect(),
                    validity: v.validity.clone(),
                }))),
                Column::Float64(v) => Ok(Arc::new(Column::Float64(PrimVec {
                    values: v.values.iter().map(|x| x.abs()).collect(),
                    validity: v.validity.clone(),
                }))),
                other => Err(EngineError::type_err(format!(
                    "abs over {} column",
                    other.data_type()
                ))),
            },
            ScalarFunc::Coalesce => {
                // Row-wise first non-null across the argument columns.
                let len = chunk.len();
                let mut b = crate::column::ColumnBuilder::new(self.dt);
                for row in 0..len {
                    let mut out = Value::Null;
                    for c in &cols {
                        if c.is_valid(row) {
                            out = c.value_at(row);
                            break;
                        }
                    }
                    b.push(&out)?;
                }
                Ok(Arc::new(b.finish()))
            }
        }
    }
}

#[derive(Debug)]
struct InListExpr {
    tested: PhysicalExprRef,
    entries: Vec<PhysicalExprRef>,
    negated: bool,
}

impl PhysicalExpr for InListExpr {
    fn data_type(&self) -> DataType {
        DataType::Boolean
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        let tested = self.tested.evaluate(chunk)?;
        let entry_cols = self
            .entries
            .iter()
            .map(|e| e.evaluate(chunk))
            .collect::<Result<Vec<_>>>()?;
        let len = chunk.len();
        let mut values = Vec::with_capacity(len);
        let mut validity = Bitmap::ones(len);
        let mut any_null = false;
        for row in 0..len {
            let v = tested.value_at(row);
            if v.is_null() {
                // NULL IN (...) is NULL.
                values.push(false);
                validity.set(row, false);
                any_null = true;
                continue;
            }
            let mut found = false;
            let mut saw_null_entry = false;
            for c in &entry_cols {
                let e = c.value_at(row);
                if e.is_null() {
                    saw_null_entry = true;
                } else if e == v {
                    found = true;
                    break;
                }
            }
            // SQL three-valued IN: no match but a NULL entry → NULL.
            if !found && saw_null_entry {
                values.push(false);
                validity.set(row, false);
                any_null = true;
            } else {
                values.push(found != self.negated);
            }
        }
        Ok(Arc::new(Column::Boolean(PrimVec {
            values,
            validity: any_null.then_some(validity),
        })))
    }
}

#[derive(Debug)]
struct LikeExpr {
    input: PhysicalExprRef,
    pattern: String,
    negated: bool,
}

/// SQL LIKE matching: `%` matches any run, `_` any single character.
/// Iterative two-pointer algorithm with backtracking over the last `%`.
pub(crate) fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star, mut star_t) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl PhysicalExpr for LikeExpr {
    fn data_type(&self) -> DataType {
        DataType::Boolean
    }

    fn evaluate(&self, chunk: &Chunk) -> Result<ColumnRef> {
        let c = self.input.evaluate(chunk)?;
        let Column::Utf8(v) = c.as_ref() else {
            return Err(EngineError::type_err("LIKE over non-string column"));
        };
        let values: Vec<bool> = (0..v.len())
            .map(|i| {
                v.get(i)
                    .is_some_and(|s| like_match(s, &self.pattern) != self.negated)
            })
            .collect();
        Ok(Arc::new(Column::Boolean(PrimVec {
            values,
            validity: v.validity.clone(),
        })))
    }
}

/// Evaluate a boolean predicate over a chunk into a selection bitmap
/// (nulls select nothing, per SQL filter semantics).
pub fn evaluate_predicate(expr: &dyn PhysicalExpr, chunk: &Chunk) -> Result<Bitmap> {
    let c = expr.evaluate(chunk)?;
    let Column::Boolean(v) = c.as_ref() else {
        return Err(EngineError::type_err(format!(
            "filter predicate must be BOOLEAN, got {}",
            c.data_type()
        )));
    };
    let mut mask = Bitmap::zeros(v.len());
    for i in 0..v.len() {
        if v.is_valid(i) && v.values[i] {
            mask.set(i, true);
        }
    }
    Ok(mask)
}

/// Vectorized kernels.
pub(crate) mod kernels {
    use super::*;

    fn merged_validity(l: &Option<Bitmap>, r: &Option<Bitmap>, len: usize) -> Option<Bitmap> {
        match (l, r) {
            (None, None) => None,
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (Some(a), Some(b)) => Some(a.and(b)),
        }
        .inspect(|b| {
            debug_assert_eq!(b.len(), len);
        })
    }

    /// Kleene AND/OR over boolean columns.
    pub fn logic(l: &Column, op: BinaryOp, r: &Column) -> Result<ColumnRef> {
        let (Column::Boolean(a), Column::Boolean(b)) = (l, r) else {
            return Err(EngineError::type_err("logic over non-boolean columns"));
        };
        let len = a.len();
        let mut values = Vec::with_capacity(len);
        let mut validity = Bitmap::zeros(len);
        let mut all_valid = true;
        for i in 0..len {
            let av = a.get(i);
            let bv = b.get(i);
            let out = match op {
                BinaryOp::And => match (av, bv) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                BinaryOp::Or => match (av, bv) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                _ => return Err(EngineError::internal("logic kernel on non-logic op")),
            };
            match out {
                Some(v) => {
                    values.push(v);
                    validity.set(i, true);
                }
                None => {
                    values.push(false);
                    all_valid = false;
                }
            }
        }
        Ok(Arc::new(Column::Boolean(PrimVec {
            values,
            validity: if all_valid { None } else { Some(validity) },
        })))
    }

    fn cmp_outcome<T: PartialOrd>(a: T, op: BinaryOp, b: T) -> bool {
        match op {
            BinaryOp::Eq => a == b,
            BinaryOp::NotEq => a != b,
            BinaryOp::Lt => a < b,
            BinaryOp::LtEq => a <= b,
            BinaryOp::Gt => a > b,
            BinaryOp::GtEq => a >= b,
            // idf-lint: allow(hot-path-panic) -- comparison() dispatches only comparison ops here
            _ => unreachable!("comparison kernel on non-comparison op"),
        }
    }

    fn compare_prim<T: Copy + PartialOrd + Default>(
        a: &PrimVec<T>,
        op: BinaryOp,
        b: &PrimVec<T>,
    ) -> Column {
        let len = a.len();
        let values: Vec<bool> = (0..len)
            .map(|i| cmp_outcome(a.values[i], op, b.values[i]))
            .collect();
        Column::Boolean(PrimVec {
            values,
            validity: merged_validity(&a.validity, &b.validity, len),
        })
    }

    /// Comparison over same-typed columns; null if either side is null.
    pub fn compare(l: &Column, op: BinaryOp, r: &Column) -> Result<ColumnRef> {
        if l.len() != r.len() {
            return Err(EngineError::internal("comparison over mismatched lengths"));
        }
        let out = match (l, r) {
            (Column::Int32(a), Column::Int32(b)) => compare_prim(a, op, b),
            (Column::Int64(a), Column::Int64(b)) => compare_prim(a, op, b),
            (Column::Timestamp(a), Column::Timestamp(b)) => compare_prim(a, op, b),
            (Column::Float64(a), Column::Float64(b)) => compare_prim(a, op, b),
            (Column::Boolean(a), Column::Boolean(b)) => {
                let len = a.len();
                let values: Vec<bool> = (0..len)
                    .map(|i| cmp_outcome(a.values[i], op, b.values[i]))
                    .collect();
                Column::Boolean(PrimVec {
                    values,
                    validity: merged_validity(&a.validity, &b.validity, len),
                })
            }
            (Column::Utf8(a), Column::Utf8(b)) => {
                let len = a.len();
                let mut values = Vec::with_capacity(len);
                for i in 0..len {
                    let (x, y) = (a.get(i).unwrap_or(""), b.get(i).unwrap_or(""));
                    values.push(cmp_outcome(x, op, y));
                }
                let av = a.validity.clone();
                let bv = b.validity.clone();
                Column::Boolean(PrimVec {
                    values,
                    validity: merged_validity(&av, &bv, len),
                })
            }
            (a, b) => {
                return Err(EngineError::type_err(format!(
                    "cannot compare {} with {}",
                    a.data_type(),
                    b.data_type()
                )))
            }
        };
        Ok(Arc::new(out))
    }

    macro_rules! arith_int {
        ($a:expr, $op:expr, $b:expr, $variant:ident) => {{
            let len = $a.len();
            let mut values = Vec::with_capacity(len);
            let mut validity = match merged_validity(&$a.validity, &$b.validity, len) {
                Some(v) => v,
                None => Bitmap::ones(len),
            };
            for i in 0..len {
                let (x, y) = ($a.values[i], $b.values[i]);
                let out = match $op {
                    BinaryOp::Plus => x.checked_add(y),
                    BinaryOp::Minus => x.checked_sub(y),
                    BinaryOp::Multiply => x.checked_mul(y),
                    BinaryOp::Divide => x.checked_div(y),
                    BinaryOp::Modulo => x.checked_rem(y),
                    // idf-lint: allow(hot-path-panic) -- arithmetic() dispatches only arithmetic ops here
                    _ => unreachable!("arithmetic kernel on non-arithmetic op"),
                };
                match out {
                    Some(v) => values.push(v),
                    None => {
                        values.push(Default::default());
                        validity.set(i, false);
                    }
                }
            }
            Column::$variant(PrimVec {
                values,
                validity: Some(validity),
            })
        }};
    }

    /// Arithmetic over same-typed numeric columns.
    pub fn arithmetic(l: &Column, op: BinaryOp, r: &Column) -> Result<ColumnRef> {
        if l.len() != r.len() {
            return Err(EngineError::internal("arithmetic over mismatched lengths"));
        }
        let out = match (l, r) {
            (Column::Int32(a), Column::Int32(b)) => arith_int!(a, op, b, Int32),
            (Column::Int64(a), Column::Int64(b)) => arith_int!(a, op, b, Int64),
            (Column::Float64(a), Column::Float64(b)) => {
                let len = a.len();
                let values: Vec<f64> = (0..len)
                    .map(|i| {
                        let (x, y) = (a.values[i], b.values[i]);
                        match op {
                            BinaryOp::Plus => x + y,
                            BinaryOp::Minus => x - y,
                            BinaryOp::Multiply => x * y,
                            BinaryOp::Divide => x / y,
                            BinaryOp::Modulo => x % y,
                            // idf-lint: allow(hot-path-panic) -- arithmetic() dispatches only arithmetic ops here
                            _ => unreachable!("arithmetic kernel on non-arithmetic op"),
                        }
                    })
                    .collect();
                Column::Float64(PrimVec {
                    values,
                    validity: merged_validity(&a.validity, &b.validity, len),
                })
            }
            (a, b) => {
                return Err(EngineError::type_err(format!(
                    "cannot apply {op} to {} and {}",
                    a.data_type(),
                    b.data_type()
                )))
            }
        };
        Ok(Arc::new(out))
    }

    /// Cast a column to `to`; uncastable cells become null.
    pub fn cast(c: &Column, to: DataType) -> Result<ColumnRef> {
        if c.data_type() == to {
            return Ok(Arc::new(c.clone()));
        }
        // Fast paths for the common numeric widenings.
        match (c, to) {
            (Column::Int32(v), DataType::Int64) => {
                let values = v.values.iter().map(|&x| i64::from(x)).collect();
                return Ok(Arc::new(Column::Int64(PrimVec {
                    values,
                    validity: v.validity.clone(),
                })));
            }
            (Column::Int32(v), DataType::Float64) => {
                let values = v.values.iter().map(|&x| f64::from(x)).collect();
                return Ok(Arc::new(Column::Float64(PrimVec {
                    values,
                    validity: v.validity.clone(),
                })));
            }
            (Column::Int64(v), DataType::Float64) => {
                let values = v.values.iter().map(|&x| x as f64).collect();
                return Ok(Arc::new(Column::Float64(PrimVec {
                    values,
                    validity: v.validity.clone(),
                })));
            }
            (Column::Timestamp(v), DataType::Int64) => {
                return Ok(Arc::new(Column::Int64(v.clone())));
            }
            (Column::Int64(v), DataType::Timestamp) => {
                return Ok(Arc::new(Column::Timestamp(v.clone())));
            }
            _ => {}
        }
        // Generic scalar path.
        let mut b = crate::column::ColumnBuilder::new(to);
        for i in 0..c.len() {
            match c.value_at(i).cast(to) {
                Some(v) => b.push(&v)?,
                None => b.push(&Value::Null)?,
            }
        }
        Ok(Arc::new(b.finish()))
    }

    /// Cast helper used by string casts in the generic path.
    #[allow(dead_code)]
    fn utf8_from_iter<'a>(it: impl Iterator<Item = Option<&'a str>>) -> Column {
        let mut v = StrVec::new();
        for s in it {
            v.push(s);
        }
        Column::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::expr::{col, lit};
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("f", DataType::Float64),
        ])
    }

    fn chunk() -> Chunk {
        let s = Arc::new(schema());
        Chunk::from_rows(
            &s,
            &[
                vec![
                    Value::Int64(1),
                    Value::Int64(10),
                    Value::Utf8("x".into()),
                    Value::Float64(0.5),
                ],
                vec![
                    Value::Int64(2),
                    Value::Null,
                    Value::Utf8("y".into()),
                    Value::Float64(1.5),
                ],
                vec![
                    Value::Int64(3),
                    Value::Int64(30),
                    Value::Null,
                    Value::Float64(2.5),
                ],
            ],
        )
        .unwrap()
    }

    fn compile(e: &Expr) -> PhysicalExprRef {
        let s = schema();
        let bound = resolve_expr(e, &s).unwrap();
        create_physical_expr(&bound, &s).unwrap()
    }

    #[test]
    fn column_and_literal() {
        let c = chunk();
        let e = compile(&col("a"));
        assert_eq!(e.evaluate(&c).unwrap().value_at(2), Value::Int64(3));
        let l = compile(&lit(7i64));
        let out = l.evaluate(&c).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.value_at(1), Value::Int64(7));
    }

    #[test]
    fn comparison_propagates_null() {
        let c = chunk();
        let e = compile(&col("b").gt(lit(5i64)));
        let out = e.evaluate(&c).unwrap();
        assert_eq!(out.value_at(0), Value::Boolean(true));
        assert_eq!(out.value_at(1), Value::Null);
        assert_eq!(out.value_at(2), Value::Boolean(true));
    }

    #[test]
    fn arithmetic_and_div_by_zero() {
        let c = chunk();
        let e = compile(&col("a").add(lit(100i64)));
        assert_eq!(e.evaluate(&c).unwrap().value_at(0), Value::Int64(101));
        let d = compile(&col("a").div(lit(0i64)));
        assert_eq!(d.evaluate(&c).unwrap().value_at(0), Value::Null);
    }

    #[test]
    fn kleene_logic() {
        let c = chunk();
        // b IS NULL at row 1; (b > 5) is NULL there.
        let e = compile(&col("b").gt(lit(5i64)).or(col("a").eq(lit(2i64))));
        let out = e.evaluate(&c).unwrap();
        assert_eq!(out.value_at(1), Value::Boolean(true), "NULL OR true = true");
        let e2 = compile(&col("b").gt(lit(5i64)).and(col("a").eq(lit(2i64))));
        let out2 = e2.evaluate(&c).unwrap();
        assert_eq!(out2.value_at(1), Value::Null, "NULL AND true = NULL");
        assert_eq!(out2.value_at(0), Value::Boolean(false));
    }

    #[test]
    fn string_compare() {
        let c = chunk();
        let e = compile(&col("s").eq(lit("y")));
        let out = e.evaluate(&c).unwrap();
        assert_eq!(out.value_at(0), Value::Boolean(false));
        assert_eq!(out.value_at(1), Value::Boolean(true));
        assert_eq!(out.value_at(2), Value::Null);
    }

    #[test]
    fn predicate_mask_treats_null_as_false() {
        let c = chunk();
        let e = compile(&col("b").gt(lit(5i64)));
        let mask = evaluate_predicate(e.as_ref(), &c).unwrap();
        assert_eq!(mask.set_indices(), vec![0, 2]);
    }

    #[test]
    fn mixed_type_plan_inserts_casts() {
        let c = chunk();
        // f (float) vs a (int64): analyzer inserts casts; result boolean.
        let e = compile(&col("f").lt(col("a")));
        let out = e.evaluate(&c).unwrap();
        assert_eq!(out.value_at(0), Value::Boolean(true)); // 0.5 < 1
        assert_eq!(out.value_at(1), Value::Boolean(true)); // 1.5 < 2
        assert_eq!(out.value_at(2), Value::Boolean(true)); // 2.5 < 3
    }

    #[test]
    fn is_null_kernels() {
        let c = chunk();
        let e = compile(&col("b").is_null());
        let out = e.evaluate(&c).unwrap();
        assert_eq!(out.value_at(1), Value::Boolean(true));
        assert_eq!(out.value_at(0), Value::Boolean(false));
        let e2 = compile(&col("b").is_not_null());
        assert_eq!(e2.evaluate(&c).unwrap().value_at(1), Value::Boolean(false));
    }

    #[test]
    fn not_kernel() {
        let c = chunk();
        let e = compile(&col("a").eq(lit(1i64)).not());
        let out = e.evaluate(&c).unwrap();
        assert_eq!(out.value_at(0), Value::Boolean(false));
        assert_eq!(out.value_at(1), Value::Boolean(true));
    }

    #[test]
    fn int_overflow_becomes_null() {
        let s = Arc::new(Schema::new(vec![Field::new("a", DataType::Int64)]));
        let c = Chunk::from_rows(&s, &[vec![Value::Int64(i64::MAX)]]).unwrap();
        let e = resolve_expr(&col("a").add(lit(1i64)), &s).unwrap();
        let pe = create_physical_expr(&e, &s).unwrap();
        assert_eq!(pe.evaluate(&c).unwrap().value_at(0), Value::Null);
    }
}
