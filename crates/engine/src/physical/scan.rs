//! Scan operators: table sources and literal values.

use std::sync::Arc;

use crate::catalog::{ChunkIter, TableSource};
use crate::chunk::Chunk;
use crate::error::Result;
use crate::expr::Expr;
use crate::physical::{ExecutionPlan, TaskContext};
use crate::schema::SchemaRef;
use crate::types::Value;

/// Scan of a [`TableSource`], with optional projection and pushed filters.
pub struct SourceScanExec {
    /// Catalog name, for EXPLAIN.
    pub table: String,
    /// The source.
    pub source: Arc<dyn TableSource>,
    /// Output schema (post-projection, qualified).
    pub schema: SchemaRef,
    /// Projected column indices into the source schema.
    pub projection: Option<Vec<usize>>,
    /// Filters the source evaluates natively (e.g. index lookups).
    pub filters: Vec<Expr>,
}

impl std::fmt::Debug for SourceScanExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SourceScanExec({})", self.table)
    }
}

impl ExecutionPlan for SourceScanExec {
    fn name(&self) -> &'static str {
        "SourceScan"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        self.source.num_partitions()
    }

    fn children(&self) -> Vec<Arc<dyn ExecutionPlan>> {
        vec![]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let iter = self.source.scan_with_ctx(
            partition,
            self.projection.as_deref(),
            &self.filters,
            ctx.query(),
        )?;
        Ok(ctx.instrument(self, iter))
    }

    fn detail(&self) -> String {
        let mut s = self.table.clone();
        if let Some(p) = &self.projection {
            s.push_str(&format!(" projection={p:?}"));
        }
        if !self.filters.is_empty() {
            let fs: Vec<String> = self.filters.iter().map(|f| f.to_string()).collect();
            s.push_str(&format!(" pushed=[{}]", fs.join(", ")));
        }
        s
    }
}

/// Literal rows (the `VALUES` clause / `Session::create_dataframe`).
#[derive(Debug)]
pub struct ValuesExec {
    /// Output schema.
    pub schema: SchemaRef,
    /// Row-major literals.
    pub rows: Vec<Vec<Value>>,
}

impl ExecutionPlan for ValuesExec {
    fn name(&self) -> &'static str {
        "Values"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        1
    }

    fn children(&self) -> Vec<Arc<dyn ExecutionPlan>> {
        vec![]
    }

    fn execute(&self, _partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let chunk = Chunk::from_rows(&self.schema, &self.rows)?;
        Ok(ctx.instrument(self, Box::new(std::iter::once(Ok(chunk)))))
    }

    fn detail(&self) -> String {
        format!("{} rows", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemTable;
    use crate::physical::execute_collect;
    use crate::physical::ExecPlanRef;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    #[test]
    fn values_exec_produces_rows() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let plan: ExecPlanRef = Arc::new(ValuesExec {
            schema,
            rows: vec![vec![Value::Int64(1)], vec![Value::Int64(2)]],
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value_at(0, 1), Value::Int64(2));
    }

    #[test]
    fn source_scan_partitions_match_source() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let chunk = Chunk::from_rows(
            &schema,
            &(0..9).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        let source =
            Arc::new(MemTable::from_chunk_partitioned(Arc::clone(&schema), chunk, 3).unwrap());
        let plan: ExecPlanRef = Arc::new(SourceScanExec {
            table: "t".into(),
            source,
            schema,
            projection: None,
            filters: vec![],
        });
        assert_eq!(plan.output_partitions(), 3);
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 9);
    }
}
