//! Physical query plans: executable, partitioned operators.
//!
//! The execution model is partition-parallel pull (Volcano per partition,
//! vectorized over [`Chunk`]s): `execute(p)` returns an iterator of chunks
//! for output partition `p`; the driver runs all output partitions on a
//! thread pool. Pipeline breakers ([`ShuffleExec`], [`SortExec`],
//! [`HashAggregateExec`] and join build sides) materialize lazily and
//! exactly once *per execution* behind [`ExecCache`]s, which is the
//! single-process analogue of Spark's shuffle files and broadcast
//! variables (re-keyed per job so re-running a plan over a live, updatable
//! source sees fresh data).

mod aggregate;
pub mod expr;
mod filter;
mod join;
mod limit;
pub mod metrics;
mod project;
mod scan;
mod shuffle;
pub mod sort;
mod union;

pub use aggregate::{AggregateSpec, HashAggregateExec};
pub use expr::{create_physical_expr, evaluate_predicate, PhysicalExpr, PhysicalExprRef};
pub use filter::FilterExec;
pub use join::{BroadcastHashJoinExec, HashJoinExec};
pub use limit::LimitExec;
pub use metrics::{MetricsRegistry, OperatorStats};
pub use project::ProjectionExec;
pub use scan::{SourceScanExec, ValuesExec};
pub use shuffle::{CoalesceExec, ShuffleExec};
pub use sort::{PhysicalSortKey, SortExec};
pub use union::UnionExec;

use std::fmt;
use std::sync::Arc;

pub use crate::catalog::ChunkIter;
use crate::chunk::Chunk;
use crate::config::EngineConfig;
use crate::error::{catch_panics, Result};
use crate::query::QueryContext;
use crate::schema::SchemaRef;
use crate::types::Value;

/// Per-query execution context handed to every operator.
///
/// Every constructed context gets a fresh [`TaskContext::execution_id`];
/// *clones* share it. The driver clones one context across the partition
/// tasks of a single collect, so the id identifies "one execution of one
/// plan" — which is exactly the lifetime pipeline-breaker results cached
/// in an [`ExecCache`] are valid for.
///
/// The context also carries the query's [`QueryContext`] (cancellation
/// token, deadline, memory account); [`TaskContext::instrument`] wraps
/// every operator's output iterator with a per-chunk lifecycle check, so
/// cancellation and deadlines take effect within one chunk of work at
/// every pipeline stage.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// Engine configuration snapshot.
    pub config: EngineConfig,
    /// When present, operators report per-operator metrics here
    /// (`EXPLAIN ANALYZE`).
    pub metrics: Option<Arc<MetricsRegistry>>,
    query: Arc<QueryContext>,
    execution_id: u64,
}

impl Default for TaskContext {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

/// Source of fresh [`TaskContext::execution_id`]s.
static NEXT_EXECUTION_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl TaskContext {
    /// Context with the given configuration and an unbounded
    /// [`QueryContext`] (no deadline, no memory limits).
    pub fn new(config: EngineConfig) -> Self {
        Self::with_query(config, QueryContext::unbounded())
    }

    /// Context bound to an existing query lifecycle token.
    pub fn with_query(config: EngineConfig, query: Arc<QueryContext>) -> Self {
        TaskContext {
            config,
            metrics: None,
            query,
            execution_id: Self::fresh_execution_id(),
        }
    }

    /// Context that records per-operator metrics into `registry`.
    pub fn with_metrics(config: EngineConfig, registry: Arc<MetricsRegistry>) -> Self {
        Self::with_query_metrics(config, QueryContext::unbounded(), registry)
    }

    /// Context bound to a query lifecycle token that also records
    /// per-operator metrics into `registry` (`EXPLAIN ANALYZE` under
    /// cancellation/deadline/memory budgets).
    pub fn with_query_metrics(
        config: EngineConfig,
        query: Arc<QueryContext>,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        TaskContext {
            config,
            metrics: Some(registry),
            query,
            execution_id: Self::fresh_execution_id(),
        }
    }

    /// The query lifecycle token (cancellation, deadline, memory budget)
    /// this execution runs under.
    pub fn query(&self) -> &Arc<QueryContext> {
        &self.query
    }

    /// Return the typed stop error if the query was cancelled or is past
    /// its deadline. Long-running loops that do not go through
    /// [`TaskContext::instrument`] call this directly.
    pub fn check_cancelled(&self) -> Result<()> {
        self.query.check()
    }

    /// Charge `bytes` of materialized buffer against the query's memory
    /// budgets (see [`QueryContext::charge_memory`]).
    pub fn charge_memory(&self, bytes: usize) -> Result<()> {
        self.query.charge_memory(bytes)
    }

    fn fresh_execution_id() -> u64 {
        // idf-lint: allow(atomics-audit) -- execution-id minting: uniqueness only, no ordering needed
        NEXT_EXECUTION_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// The id of the plan execution this context belongs to (shared by
    /// clones, unique per constructed context).
    pub fn execution_id(&self) -> u64 {
        self.execution_id
    }

    /// Wrap `iter` with the query's per-chunk lifecycle check
    /// (cancellation + deadline) and, when a metrics registry is present,
    /// attribute its output to `plan`. Operators call this on their
    /// result, which is what bounds cancellation latency to one chunk per
    /// pipeline stage.
    pub fn instrument(&self, plan: &dyn ExecutionPlan, iter: ChunkIter) -> ChunkIter {
        let iter = guard_lifecycle(Arc::clone(&self.query), iter);
        match &self.metrics {
            Some(registry) => metrics::instrument(registry.operator(&operator_key(plan)), iter),
            None => iter,
        }
    }
}

/// Iterator adapter that checks the query lifecycle before yielding each
/// chunk; fused after the first error so a cancelled pipeline stops
/// cleanly.
struct LifecycleGuard {
    query: Arc<QueryContext>,
    inner: ChunkIter,
    done: bool,
}

impl Iterator for LifecycleGuard {
    type Item = Result<Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Err(e) = self.query.check() {
            self.done = true;
            return Some(Err(e));
        }
        match self.inner.next() {
            Some(Err(e)) => {
                self.done = true;
                Some(Err(e))
            }
            other => other,
        }
    }
}

/// Wrap `iter` so each `next()` first checks `query` for cancellation or
/// an elapsed deadline.
fn guard_lifecycle(query: Arc<QueryContext>, inner: ChunkIter) -> ChunkIter {
    Box::new(LifecycleGuard {
        query,
        inner,
        done: false,
    })
}

/// Once-per-execution cache for pipeline-breaker results (shuffle
/// spills, broadcast build sides), keyed by [`TaskContext::execution_id`].
///
/// A bare `OnceLock` in an operator caches *forever*: re-executing the
/// same physical plan against a live, updatable source would replay the
/// first execution's data. `ExecCache` recomputes whenever the context's
/// execution id differs from the cached one, while partition tasks of the
/// *same* execution (which share a cloned context, hence the id) still
/// compute the value exactly once — the mutex is held for the duration of
/// `init`, so same-execution callers block and then reuse the result.
#[derive(Debug, Default)]
pub struct ExecCache<T> {
    slot: std::sync::Mutex<Option<(u64, T)>>,
}

impl<T: Clone> ExecCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        ExecCache {
            slot: std::sync::Mutex::new(None),
        }
    }

    /// The value for `ctx`'s execution: cached if this execution already
    /// computed it, otherwise freshly built by `init` (replacing any value
    /// a previous execution left behind).
    pub fn get_or_try_init(
        &self,
        ctx: &TaskContext,
        init: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((id, value)) = slot.as_ref() {
            if *id == ctx.execution_id() {
                return Ok(value.clone());
            }
        }
        let value = init()?;
        *slot = Some((ctx.execution_id(), value.clone()));
        Ok(value)
    }
}

/// An executable operator.
pub trait ExecutionPlan: Send + Sync + fmt::Debug {
    /// Operator name for `EXPLAIN` output.
    fn name(&self) -> &'static str;
    /// Output schema.
    fn schema(&self) -> SchemaRef;
    /// Number of output partitions.
    fn output_partitions(&self) -> usize;
    /// Child operators.
    fn children(&self) -> Vec<Arc<dyn ExecutionPlan>>;
    /// Produce output partition `partition`.
    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter>;
    /// One-line detail string appended to [`ExecutionPlan::name`] in
    /// `EXPLAIN` output.
    fn detail(&self) -> String {
        String::new()
    }
}

/// Shared physical plan handle.
pub type ExecPlanRef = Arc<dyn ExecutionPlan>;

/// The key operator metrics are recorded and looked up under:
/// `"{name}: {detail}"`, or just the name when there is no detail.
/// Nodes with identical keys (e.g. two scans of the same table)
/// aggregate into one entry.
pub fn operator_key(plan: &dyn ExecutionPlan) -> String {
    let detail = plan.detail();
    if detail.is_empty() {
        plan.name().to_string()
    } else {
        format!("{}: {}", plan.name(), detail)
    }
}

/// Render a physical plan tree as indented text.
pub fn display_exec(plan: &dyn ExecutionPlan) -> String {
    fn rec(plan: &dyn ExecutionPlan, out: &mut String, indent: usize) {
        out.push_str(&"  ".repeat(indent));
        out.push_str(plan.name());
        let d = plan.detail();
        if !d.is_empty() {
            out.push_str(": ");
            out.push_str(&d);
        }
        out.push('\n');
        for c in plan.children() {
            rec(c.as_ref(), out, indent + 1);
        }
    }
    let mut s = String::new();
    rec(plan, &mut s, 0);
    s
}

/// Drain every output partition of `plan` in parallel and return the chunks
/// per partition. This is the driver's "run the job" entry point.
///
/// Every partition task runs inside [`catch_panics`], so a panicking
/// operator (or injected fault) surfaces as an [`EngineError::Internal`]
/// on this query instead of aborting the process.
///
/// [`EngineError::Internal`]: crate::error::EngineError::Internal
pub fn execute_collect_partitions(
    plan: &ExecPlanRef,
    ctx: &TaskContext,
) -> Result<Vec<Vec<Chunk>>> {
    ctx.check_cancelled()?;
    let n = plan.output_partitions();
    if n == 0 {
        return Ok(Vec::new());
    }
    let run_partition = |p: usize, ctx: &TaskContext| -> Result<Vec<Chunk>> {
        catch_panics(|| {
            crate::failpoints::check(crate::failpoints::WORKER_START)?;
            plan.execute(p, ctx)?.collect()
        })
    };
    if n == 1 {
        return Ok(vec![run_partition(0, ctx)?]);
    }
    let mut out: Vec<Result<Vec<Chunk>>> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|p| {
                let ctx = ctx.clone();
                let run = &run_partition;
                s.spawn(move || run(p, &ctx))
            })
            .collect();
        for h in handles {
            // The body is already panic-isolated; a panicking *join* can
            // only mean the unwind escaped `catch_unwind` (e.g. an abort),
            // so treat it the same way instead of propagating.
            out.push(h.join().unwrap_or_else(|payload| {
                Err(crate::error::EngineError::Internal(format!(
                    "partition task panicked: {}",
                    crate::error::panic_message(payload.as_ref())
                )))
            }));
        }
    });
    out.into_iter().collect()
}

/// Drain every partition and concatenate into a single chunk.
pub fn execute_collect(plan: &ExecPlanRef, ctx: &TaskContext) -> Result<Chunk> {
    let parts = execute_collect_partitions(plan, ctx)?;
    let mut chunks: Vec<Chunk> = parts.into_iter().flatten().collect();
    if chunks.len() > 1 {
        return Chunk::concat(&chunks);
    }
    match chunks.pop() {
        Some(only) => Ok(only),
        None => Ok(Chunk::empty(&plan.schema())),
    }
}

/// Stable 64-bit hash of a scalar, used for shuffle partitioning and join
/// keys. Must agree between the build and probe sides of a join and with
/// the Indexed DataFrame's partitioner (`idf-core` re-exports it).
pub fn hash_value(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = idf_hash::FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// Combined hash of a composite key.
pub fn hash_values(vs: &[Value]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for v in vs {
        acc = idf_hash::mix64(acc ^ hash_value(v));
    }
    acc
}

/// Minimal local Fx-style hasher so the engine does not depend on
/// `idf-ctrie` (which depends on nothing here; the dependency must stay
/// one-way for the workspace layering).
mod idf_hash {
    /// splitmix64 finalizer.
    #[inline]
    pub fn mix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// FNV-1a with splitmix64 finalizer (same construction as
    /// `idf_ctrie::hash::FxHasher`).
    pub struct FxHasher {
        state: u64,
    }

    impl Default for FxHasher {
        fn default() -> Self {
            FxHasher {
                state: 0xcbf2_9ce4_8422_2325,
            }
        }
    }

    impl std::hash::Hasher for FxHasher {
        #[inline]
        fn finish(&self) -> u64 {
            mix64(self.state)
        }

        #[inline]
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.state = (self.state ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }

        #[inline]
        fn write_u64(&mut self, i: u64) {
            self.state = mix64(self.state ^ i);
        }

        #[inline]
        fn write_i64(&mut self, i: i64) {
            self.write_u64(i as u64);
        }

        #[inline]
        fn write_u32(&mut self, i: u32) {
            self.write_u64(u64::from(i));
        }

        #[inline]
        fn write_i32(&mut self, i: i32) {
            self.write_u64(i as u32 as u64);
        }

        #[inline]
        fn write_usize(&mut self, i: usize) {
            self.write_u64(i as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_cache_is_keyed_by_execution_id() {
        let cache: ExecCache<u64> = ExecCache::new();
        let ctx_a = TaskContext::default();
        let calls = std::sync::atomic::AtomicU64::new(0);
        let bump = || Ok(calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1);
        // First call computes; same-execution calls (clones included) hit
        // the cache.
        assert_eq!(cache.get_or_try_init(&ctx_a, bump).unwrap(), 1);
        assert_eq!(cache.get_or_try_init(&ctx_a, bump).unwrap(), 1);
        assert_eq!(cache.get_or_try_init(&ctx_a.clone(), bump).unwrap(), 1);
        // A fresh context is a new execution: recompute.
        let ctx_b = TaskContext::default();
        assert_eq!(cache.get_or_try_init(&ctx_b, bump).unwrap(), 2);
        // Errors are not cached — the next caller retries.
        let err = cache
            .get_or_try_init(&TaskContext::default(), || {
                Err::<u64, _>(crate::error::EngineError::internal("boom"))
            })
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        assert_eq!(cache.get_or_try_init(&ctx_b, bump).unwrap(), 2);
    }

    #[test]
    fn hash_value_stable_and_type_tagged() {
        assert_eq!(hash_value(&Value::Int64(5)), hash_value(&Value::Int64(5)));
        assert_ne!(hash_value(&Value::Int64(5)), hash_value(&Value::Int64(6)));
        // discriminant participates: Int32(5) != Int64(5)
        assert_ne!(hash_value(&Value::Int32(5)), hash_value(&Value::Int64(5)));
    }

    #[test]
    fn hash_values_order_sensitive() {
        let a = [Value::Int64(1), Value::Int64(2)];
        let b = [Value::Int64(2), Value::Int64(1)];
        assert_ne!(hash_values(&a), hash_values(&b));
        assert_eq!(hash_values(&a), hash_values(&a));
    }
}
