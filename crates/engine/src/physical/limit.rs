//! Row limits.

use std::sync::Arc;

use crate::catalog::ChunkIter;
use crate::error::Result;
use crate::physical::{ExecPlanRef, ExecutionPlan, TaskContext};
use crate::schema::SchemaRef;

/// Emit at most `n` rows (global when the input has one partition — the
/// planner coalesces — or per-partition as a pre-limit otherwise).
#[derive(Debug)]
pub struct LimitExec {
    /// Input operator.
    pub input: ExecPlanRef,
    /// Maximum rows per output partition.
    pub n: usize,
}

impl ExecutionPlan for LimitExec {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn output_partitions(&self) -> usize {
        self.input.output_partitions()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.input)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let input = self.input.execute(partition, ctx)?;
        let mut remaining = self.n;
        let iter: ChunkIter = Box::new(input.map_while(move |chunk| {
            if remaining == 0 {
                return None;
            }
            let chunk = match chunk {
                Ok(c) => c,
                Err(e) => return Some(Err(e)),
            };
            let take = chunk.len().min(remaining);
            remaining -= take;
            Some(chunk.limit(take))
        }));
        Ok(ctx.instrument(self, iter))
    }

    fn detail(&self) -> String {
        format!("{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::execute_collect;
    use crate::physical::scan::ValuesExec;
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    #[test]
    fn truncates_rows() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let inp: ExecPlanRef = Arc::new(ValuesExec {
            schema,
            rows: (0..100).map(|i| vec![Value::Int64(i)]).collect(),
        });
        let plan: ExecPlanRef = Arc::new(LimitExec { input: inp, n: 7 });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(out.value_at(0, 6), Value::Int64(6));
    }

    #[test]
    fn limit_zero() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let inp: ExecPlanRef = Arc::new(ValuesExec {
            schema,
            rows: vec![vec![Value::Int64(1)]],
        });
        let plan: ExecPlanRef = Arc::new(LimitExec { input: inp, n: 0 });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn limit_larger_than_input() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let inp: ExecPlanRef = Arc::new(ValuesExec {
            schema,
            rows: (0..3).map(|i| vec![Value::Int64(i)]).collect(),
        });
        let plan: ExecPlanRef = Arc::new(LimitExec { input: inp, n: 100 });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 3);
    }
}
