//! Union (bag concatenation) of plans with identical schemas.

use std::sync::Arc;

use crate::catalog::ChunkIter;
use crate::error::{EngineError, Result};
use crate::physical::{ExecPlanRef, ExecutionPlan, TaskContext};
use crate::schema::SchemaRef;

/// Concatenates the partitions of all inputs: output partition `p` maps
/// onto the `p`-th partition in input order.
#[derive(Debug)]
pub struct UnionExec {
    /// The inputs (all with the same schema).
    pub inputs: Vec<ExecPlanRef>,
    /// Shared schema.
    pub schema: SchemaRef,
}

impl ExecutionPlan for UnionExec {
    fn name(&self) -> &'static str {
        "Union"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        self.inputs.iter().map(|i| i.output_partitions()).sum()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        self.inputs.clone()
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let mut p = partition;
        for input in &self.inputs {
            let n = input.output_partitions();
            if p < n {
                return input.execute(p, ctx);
            }
            p -= n;
        }
        Err(EngineError::internal(format!(
            "union partition {partition} out of range"
        )))
    }

    fn detail(&self) -> String {
        format!("{} inputs", self.inputs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::execute_collect;
    use crate::physical::scan::ValuesExec;
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    #[test]
    fn union_concatenates() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let a: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![vec![Value::Int64(1)]],
        });
        let b: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&schema),
            rows: vec![vec![Value::Int64(2)], vec![Value::Int64(3)]],
        });
        let plan: ExecPlanRef = Arc::new(UnionExec {
            inputs: vec![a, b],
            schema,
        });
        assert_eq!(plan.output_partitions(), 2);
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 3);
    }
}
