//! Operator-level execution metrics (`EXPLAIN ANALYZE`).
//!
//! When a [`TaskContext`](crate::physical::TaskContext) carries a
//! [`MetricsRegistry`], every operator wraps its output iterator with a
//! probe that counts produced rows/chunks and accumulates wall time spent
//! *inside* the operator's iterator (time-to-next-chunk), aggregated across
//! partitions. With no registry attached the instrumentation is skipped
//! entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::catalog::ChunkIter;

/// Counters for one operator (aggregated over partitions).
#[derive(Debug, Default)]
pub struct OperatorMetrics {
    /// Rows produced.
    pub rows: AtomicU64,
    /// Chunks produced.
    pub chunks: AtomicU64,
    /// Estimated bytes of produced chunks.
    pub bytes: AtomicU64,
    /// Nanoseconds spent producing them (summed across partitions).
    pub elapsed_ns: AtomicU64,
    /// Partition executions.
    pub invocations: AtomicU64,
}

/// Point-in-time snapshot of one operator's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorStats {
    /// Operator key: `"{name}: {detail}"` (or just the name).
    pub key: String,
    /// Rows produced.
    pub rows: u64,
    /// Chunks produced.
    pub chunks: u64,
    /// Estimated bytes of produced chunks.
    pub bytes: u64,
    /// Nanoseconds spent producing them (summed across partitions).
    pub elapsed_ns: u64,
    /// Partition executions.
    pub invocations: u64,
}

impl OperatorMetrics {
    fn stats(&self, key: &str) -> OperatorStats {
        OperatorStats {
            key: key.to_string(),
            rows: self.rows.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            elapsed_ns: self.elapsed_ns.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
        }
    }
}

/// Registry shared by all operators of one query execution.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    ops: Mutex<HashMap<String, Arc<OperatorMetrics>>>,
}

impl MetricsRegistry {
    /// Fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics slot for operator `key`.
    pub fn operator(&self, key: &str) -> Arc<OperatorMetrics> {
        Arc::clone(self.ops.lock().entry(key.to_string()).or_default())
    }

    /// Snapshot of all operators, sorted by elapsed time descending.
    pub fn report(&self) -> Vec<OperatorStats> {
        let mut rows: Vec<OperatorStats> =
            self.ops.lock().iter().map(|(k, m)| m.stats(k)).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.elapsed_ns));
        rows
    }

    /// The stats snapshot for one operator key, if it executed.
    pub fn operator_stats(&self, key: &str) -> Option<OperatorStats> {
        self.ops.lock().get(key).map(|m| m.stats(key))
    }

    /// Render the report as an ASCII table.
    pub fn render(&self) -> String {
        let headers = vec![
            "operator".to_string(),
            "rows".to_string(),
            "chunks".to_string(),
            "bytes".to_string(),
            "time [ms]".to_string(),
            "partitions".to_string(),
        ];
        let body: Vec<Vec<String>> = self
            .report()
            .into_iter()
            .map(|s| {
                vec![
                    s.key,
                    s.rows.to_string(),
                    s.chunks.to_string(),
                    s.bytes.to_string(),
                    format!("{:.3}", s.elapsed_ns as f64 / 1e6),
                    s.invocations.to_string(),
                ]
            })
            .collect();
        crate::pretty::format_table(&headers, &body)
    }

    /// Render a physical plan tree with each node annotated by its actual
    /// execution stats (`EXPLAIN ANALYZE`). Nodes sharing a key (same
    /// name + detail) show the same aggregated counters.
    pub fn render_annotated(&self, plan: &dyn crate::physical::ExecutionPlan) -> String {
        fn rec(
            reg: &MetricsRegistry,
            plan: &dyn crate::physical::ExecutionPlan,
            out: &mut String,
            indent: usize,
        ) {
            out.push_str(&"  ".repeat(indent));
            let key = crate::physical::operator_key(plan);
            out.push_str(&key);
            match reg.operator_stats(&key) {
                Some(s) => {
                    out.push_str(&format!(
                        "  [rows={} chunks={} bytes={} time={:.3}ms partitions={}]",
                        s.rows,
                        s.chunks,
                        s.bytes,
                        s.elapsed_ns as f64 / 1e6,
                        s.invocations
                    ));
                }
                None => out.push_str("  [not executed]"),
            }
            out.push('\n');
            for c in plan.children() {
                rec(reg, c.as_ref(), out, indent + 1);
            }
        }
        let mut s = String::new();
        rec(self, plan, &mut s, 0);
        s
    }
}

/// Wrap `iter` so rows/time are attributed to `metrics`.
pub fn instrument(metrics: Arc<OperatorMetrics>, iter: ChunkIter) -> ChunkIter {
    metrics.invocations.fetch_add(1, Ordering::Relaxed);
    Box::new(InstrumentedIter {
        metrics,
        inner: iter,
    })
}

struct InstrumentedIter {
    metrics: Arc<OperatorMetrics>,
    inner: ChunkIter,
}

impl Iterator for InstrumentedIter {
    type Item = crate::error::Result<crate::chunk::Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        let start = Instant::now();
        let item = self.inner.next();
        self.metrics
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some(Ok(chunk)) = &item {
            self.metrics
                .rows
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            self.metrics.chunks.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .bytes
                .fetch_add(chunk.byte_size() as u64, Ordering::Relaxed);
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;

    #[test]
    fn counts_rows_and_time() {
        let reg = MetricsRegistry::new();
        let m = reg.operator("Scan: t");
        let chunks: Vec<crate::error::Result<Chunk>> = vec![
            Ok(Chunk::new_empty_columns(10)),
            Ok(Chunk::new_empty_columns(5)),
        ];
        let it = instrument(Arc::clone(&m), Box::new(chunks.into_iter()));
        assert_eq!(it.count(), 2);
        assert_eq!(m.rows.load(Ordering::Relaxed), 15);
        assert_eq!(m.chunks.load(Ordering::Relaxed), 2);
        assert_eq!(m.invocations.load(Ordering::Relaxed), 1);
        let report = reg.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].rows, 15);
        assert!(reg.render().contains("Scan: t"));
    }

    #[test]
    fn same_key_aggregates() {
        let reg = MetricsRegistry::new();
        for _ in 0..3 {
            let m = reg.operator("Filter");
            let chunks: Vec<crate::error::Result<Chunk>> = vec![Ok(Chunk::new_empty_columns(1))];
            let _ = instrument(m, Box::new(chunks.into_iter())).count();
        }
        assert_eq!(
            reg.report()[0].invocations,
            3,
            "three partition invocations"
        );
        assert_eq!(reg.report()[0].rows, 3);
    }
}
