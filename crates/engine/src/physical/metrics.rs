//! Operator-level execution metrics (`EXPLAIN ANALYZE`).
//!
//! When a [`TaskContext`](crate::physical::TaskContext) carries a
//! [`MetricsRegistry`], every operator wraps its output iterator with a
//! probe that counts produced rows/chunks and accumulates wall time spent
//! *inside* the operator's iterator (time-to-next-chunk), aggregated across
//! partitions. With no registry attached the instrumentation is skipped
//! entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::catalog::ChunkIter;

/// Counters for one operator (aggregated over partitions).
#[derive(Debug, Default)]
pub struct OperatorMetrics {
    /// Rows produced.
    pub rows: AtomicU64,
    /// Chunks produced.
    pub chunks: AtomicU64,
    /// Nanoseconds spent producing them (summed across partitions).
    pub elapsed_ns: AtomicU64,
    /// Partition executions.
    pub invocations: AtomicU64,
}

/// Registry shared by all operators of one query execution.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    ops: Mutex<HashMap<String, Arc<OperatorMetrics>>>,
}

impl MetricsRegistry {
    /// Fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics slot for operator `key`.
    pub fn operator(&self, key: &str) -> Arc<OperatorMetrics> {
        Arc::clone(self.ops.lock().entry(key.to_string()).or_default())
    }

    /// Snapshot of all operators, sorted by elapsed time descending.
    pub fn report(&self) -> Vec<(String, u64, u64, u64, u64)> {
        let mut rows: Vec<(String, u64, u64, u64, u64)> = self
            .ops
            .lock()
            .iter()
            .map(|(k, m)| {
                (
                    k.clone(),
                    m.rows.load(Ordering::Relaxed),
                    m.chunks.load(Ordering::Relaxed),
                    m.elapsed_ns.load(Ordering::Relaxed),
                    m.invocations.load(Ordering::Relaxed),
                )
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.3));
        rows
    }

    /// Render the report as an ASCII table.
    pub fn render(&self) -> String {
        let headers = vec![
            "operator".to_string(),
            "rows".to_string(),
            "chunks".to_string(),
            "time [ms]".to_string(),
            "partitions".to_string(),
        ];
        let body: Vec<Vec<String>> = self
            .report()
            .into_iter()
            .map(|(k, rows, chunks, ns, inv)| {
                vec![
                    k,
                    rows.to_string(),
                    chunks.to_string(),
                    format!("{:.3}", ns as f64 / 1e6),
                    inv.to_string(),
                ]
            })
            .collect();
        crate::pretty::format_table(&headers, &body)
    }
}

/// Wrap `iter` so rows/time are attributed to `metrics`.
pub fn instrument(metrics: Arc<OperatorMetrics>, iter: ChunkIter) -> ChunkIter {
    metrics.invocations.fetch_add(1, Ordering::Relaxed);
    Box::new(InstrumentedIter {
        metrics,
        inner: iter,
    })
}

struct InstrumentedIter {
    metrics: Arc<OperatorMetrics>,
    inner: ChunkIter,
}

impl Iterator for InstrumentedIter {
    type Item = crate::error::Result<crate::chunk::Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        let start = Instant::now();
        let item = self.inner.next();
        self.metrics
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some(Ok(chunk)) = &item {
            self.metrics
                .rows
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            self.metrics.chunks.fetch_add(1, Ordering::Relaxed);
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;

    #[test]
    fn counts_rows_and_time() {
        let reg = MetricsRegistry::new();
        let m = reg.operator("Scan: t");
        let chunks: Vec<crate::error::Result<Chunk>> = vec![
            Ok(Chunk::new_empty_columns(10)),
            Ok(Chunk::new_empty_columns(5)),
        ];
        let it = instrument(Arc::clone(&m), Box::new(chunks.into_iter()));
        assert_eq!(it.count(), 2);
        assert_eq!(m.rows.load(Ordering::Relaxed), 15);
        assert_eq!(m.chunks.load(Ordering::Relaxed), 2);
        assert_eq!(m.invocations.load(Ordering::Relaxed), 1);
        let report = reg.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].1, 15);
        assert!(reg.render().contains("Scan: t"));
    }

    #[test]
    fn same_key_aggregates() {
        let reg = MetricsRegistry::new();
        for _ in 0..3 {
            let m = reg.operator("Filter");
            let chunks: Vec<crate::error::Result<Chunk>> = vec![Ok(Chunk::new_empty_columns(1))];
            let _ = instrument(m, Box::new(chunks.into_iter())).count();
        }
        assert_eq!(reg.report()[0].4, 3, "three partition invocations");
        assert_eq!(reg.report()[0].1, 3);
    }
}
