//! Hash joins: co-partitioned (shuffle) and broadcast.
//!
//! `HashJoinExec` expects both children to be hash-partitioned on the join
//! keys with the same partition count (the planner inserts shuffles); each
//! output partition builds a hash table from its build-side partition and
//! probes it with the probe-side partition. `BroadcastHashJoinExec`
//! materializes the (small) build side once — the analogue of a Spark
//! broadcast variable — and streams the probe side partition-wise.
//!
//! Per the paper, the Indexed DataFrame always plays the *build* side
//! (its index is pre-built); these operators are the *vanilla* baseline it
//! is compared against, and also execute any non-indexed join.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::catalog::ChunkIter;
use crate::chunk::Chunk;
use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::logical::JoinType;
use crate::physical::{ExecPlanRef, ExecutionPlan, PhysicalExprRef, TaskContext};
use crate::schema::SchemaRef;
use crate::types::Value;

/// A materialized join build side: all rows plus a key → row-ids table.
pub(crate) struct BuildTable {
    pub chunk: Chunk,
    pub index: HashMap<Vec<Value>, Vec<u32>>,
}

impl BuildTable {
    /// Concatenate `chunks` and index them by `keys` (null keys excluded).
    pub(crate) fn build(chunks: Vec<Chunk>, keys: &[PhysicalExprRef]) -> Result<BuildTable> {
        let chunk = if chunks.is_empty() {
            Chunk::new(Vec::new())?
        } else {
            Chunk::concat(&chunks)?
        };
        let mut index: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        if !chunk.is_empty() {
            let key_cols = keys
                .iter()
                .map(|k| k.evaluate(&chunk))
                .collect::<Result<Vec<_>>>()?;
            let mut key: Vec<Value> = Vec::with_capacity(key_cols.len());
            'rows: for row in 0..chunk.len() {
                key.clear();
                for c in &key_cols {
                    let v = c.value_at(row);
                    if v.is_null() {
                        continue 'rows; // null keys never join
                    }
                    key.push(v);
                }
                // Reuse the key buffer; clone only on first occurrence.
                if let Some(rows) = index.get_mut(key.as_slice()) {
                    rows.push(row as u32);
                } else {
                    index.insert(key.clone(), vec![row as u32]);
                }
            }
        }
        Ok(BuildTable { chunk, index })
    }

    /// Approximate resident bytes: materialized rows plus hash-table
    /// entries (key vec + row-id vec overhead per distinct key).
    pub(crate) fn approx_bytes(&self) -> usize {
        const ENTRY_OVERHEAD: usize = 64;
        self.chunk.byte_size()
            + self.index.len() * ENTRY_OVERHEAD
            + self.index.values().map(|v| v.len() * 4).sum::<usize>()
    }
}

/// Gather the combined output chunk for matched (left_rows, right_rows).
fn gather_joined(
    left: &Chunk,
    left_rows: &[u32],
    right: &Chunk,
    right_rows: &[u32],
    schema: &SchemaRef,
) -> Result<Chunk> {
    debug_assert_eq!(left_rows.len(), right_rows.len());
    let l = left.take(left_rows)?;
    let r = right.take(right_rows)?;
    let mut cols = Vec::with_capacity(l.num_columns() + r.num_columns());
    cols.extend(l.columns().iter().cloned());
    cols.extend(r.columns().iter().cloned());
    debug_assert_eq!(cols.len(), schema.len());
    Chunk::new(cols)
}

/// Emit preserved-but-unmatched left rows padded with nulls on the right.
fn gather_left_outer(
    left: &Chunk,
    left_rows: &[u32],
    right_schema: &SchemaRef,
    schema: &SchemaRef,
) -> Result<Chunk> {
    let l = left.take(left_rows)?;
    let mut cols = Vec::with_capacity(schema.len());
    cols.extend(l.columns().iter().cloned());
    for f in &right_schema.fields {
        cols.push(Arc::new(Column::repeat(
            f.data_type,
            &Value::Null,
            left_rows.len(),
        )?));
    }
    Chunk::new(cols)
}

/// Probe `build` with the rows of `probe_chunk`; returns row-id pairs
/// (build side, probe side) plus per-build-row match marks when requested.
fn probe_matches(
    build: &BuildTable,
    probe_chunk: &Chunk,
    probe_keys: &[PhysicalExprRef],
    mut mark_build_matched: Option<&mut [bool]>,
) -> Result<(Vec<u32>, Vec<u32>)> {
    let key_cols = probe_keys
        .iter()
        .map(|k| k.evaluate(probe_chunk))
        .collect::<Result<Vec<_>>>()?;
    let mut build_rows = Vec::new();
    let mut probe_rows = Vec::new();
    let mut key = Vec::with_capacity(key_cols.len());
    'rows: for row in 0..probe_chunk.len() {
        key.clear();
        for c in &key_cols {
            let v = c.value_at(row);
            if v.is_null() {
                continue 'rows;
            }
            key.push(v);
        }
        if let Some(matches) = build.index.get(key.as_slice()) {
            for &b in matches {
                build_rows.push(b);
                probe_rows.push(row as u32);
                if let Some(marks) = mark_build_matched.as_deref_mut() {
                    marks[b as usize] = true;
                }
            }
        }
    }
    Ok((build_rows, probe_rows))
}

/// Finish a build-side-preserving join (left/semi/anti) from match marks.
fn finish_preserved(
    join_type: JoinType,
    build: &BuildTable,
    matched: &[bool],
    right_schema: &SchemaRef,
    schema: &SchemaRef,
    out: &mut Vec<Chunk>,
) -> Result<()> {
    match join_type {
        JoinType::Left => {
            let unmatched: Vec<u32> = matched
                .iter()
                .enumerate()
                .filter(|(_, m)| !**m)
                .map(|(i, _)| i as u32)
                .collect();
            if !unmatched.is_empty() {
                out.push(gather_left_outer(
                    &build.chunk,
                    &unmatched,
                    right_schema,
                    schema,
                )?);
            }
        }
        JoinType::Semi => {
            let hit: Vec<u32> = matched
                .iter()
                .enumerate()
                .filter(|(_, m)| **m)
                .map(|(i, _)| i as u32)
                .collect();
            out.push(build.chunk.take(&hit)?);
        }
        JoinType::Anti => {
            let miss: Vec<u32> = matched
                .iter()
                .enumerate()
                .filter(|(_, m)| !**m)
                .map(|(i, _)| i as u32)
                .collect();
            out.push(build.chunk.take(&miss)?);
        }
        JoinType::Inner => {}
    }
    Ok(())
}

/// Co-partitioned hash join. Build side = left child.
#[derive(Debug)]
pub struct HashJoinExec {
    /// Build (left) child — both children must share partitioning.
    pub left: ExecPlanRef,
    /// Probe (right) child.
    pub right: ExecPlanRef,
    /// Key pairs (left expr over left schema, right expr over right schema).
    pub on: Vec<(PhysicalExprRef, PhysicalExprRef)>,
    /// Join type (left side is the preserved side).
    pub join_type: JoinType,
    /// Output schema.
    pub schema: SchemaRef,
}

impl ExecutionPlan for HashJoinExec {
    fn name(&self) -> &'static str {
        "HashJoin"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        self.left.output_partitions()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.left), Arc::clone(&self.right)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        if self.left.output_partitions() != self.right.output_partitions() {
            return Err(EngineError::internal(
                "hash join children must share partition counts (planner bug)",
            ));
        }
        let build_keys: Vec<PhysicalExprRef> = self.on.iter().map(|(l, _)| Arc::clone(l)).collect();
        let probe_keys: Vec<PhysicalExprRef> = self.on.iter().map(|(_, r)| Arc::clone(r)).collect();
        // Build phase: drain the left partition.
        let build_chunks: Vec<Chunk> = self.left.execute(partition, ctx)?.collect::<Result<_>>()?;
        let build = BuildTable::build(build_chunks, &build_keys)?;
        ctx.charge_memory(build.approx_bytes())?;
        let mut matched = vec![false; build.chunk.len()];
        let track = !matches!(self.join_type, JoinType::Inner);
        // Probe phase.
        let mut out: Vec<Chunk> = Vec::new();
        for chunk in self.right.execute(partition, ctx)? {
            let chunk = chunk?;
            let (b_rows, p_rows) = probe_matches(
                &build,
                &chunk,
                &probe_keys,
                track.then_some(matched.as_mut_slice()),
            )?;
            if matches!(self.join_type, JoinType::Inner | JoinType::Left) && !b_rows.is_empty() {
                out.push(gather_joined(
                    &build.chunk,
                    &b_rows,
                    &chunk,
                    &p_rows,
                    &self.schema,
                )?);
            }
        }
        finish_preserved(
            self.join_type,
            &build,
            &matched,
            &self.right.schema(),
            &self.schema,
            &mut out,
        )?;
        Ok(ctx.instrument(self, Box::new(out.into_iter().map(Ok))))
    }

    fn detail(&self) -> String {
        format!("{} on {} keys", self.join_type, self.on.len())
    }
}

/// Broadcast hash join: the right child is materialized once (all
/// partitions) and probed against every left partition.
///
/// The *left* child is the preserved, streamed side; the broadcast side is
/// always the right child, so left/semi/anti semantics stay partition-local.
pub struct BroadcastHashJoinExec {
    /// Streamed (preserved) child.
    pub left: ExecPlanRef,
    /// Broadcast child (fully materialized).
    pub right: ExecPlanRef,
    /// Key pairs (left expr, right expr).
    pub on: Vec<(PhysicalExprRef, PhysicalExprRef)>,
    /// Join type (left side preserved).
    pub join_type: JoinType,
    /// Output schema (left ++ right).
    pub schema: SchemaRef,
    broadcast: OnceLock<Result<Arc<BuildTable>>>,
}

impl std::fmt::Debug for BroadcastHashJoinExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BroadcastHashJoinExec({})", self.join_type)
    }
}

impl BroadcastHashJoinExec {
    /// Create a broadcast join.
    pub fn new(
        left: ExecPlanRef,
        right: ExecPlanRef,
        on: Vec<(PhysicalExprRef, PhysicalExprRef)>,
        join_type: JoinType,
        schema: SchemaRef,
    ) -> Self {
        BroadcastHashJoinExec {
            left,
            right,
            on,
            join_type,
            schema,
            broadcast: OnceLock::new(),
        }
    }

    fn broadcast_side(&self, ctx: &TaskContext) -> Result<Arc<BuildTable>> {
        self.broadcast
            .get_or_init(|| {
                let chunks: Vec<Chunk> =
                    crate::physical::execute_collect_partitions(&self.right, ctx)?
                        .into_iter()
                        .flatten()
                        .collect();
                let keys: Vec<PhysicalExprRef> =
                    self.on.iter().map(|(_, r)| Arc::clone(r)).collect();
                let build = BuildTable::build(chunks, &keys)?;
                ctx.charge_memory(build.approx_bytes())?;
                Ok(Arc::new(build))
            })
            .clone()
    }
}

impl ExecutionPlan for BroadcastHashJoinExec {
    fn name(&self) -> &'static str {
        "BroadcastHashJoin"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        self.left.output_partitions()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.left), Arc::clone(&self.right)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        let build = self.broadcast_side(ctx)?;
        let left_keys: Vec<PhysicalExprRef> = self.on.iter().map(|(l, _)| Arc::clone(l)).collect();
        let mut out: Vec<Chunk> = Vec::new();
        for chunk in self.left.execute(partition, ctx)? {
            let chunk = chunk?;
            // Probe the broadcast table with streamed-side keys; here the
            // *streamed* side is preserved, so roles flip relative to
            // HashJoinExec: matches give (broadcast_row, stream_row).
            let (b_rows, s_rows) = probe_matches(&build, &chunk, &left_keys, None)?;
            match self.join_type {
                JoinType::Inner => {
                    if !s_rows.is_empty() {
                        out.push(gather_joined(
                            &chunk,
                            &s_rows,
                            &build.chunk,
                            &b_rows,
                            &self.schema,
                        )?);
                    }
                }
                JoinType::Left => {
                    if !s_rows.is_empty() {
                        out.push(gather_joined(
                            &chunk,
                            &s_rows,
                            &build.chunk,
                            &b_rows,
                            &self.schema,
                        )?);
                    }
                    let mut matched = vec![false; chunk.len()];
                    for &s in &s_rows {
                        matched[s as usize] = true;
                    }
                    let unmatched: Vec<u32> = (0..chunk.len() as u32)
                        .filter(|&i| !matched[i as usize])
                        .collect();
                    if !unmatched.is_empty() {
                        out.push(gather_left_outer(
                            &chunk,
                            &unmatched,
                            &self.right.schema(),
                            &self.schema,
                        )?);
                    }
                }
                JoinType::Semi | JoinType::Anti => {
                    let mut matched = vec![false; chunk.len()];
                    for &s in &s_rows {
                        matched[s as usize] = true;
                    }
                    let want = matches!(self.join_type, JoinType::Semi);
                    let rows: Vec<u32> = (0..chunk.len() as u32)
                        .filter(|&i| matched[i as usize] == want)
                        .collect();
                    out.push(chunk.take(&rows)?);
                }
            }
        }
        Ok(ctx.instrument(self, Box::new(out.into_iter().map(Ok))))
    }

    fn detail(&self) -> String {
        format!(
            "{} on {} keys, broadcast right",
            self.join_type,
            self.on.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::expr::col;
    use crate::physical::expr::create_physical_expr;
    use crate::physical::scan::ValuesExec;
    use crate::physical::{execute_collect, ShuffleExec};
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn people() -> (ExecPlanRef, SchemaRef) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64).with_qualifier("p"),
            Field::new("name", DataType::Utf8).with_qualifier("p"),
        ]));
        let rows = vec![
            vec![Value::Int64(1), Value::Utf8("alice".into())],
            vec![Value::Int64(2), Value::Utf8("bob".into())],
            vec![Value::Int64(3), Value::Utf8("carol".into())],
        ];
        (
            Arc::new(ValuesExec {
                schema: Arc::clone(&schema),
                rows,
            }),
            schema,
        )
    }

    fn orders() -> (ExecPlanRef, SchemaRef) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("pid", DataType::Int64).with_qualifier("o"),
            Field::new("amount", DataType::Int64).with_qualifier("o"),
        ]));
        let rows = vec![
            vec![Value::Int64(1), Value::Int64(10)],
            vec![Value::Int64(1), Value::Int64(20)],
            vec![Value::Int64(3), Value::Int64(30)],
            vec![Value::Null, Value::Int64(99)],
        ];
        (
            Arc::new(ValuesExec {
                schema: Arc::clone(&schema),
                rows,
            }),
            schema,
        )
    }

    fn key(schema: &SchemaRef, name: &str) -> PhysicalExprRef {
        let e = resolve_expr(&col(name), schema).unwrap();
        create_physical_expr(&e, schema).unwrap()
    }

    fn join_schema(l: &SchemaRef, r: &SchemaRef) -> SchemaRef {
        Arc::new(l.join(r))
    }

    fn shuffle(p: ExecPlanRef, k: PhysicalExprRef, n: usize) -> ExecPlanRef {
        Arc::new(ShuffleExec::new(p, vec![k], n))
    }

    #[test]
    fn partitioned_inner_join() {
        let (p, ps) = people();
        let (o, os) = orders();
        let plan: ExecPlanRef = Arc::new(HashJoinExec {
            left: shuffle(p, key(&ps, "id"), 4),
            right: shuffle(o, key(&os, "pid"), 4),
            on: vec![(key(&ps, "id"), key(&os, "pid"))],
            join_type: JoinType::Inner,
            schema: join_schema(&ps, &os),
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 3); // alice x2, carol x1; null pid drops
        let mut names: Vec<String> = (0..out.len())
            .map(|r| out.value_at(1, r).to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["alice", "alice", "carol"]);
    }

    #[test]
    fn partitioned_left_join_pads_nulls() {
        let (p, ps) = people();
        let (o, os) = orders();
        let plan: ExecPlanRef = Arc::new(HashJoinExec {
            left: shuffle(p, key(&ps, "id"), 2),
            right: shuffle(o, key(&os, "pid"), 2),
            on: vec![(key(&ps, "id"), key(&os, "pid"))],
            join_type: JoinType::Left,
            schema: join_schema(&ps, &os),
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 4); // 3 matches + bob unmatched
        let bob_row = (0..out.len())
            .find(|&r| out.value_at(1, r) == Value::Utf8("bob".into()))
            .expect("bob present");
        assert_eq!(out.value_at(2, bob_row), Value::Null);
        assert_eq!(out.value_at(3, bob_row), Value::Null);
    }

    #[test]
    fn semi_and_anti_joins() {
        let (p, ps) = people();
        let (o, os) = orders();
        let mk = |jt| -> ExecPlanRef {
            Arc::new(HashJoinExec {
                left: shuffle(people().0, key(&ps, "id"), 2),
                right: shuffle(orders().0, key(&os, "pid"), 2),
                on: vec![(key(&ps, "id"), key(&os, "pid"))],
                join_type: jt,
                schema: ps.clone(),
            })
        };
        let _ = (p, o);
        let semi = execute_collect(&mk(JoinType::Semi), &TaskContext::default()).unwrap();
        assert_eq!(semi.len(), 2); // alice, carol
        let anti = execute_collect(&mk(JoinType::Anti), &TaskContext::default()).unwrap();
        assert_eq!(anti.len(), 1); // bob
        assert_eq!(anti.value_at(1, 0), Value::Utf8("bob".into()));
    }

    #[test]
    fn broadcast_inner_matches_partitioned() {
        let (p, ps) = people();
        let (o, os) = orders();
        let plan: ExecPlanRef = Arc::new(BroadcastHashJoinExec::new(
            p,
            o,
            vec![(key(&ps, "id"), key(&os, "pid"))],
            JoinType::Inner,
            join_schema(&ps, &os),
        ));
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn broadcast_left_join() {
        let (p, ps) = people();
        let (o, os) = orders();
        let plan: ExecPlanRef = Arc::new(BroadcastHashJoinExec::new(
            p,
            o,
            vec![(key(&ps, "id"), key(&os, "pid"))],
            JoinType::Left,
            join_schema(&ps, &os),
        ));
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn empty_build_side() {
        let (_, ps) = people();
        let empty: ExecPlanRef = Arc::new(ValuesExec {
            schema: Arc::clone(&ps),
            rows: vec![],
        });
        let (o, os) = orders();
        let plan: ExecPlanRef = Arc::new(HashJoinExec {
            left: shuffle(empty, key(&ps, "id"), 2),
            right: shuffle(o, key(&os, "pid"), 2),
            on: vec![(key(&ps, "id"), key(&os, "pid"))],
            join_type: JoinType::Inner,
            schema: join_schema(&ps, &os),
        });
        let out = execute_collect(&plan, &TaskContext::default()).unwrap();
        assert_eq!(out.len(), 0);
    }
}
