//! Physical planning — the analogue of Catalyst's physical planning phase.
//!
//! Planning consults registered [`PhysicalStrategy`]s *first*, in
//! registration order, before the built-in planner; this is the seam the
//! Indexed DataFrame uses to claim filters and joins over indexed relations
//! ("special rules and optimization strategies are applied such that
//! indexed execution is triggered" — paper, Figure 1). Anything a strategy
//! declines falls through to the default rules, exactly like the paper's
//! fallback to regular Spark execution.

use std::sync::Arc;

use crate::analyzer::expr_type;
use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::logical::{JoinType, LogicalPlan};
use crate::physical::{
    create_physical_expr, AggregateSpec, BroadcastHashJoinExec, CoalesceExec, ExecPlanRef,
    FilterExec, HashAggregateExec, HashJoinExec, LimitExec, ProjectionExec, ShuffleExec,
    SourceScanExec, UnionExec, ValuesExec,
};
use crate::physical::{PhysicalSortKey, SortExec};

/// A pluggable physical-planning strategy.
pub trait PhysicalStrategy: Send + Sync {
    /// Strategy name.
    fn name(&self) -> &str;
    /// Return `Some(plan)` to claim this logical node, `None` to decline.
    fn plan(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<ExecPlanRef>>;
}

/// Converts optimized logical plans into executable physical plans.
pub struct Planner {
    config: EngineConfig,
    strategies: Vec<Arc<dyn PhysicalStrategy>>,
}

impl Planner {
    /// A planner with the given config and extension strategies.
    pub fn new(config: EngineConfig, strategies: Vec<Arc<dyn PhysicalStrategy>>) -> Self {
        Planner { config, strategies }
    }

    /// The engine configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Plan a logical node (strategies first, then built-ins).
    pub fn create_plan(&self, plan: &LogicalPlan) -> Result<ExecPlanRef> {
        for s in &self.strategies {
            if let Some(exec) = s.plan(plan, self)? {
                return Ok(exec);
            }
        }
        self.default_plan(plan)
    }

    /// Built-in planning rules.
    fn default_plan(&self, plan: &LogicalPlan) -> Result<ExecPlanRef> {
        Ok(match plan {
            LogicalPlan::Scan {
                table,
                source,
                schema,
                projection,
                filters,
            } => Arc::new(SourceScanExec {
                table: table.clone(),
                source: Arc::clone(source),
                schema: Arc::clone(schema),
                projection: projection.clone(),
                filters: filters.clone(),
            }),
            LogicalPlan::Filter { input, predicate } => {
                let child = self.create_plan(input)?;
                let schema = input.schema();
                Arc::new(FilterExec {
                    input: child,
                    predicate: create_physical_expr(predicate, &schema)?,
                    display: predicate.to_string(),
                })
            }
            LogicalPlan::Projection {
                input,
                exprs,
                schema,
            } => {
                let child = self.create_plan(input)?;
                let in_schema = input.schema();
                Arc::new(ProjectionExec {
                    input: child,
                    exprs: exprs
                        .iter()
                        .map(|e| create_physical_expr(e, &in_schema))
                        .collect::<Result<_>>()?,
                    schema: Arc::clone(schema),
                    display: exprs.iter().map(|e| e.to_string()).collect(),
                })
            }
            LogicalPlan::Join { .. } => self.plan_join(plan)?,
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                agg_exprs,
                schema,
            } => {
                let in_schema = input.schema();
                let mut child = self.create_plan(input)?;
                let group: Vec<_> = group_exprs
                    .iter()
                    .map(|e| create_physical_expr(e, &in_schema))
                    .collect::<Result<_>>()?;
                if child.output_partitions() > 1 {
                    child = if group.is_empty() {
                        Arc::new(CoalesceExec::new(child))
                    } else {
                        Arc::new(ShuffleExec::new(
                            child,
                            group.clone(),
                            self.config.target_partitions,
                        ))
                    };
                }
                let aggs = agg_exprs
                    .iter()
                    .map(|e| self.compile_aggregate(e, input))
                    .collect::<Result<Vec<_>>>()?;
                Arc::new(HashAggregateExec {
                    input: child,
                    group_exprs: group,
                    aggs,
                    schema: Arc::clone(schema),
                })
            }
            LogicalPlan::Sort { input, exprs } => {
                let child = self.single_partition(self.create_plan(input)?);
                let in_schema = input.schema();
                let keys = exprs
                    .iter()
                    .map(|s| {
                        Ok(PhysicalSortKey {
                            expr: create_physical_expr(&s.expr, &in_schema)?,
                            ascending: s.ascending,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Arc::new(SortExec {
                    input: child,
                    keys,
                    fetch: None,
                })
            }
            LogicalPlan::Limit { input, n } => {
                // Fuse Limit over Sort into a top-k sort.
                if let LogicalPlan::Sort {
                    input: sort_input,
                    exprs,
                } = input.as_ref()
                {
                    let child = self.single_partition(self.create_plan(sort_input)?);
                    let in_schema = sort_input.schema();
                    let keys = exprs
                        .iter()
                        .map(|s| {
                            Ok(PhysicalSortKey {
                                expr: create_physical_expr(&s.expr, &in_schema)?,
                                ascending: s.ascending,
                            })
                        })
                        .collect::<Result<Vec<_>>>()?;
                    return Ok(Arc::new(SortExec {
                        input: child,
                        keys,
                        fetch: Some(*n),
                    }));
                }
                let child = self.create_plan(input)?;
                if child.output_partitions() > 1 {
                    // Per-partition pre-limit, then a global limit.
                    let pre: ExecPlanRef = Arc::new(LimitExec {
                        input: child,
                        n: *n,
                    });
                    let one = Arc::new(CoalesceExec::new(pre));
                    Arc::new(LimitExec { input: one, n: *n })
                } else {
                    Arc::new(LimitExec {
                        input: child,
                        n: *n,
                    })
                }
            }
            LogicalPlan::Union { inputs, schema } => {
                let children = inputs
                    .iter()
                    .map(|i| self.create_plan(i))
                    .collect::<Result<Vec<_>>>()?;
                Arc::new(UnionExec {
                    inputs: children,
                    schema: Arc::clone(schema),
                })
            }
            LogicalPlan::Values { schema, rows } => Arc::new(ValuesExec {
                schema: Arc::clone(schema),
                rows: rows.clone(),
            }),
        })
    }

    /// Default join planning: broadcast the right side when it is small,
    /// otherwise shuffle both sides on the join keys.
    fn plan_join(&self, plan: &LogicalPlan) -> Result<ExecPlanRef> {
        let LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
            schema,
        } = plan
        else {
            return Err(EngineError::internal("plan_join on non-join node"));
        };
        if on.is_empty() {
            return Err(EngineError::Unsupported(
                "joins require at least one equi-join key".to_string(),
            ));
        }
        let left_schema = left.schema();
        let right_schema = right.schema();
        let left_exec = self.create_plan(left)?;
        let right_exec = self.create_plan(right)?;
        let keys = on
            .iter()
            .map(|(l, r)| {
                Ok((
                    create_physical_expr(l, &left_schema)?,
                    create_physical_expr(r, &right_schema)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        let right_small =
            estimate_rows(right).is_some_and(|n| n <= self.config.broadcast_threshold_rows);
        if right_small {
            return Ok(Arc::new(BroadcastHashJoinExec::new(
                left_exec,
                right_exec,
                keys,
                *join_type,
                Arc::clone(schema),
            )));
        }
        // Inner joins with a small *left* side broadcast it instead,
        // streaming the big right side; a reordering projection restores
        // the (left ++ right) output column order.
        let left_small =
            estimate_rows(left).is_some_and(|n| n <= self.config.broadcast_threshold_rows);
        if left_small && matches!(join_type, JoinType::Inner) {
            let left_width = left.schema().len();
            let right_width = right.schema().len();
            let swapped_schema = Arc::new(right.schema().join(&left.schema()));
            let flipped: Vec<_> = keys
                .iter()
                .map(|(l, r)| (Arc::clone(r), Arc::clone(l)))
                .collect();
            let swapped: ExecPlanRef = Arc::new(BroadcastHashJoinExec::new(
                right_exec,
                left_exec,
                flipped,
                JoinType::Inner,
                Arc::clone(&swapped_schema),
            ));
            let reorder: Vec<_> = (0..left_width)
                .map(|i| right_width + i)
                .chain(0..right_width)
                .map(|i| crate::physical::expr::column_expr(i, swapped_schema.field(i).data_type))
                .collect();
            return Ok(Arc::new(ProjectionExec {
                input: swapped,
                exprs: reorder,
                schema: Arc::clone(schema),
                display: vec!["<reorder after broadcast-left swap>".to_string()],
            }));
        }
        let n = self.config.target_partitions;
        let left_keys: Vec<_> = keys.iter().map(|(l, _)| Arc::clone(l)).collect();
        let right_keys: Vec<_> = keys.iter().map(|(_, r)| Arc::clone(r)).collect();
        // Trivially co-partitioned single-partition children need no
        // exchange.
        let co_partitioned =
            n == 1 && left_exec.output_partitions() == 1 && right_exec.output_partitions() == 1;
        let (shuffled_left, shuffled_right): (ExecPlanRef, ExecPlanRef) = if co_partitioned {
            (left_exec, right_exec)
        } else {
            (
                Arc::new(ShuffleExec::new(left_exec, left_keys, n)),
                Arc::new(ShuffleExec::new(right_exec, right_keys, n)),
            )
        };
        Ok(Arc::new(HashJoinExec {
            left: shuffled_left,
            right: shuffled_right,
            on: keys,
            join_type: *join_type,
            schema: Arc::clone(schema),
        }))
    }

    /// Compile an aggregate output expression into a runnable spec.
    fn compile_aggregate(&self, expr: &Expr, input: &LogicalPlan) -> Result<AggregateSpec> {
        let in_schema = input.schema();
        let inner = match expr {
            Expr::Alias(e, _) => e.as_ref(),
            other => other,
        };
        let Expr::Aggregate { func, arg } = inner else {
            return Err(EngineError::plan(format!(
                "aggregate list entries must be aggregate calls, got {expr}"
            )));
        };
        let output_type = expr_type(inner, &in_schema)?;
        Ok(AggregateSpec {
            func: *func,
            arg: match arg {
                Some(a) => Some(create_physical_expr(a, &in_schema)?),
                None => None,
            },
            output_type,
        })
    }

    /// Coalesce to one partition when needed.
    pub fn single_partition(&self, plan: ExecPlanRef) -> ExecPlanRef {
        if plan.output_partitions() > 1 {
            Arc::new(CoalesceExec::new(plan))
        } else {
            plan
        }
    }
}

/// Rough row-count estimate used by the broadcast decision.
pub fn estimate_rows(plan: &LogicalPlan) -> Option<usize> {
    match plan {
        LogicalPlan::Scan { source, .. } => source.statistics().row_count,
        LogicalPlan::Filter { input, .. } => estimate_rows(input),
        LogicalPlan::Projection { input, .. } | LogicalPlan::Sort { input, .. } => {
            estimate_rows(input)
        }
        LogicalPlan::Limit { input, n } => Some(estimate_rows(input).map_or(*n, |r| r.min(*n))),
        LogicalPlan::Values { rows, .. } => Some(rows.len()),
        LogicalPlan::Union { inputs, .. } => inputs
            .iter()
            .map(|i| estimate_rows(i))
            .sum::<Option<usize>>(),
        LogicalPlan::Aggregate { input, .. } => estimate_rows(input),
        LogicalPlan::Join { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::resolve_expr;
    use crate::catalog::MemTable;
    use crate::chunk::Chunk;
    use crate::expr::{col, lit};
    use crate::physical::display_exec;
    use crate::physical::TaskContext;
    use crate::schema::{Field, Schema};
    use crate::types::{DataType, Value};

    fn scan_with_rows(n: i64) -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let chunk = Chunk::from_rows(
            &schema,
            &(0..n).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        let source =
            Arc::new(MemTable::from_chunk_partitioned(Arc::clone(&schema), chunk, 2).unwrap());
        LogicalPlan::Scan {
            table: "t".into(),
            source,
            schema,
            projection: None,
            filters: vec![],
        }
    }

    fn planner() -> Planner {
        Planner::new(
            EngineConfig {
                broadcast_threshold_rows: 100,
                ..Default::default()
            },
            vec![],
        )
    }

    fn join_plan(right_rows: i64) -> LogicalPlan {
        let l = scan_with_rows(1000);
        let r = scan_with_rows(right_rows);
        let schema = Arc::new(l.schema().join(&r.schema()));
        let lk = resolve_expr(&col("k"), &l.schema()).unwrap();
        let rk = resolve_expr(&col("k"), &r.schema()).unwrap();
        LogicalPlan::Join {
            left: Arc::new(l),
            right: Arc::new(r),
            on: vec![(lk, rk)],
            join_type: JoinType::Inner,
            schema,
        }
    }

    #[test]
    fn small_right_side_broadcasts() {
        let exec = planner().create_plan(&join_plan(10)).unwrap();
        assert_eq!(
            exec.name(),
            "BroadcastHashJoin",
            "{}",
            display_exec(exec.as_ref())
        );
    }

    #[test]
    fn large_right_side_shuffles() {
        let exec = planner().create_plan(&join_plan(10_000)).unwrap();
        assert_eq!(exec.name(), "HashJoin");
        let shown = display_exec(exec.as_ref());
        assert_eq!(shown.matches("Shuffle").count(), 2, "{shown}");
    }

    #[test]
    fn small_left_side_broadcasts_with_reorder() {
        // left small, right large, inner join → broadcast-left swap wrapped
        // in a reordering projection.
        let l = scan_with_rows(10);
        let r = scan_with_rows(100_000);
        let schema = Arc::new(l.schema().join(&r.schema()));
        let lk = resolve_expr(&col("k"), &l.schema()).unwrap();
        let rk = resolve_expr(&col("k"), &r.schema()).unwrap();
        let plan = LogicalPlan::Join {
            left: Arc::new(l),
            right: Arc::new(r),
            on: vec![(lk, rk)],
            join_type: JoinType::Inner,
            schema,
        };
        let exec = planner().create_plan(&plan).unwrap();
        assert_eq!(exec.name(), "Projection", "{}", display_exec(exec.as_ref()));
        assert_eq!(exec.children()[0].name(), "BroadcastHashJoin");
        // Results must still come out in (left ++ right) column order.
        let out = crate::physical::execute_collect(&exec, &TaskContext::default()).unwrap();
        assert_eq!(out.num_columns(), 2);
        assert!(!out.is_empty());
    }

    #[test]
    fn single_partition_join_skips_shuffle() {
        let p = Planner::new(
            EngineConfig {
                broadcast_threshold_rows: 1, // force the shuffle path
                target_partitions: 1,
                ..Default::default()
            },
            vec![],
        );
        // single-partition sources on both sides
        let mk = |rows: i64| {
            let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
            let chunk = Chunk::from_rows(
                &schema,
                &(0..rows).map(|i| vec![Value::Int64(i)]).collect::<Vec<_>>(),
            )
            .unwrap();
            let source = Arc::new(MemTable::from_chunk(Arc::clone(&schema), chunk));
            LogicalPlan::Scan {
                table: "t".into(),
                source,
                schema,
                projection: None,
                filters: vec![],
            }
        };
        let l = mk(100);
        let r = mk(100);
        let schema = Arc::new(l.schema().join(&r.schema()));
        let lk = resolve_expr(&col("k"), &l.schema()).unwrap();
        let rk = resolve_expr(&col("k"), &r.schema()).unwrap();
        let plan = LogicalPlan::Join {
            left: Arc::new(l),
            right: Arc::new(r),
            on: vec![(lk, rk)],
            join_type: JoinType::Inner,
            schema,
        };
        let exec = p.create_plan(&plan).unwrap();
        let shown = display_exec(exec.as_ref());
        assert!(
            !shown.contains("Shuffle"),
            "trivially co-partitioned:
{shown}"
        );
    }

    #[test]
    fn limit_over_sort_fuses_topk() {
        let s = scan_with_rows(100);
        let key = resolve_expr(&col("k"), &s.schema()).unwrap();
        let plan = LogicalPlan::Limit {
            input: Arc::new(LogicalPlan::Sort {
                input: Arc::new(s),
                exprs: vec![crate::expr::SortExpr::desc(key)],
            }),
            n: 5,
        };
        let exec = planner().create_plan(&plan).unwrap();
        assert_eq!(exec.name(), "Sort");
        assert!(exec.detail().contains("fetch 5"));
    }

    #[test]
    fn grouped_aggregate_gets_shuffle() {
        let s = scan_with_rows(100);
        let g = resolve_expr(&col("k"), &s.schema()).unwrap();
        let plan = LogicalPlan::Aggregate {
            input: Arc::new(s),
            group_exprs: vec![g],
            agg_exprs: vec![crate::expr::count_star()],
            schema: Arc::new(Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("count(*)", DataType::Int64),
            ])),
        };
        let exec = planner().create_plan(&plan).unwrap();
        let shown = display_exec(exec.as_ref());
        assert!(shown.contains("Shuffle"), "{shown}");
    }

    #[test]
    fn filter_rejects_join_without_keys() {
        let l = scan_with_rows(10);
        let r = scan_with_rows(10);
        let schema = Arc::new(l.schema().join(&r.schema()));
        let plan = LogicalPlan::Join {
            left: Arc::new(l),
            right: Arc::new(r),
            on: vec![],
            join_type: JoinType::Inner,
            schema,
        };
        assert!(planner().create_plan(&plan).is_err());
    }

    #[test]
    fn strategy_takes_priority() {
        struct ClaimScans;
        impl PhysicalStrategy for ClaimScans {
            fn name(&self) -> &str {
                "claim_scans"
            }
            fn plan(&self, plan: &LogicalPlan, _planner: &Planner) -> Result<Option<ExecPlanRef>> {
                if let LogicalPlan::Scan { schema, .. } = plan {
                    return Ok(Some(Arc::new(ValuesExec {
                        schema: Arc::clone(schema),
                        rows: vec![vec![Value::Int64(42)]],
                    })));
                }
                Ok(None)
            }
        }
        let p = Planner::new(EngineConfig::default(), vec![Arc::new(ClaimScans)]);
        let exec = p.create_plan(&scan_with_rows(100)).unwrap();
        assert_eq!(exec.name(), "Values");
        let pred = resolve_expr(&col("k").eq(lit(42i64)), &scan_with_rows(1).schema()).unwrap();
        let filtered = LogicalPlan::Filter {
            input: Arc::new(scan_with_rows(100)),
            predicate: pred,
        };
        let exec2 = p.create_plan(&filtered).unwrap();
        // Filter falls through to default planning but its child is claimed.
        assert_eq!(exec2.name(), "Filter");
        assert_eq!(exec2.children()[0].name(), "Values");
    }
}
