//! A packed bitmap used for column validity (null tracking) and filter
//! selection vectors.

/// A fixed-length bitmap backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_trailing();
        b
    }

    /// Build from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut b = Bitmap::zeros(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            if v {
                b.set(i, true);
            }
        }
        b
    }

    fn clear_trailing(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Append a bit.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if v {
            self.set(self.len - 1, true);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of set bits, ascending.
    pub fn set_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push((wi * 64 + bit) as u32);
                w &= w - 1;
            }
        }
        out
    }

    /// Bitwise AND with another bitmap of the same length.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Bitwise OR with another bitmap of the same length.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Bitmap {
            words,
            len: self.len,
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bitmap {
        let mut b = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        b.clear_trailing();
        b
    }

    /// Gather bits at `indices` into a new bitmap.
    pub fn take(&self, indices: &[u32]) -> Bitmap {
        let mut b = Bitmap::zeros(indices.len());
        for (out, &i) in indices.iter().enumerate() {
            if self.get(i as usize) {
                b.set(out, true);
            }
        }
        b
    }

    /// Concatenate two bitmaps.
    pub fn concat(&self, other: &Bitmap) -> Bitmap {
        let mut b = self.clone();
        for i in 0..other.len {
            b.push(other.get(i));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::zeros(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_has_clean_tail() {
        let b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert_eq!(b.not().count_ones(), 0);
    }

    #[test]
    fn push_grows() {
        let mut b = Bitmap::zeros(0);
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn set_indices_ascending() {
        let b = Bitmap::from_bools(&[true, false, false, true, true]);
        assert_eq!(b.set_indices(), vec![0, 3, 4]);
    }

    #[test]
    fn and_or_not() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b).set_indices(), vec![0]);
        assert_eq!(a.or(&b).set_indices(), vec![0, 1, 2]);
        assert_eq!(a.not().set_indices(), vec![2, 3]);
    }

    #[test]
    fn take_and_concat() {
        let a = Bitmap::from_bools(&[true, false, true]);
        assert_eq!(a.take(&[2, 1]).set_indices(), vec![0]);
        let b = Bitmap::from_bools(&[false, true]);
        assert_eq!(a.concat(&b).set_indices(), vec![0, 2, 4]);
    }
}
