//! # idf-engine — a partitioned DataFrame/SQL engine with an extensible,
//! Catalyst-style optimizer
//!
//! This crate is the "Apache Spark" substrate of the Indexed DataFrame
//! reproduction: a from-scratch, single-process, multi-threaded analytical
//! query engine with
//!
//! * typed **columnar** storage ([`mod@column`], [`chunk`]) — the analogue of
//!   Spark's columnar DataFrame cache;
//! * a lazy **DataFrame API** ([`dataframe`]) and a **SQL** front end
//!   ([`sql`]);
//! * an **analyzer** (name resolution + type coercion), a rule-based
//!   **optimizer** with user-registrable rules, and a physical **planner**
//!   with user-registrable strategies — the three Catalyst phases the
//!   paper's Figure 1 shows, including the extension seam the Indexed
//!   DataFrame plugs into;
//! * partition-parallel execution with hash **shuffles** and **broadcast**
//!   joins ([`physical`]), driven by a thread pool.
//!
//! ```
//! use idf_engine::prelude::*;
//! use std::sync::Arc;
//!
//! let session = Session::new();
//! let schema = Arc::new(Schema::new(vec![
//!     Field::new("id", DataType::Int64),
//!     Field::new("name", DataType::Utf8),
//! ]));
//! let chunk = Chunk::from_rows(&schema, &[
//!     vec![Value::Int64(1), Value::Utf8("ada".into())],
//!     vec![Value::Int64(2), Value::Utf8("bob".into())],
//! ]).unwrap();
//! session.register_table("people", Arc::new(MemTable::from_chunk(schema, chunk)));
//!
//! let df = session.table("people").unwrap()
//!     .filter(col("id").eq(lit(2i64))).unwrap();
//! let out = df.collect().unwrap();
//! assert_eq!(out.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyzer;
pub mod bitmap;
pub mod catalog;
pub mod chunk;
pub mod column;
pub mod config;
pub mod csv;
pub mod dataframe;
pub mod error;
pub mod expr;
pub mod failpoints;
pub mod logical;
pub mod optimizer;
pub mod physical;
pub mod planner;
pub mod pretty;
pub mod query;
pub mod schema;
pub mod session;
pub mod sql;
pub mod types;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use crate::catalog::{MemTable, TableSource};
    pub use crate::chunk::Chunk;
    pub use crate::config::{DurabilityLevel, EngineConfig};
    pub use crate::dataframe::DataFrame;
    pub use crate::error::{EngineError, Result};
    pub use crate::expr::{avg, col, count, count_star, lit, max, min, sum, Expr, SortExpr};
    pub use crate::logical::JoinType;
    pub use crate::query::{MemoryGovernor, QueryContext};
    pub use crate::schema::{Field, Schema, SchemaRef};
    pub use crate::session::Session;
    pub use crate::types::{DataType, Value};
}
