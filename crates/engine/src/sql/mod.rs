//! SQL front end: lexer, parser, and binder.
//!
//! Users can address registered tables (including Indexed DataFrames —
//! "users write SQL queries or use the Dataframe API", paper Figure 1)
//! with a practical SQL subset: SELECT/FROM/JOIN/WHERE/GROUP BY/HAVING/
//! ORDER BY/LIMIT, subqueries in FROM, aggregates, CAST, and three-valued
//! boolean logic.

pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::to_expr;
pub use parser::parse;

use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::session::Session;

/// Parse `query` and bind it against `session`'s catalog.
pub fn plan_sql(session: &Session, query: &str) -> Result<DataFrame> {
    let stmt = parser::parse(query)?;
    binder::bind(session, &stmt)
}
