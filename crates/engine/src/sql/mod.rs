//! SQL front end: lexer, parser, and binder.
//!
//! Users can address registered tables (including Indexed DataFrames —
//! "users write SQL queries or use the Dataframe API", paper Figure 1)
//! with a practical SQL subset: SELECT/FROM/JOIN/WHERE/GROUP BY/HAVING/
//! ORDER BY/LIMIT, subqueries in FROM, aggregates, CAST, and three-valued
//! boolean logic.

pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::to_expr;
pub use parser::{parse, parse_statement, SelectStmt, Statement};

use std::sync::Arc;

use crate::dataframe::DataFrame;
use crate::error::{EngineError, Result};
use crate::schema::{Field, Schema};
use crate::session::Session;
use crate::sql::parser::SqlExpr;
use crate::types::{DataType, Value};

/// Parse `query` and bind it against `session`'s catalog.
///
/// `EXPLAIN <select>` returns a frame of plan text (one `plan` column,
/// one row per line: logical → optimized → physical). `EXPLAIN ANALYZE
/// <select>` *executes the query at planning time* and returns the
/// physical tree annotated with actual per-operator rows/chunks/bytes/
/// time.
pub fn plan_sql(session: &Session, query: &str) -> Result<DataFrame> {
    match parser::parse_statement(query)? {
        Statement::Select(stmt) => Ok(binder::bind(session, &stmt)?.with_sql_text(query)),
        Statement::Explain {
            analyze,
            query: stmt,
        } => {
            let df = binder::bind(session, &stmt)?;
            let text = if analyze {
                df.explain_analyze()?
            } else {
                df.explain()?
            };
            let schema = Arc::new(Schema::new(vec![Field::new("plan", DataType::Utf8)]));
            let rows: Vec<Vec<Value>> = text
                .lines()
                .map(|line| vec![Value::Utf8(line.to_string())])
                .collect();
            Ok(session.create_dataframe(schema, rows))
        }
        Statement::Checkpoint { table } => {
            let tables = session.checkpoint(table.as_deref())?;
            let schema = Arc::new(Schema::new(vec![Field::new("table", DataType::Utf8)]));
            let rows: Vec<Vec<Value>> = tables.into_iter().map(|t| vec![Value::Utf8(t)]).collect();
            Ok(session.create_dataframe(schema, rows))
        }
        Statement::Scrub { table } => {
            let findings = session.scrub(table.as_deref())?;
            let schema = Arc::new(Schema::new(vec![
                Field::new("table", DataType::Utf8),
                Field::new("target", DataType::Utf8),
                Field::new("status", DataType::Utf8),
                Field::new("detail", DataType::Utf8),
            ]));
            let rows: Vec<Vec<Value>> = findings
                .into_iter()
                .map(|r| {
                    vec![
                        Value::Utf8(r.table),
                        Value::Utf8(r.target),
                        Value::Utf8(r.status),
                        Value::Utf8(r.detail),
                    ]
                })
                .collect();
            Ok(session.create_dataframe(schema, rows))
        }
        Statement::CreateTable { name, columns } => {
            let fields = columns
                .iter()
                .map(|(col, ty)| Ok(Field::new(col, binder::type_from_name(ty)?)))
                .collect::<Result<Vec<_>>>()?;
            session.create_table(&name, Arc::new(Schema::new(fields)))?;
            Ok(status_frame(session, "table", name))
        }
        Statement::DropTable { name } => {
            session.drop_table(&name)?;
            Ok(status_frame(session, "table", name))
        }
        Statement::Insert { table, rows } => {
            let source = session.catalog().get(&table)?;
            let schema = source.schema();
            let rows: Vec<Vec<Value>> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .map(|(i, e)| {
                            let v = literal_value(e)?;
                            Ok(match schema.fields.get(i) {
                                Some(f) => coerce_literal(v, f.data_type),
                                None => v,
                            })
                        })
                        .collect::<Result<Vec<_>>>()
                })
                .collect::<Result<Vec<_>>>()?;
            let appended = source.append_rows(&rows)?;
            let schema = Arc::new(Schema::new(vec![Field::new("rows", DataType::Int64)]));
            Ok(session.create_dataframe(schema, vec![vec![Value::Int64(appended as i64)]]))
        }
        Statement::Update {
            table,
            assignments,
            selection,
        } => {
            let affected = exec_update(session, &table, &assignments, selection.as_ref())?;
            Ok(rows_frame(session, affected))
        }
        Statement::Delete { table, selection } => {
            let affected = exec_delete(session, &table, selection.as_ref())?;
            Ok(rows_frame(session, affected))
        }
        Statement::Compact { table } => {
            let results = session.compact(table.as_deref())?;
            let schema = Arc::new(Schema::new(vec![
                Field::new("table", DataType::Utf8),
                Field::new("rows_reclaimed", DataType::Int64),
                Field::new("bytes_reclaimed", DataType::Int64),
            ]));
            let rows: Vec<Vec<Value>> = results
                .into_iter()
                .map(|r| {
                    vec![
                        Value::Utf8(r.table),
                        Value::Int64(r.rows_reclaimed as i64),
                        Value::Int64(r.bytes_reclaimed as i64),
                    ]
                })
                .collect();
            Ok(session.create_dataframe(schema, rows))
        }
        Statement::CreateMaterializedView { name, query } => {
            session.create_materialized_view(&name, &query)?;
            Ok(status_frame(session, "view", name))
        }
        Statement::DropMaterializedView { name } => {
            session.drop_materialized_view(&name)?;
            Ok(status_frame(session, "view", name))
        }
        Statement::RefreshMaterializedView { name } => {
            session.refresh_materialized_view(&name)?;
            Ok(status_frame(session, "view", name))
        }
    }
}

/// Execute `DELETE FROM table [WHERE ...]`: run the equivalent bound
/// SELECT to materialize the matched rows, then hand them to the source
/// as one atomic DML statement. Returns rows-affected.
fn exec_delete(session: &Session, table: &str, selection: Option<&SqlExpr>) -> Result<usize> {
    let source = session.catalog().get(table)?;
    let schema = source.schema();
    let stmt = dml_select(table, &schema, &[], selection);
    let matched = binder::bind(session, &stmt)?.collect()?;
    let deletes: Vec<Vec<Value>> = (0..matched.len()).map(|r| matched.row_values(r)).collect();
    let affected = source.apply_dml(&deletes, &[])?;
    let m = idf_obs::global();
    m.dml_deletes.inc();
    m.dml_rows_affected.add(affected as u64);
    m.superseded_versions.add(affected as u64);
    Ok(affected)
}

/// Execute `UPDATE table SET ... [WHERE ...]`: one bound SELECT produces,
/// per matched row, the full old image plus every SET expression evaluated
/// against it; the old images become deletes and the patched rows become
/// inserts of one atomic DML statement. Returns rows-affected.
fn exec_update(
    session: &Session,
    table: &str,
    assignments: &[(String, SqlExpr)],
    selection: Option<&SqlExpr>,
) -> Result<usize> {
    let source = session.catalog().get(table)?;
    let schema = source.schema();
    let mut targets: Vec<usize> = Vec::with_capacity(assignments.len());
    for (col, _) in assignments {
        let i = schema
            .fields
            .iter()
            .position(|f| f.name == *col)
            .ok_or_else(|| EngineError::Sql(format!("UPDATE SET targets unknown column {col}")))?;
        if targets.contains(&i) {
            return Err(EngineError::Sql(format!(
                "UPDATE SET assigns column {col} more than once"
            )));
        }
        targets.push(i);
    }
    let set_exprs: Vec<SqlExpr> = assignments.iter().map(|(_, e)| e.clone()).collect();
    let stmt = dml_select(table, &schema, &set_exprs, selection);
    let matched = binder::bind(session, &stmt)?.collect()?;
    let width = schema.len();
    let mut deletes: Vec<Vec<Value>> = Vec::with_capacity(matched.len());
    let mut inserts: Vec<Vec<Value>> = Vec::with_capacity(matched.len());
    for r in 0..matched.len() {
        let row = matched.row_values(r);
        let (old, set_vals) = row.split_at(width);
        let mut new = old.to_vec();
        for (&i, v) in targets.iter().zip(set_vals) {
            new[i] = coerce_literal(v.clone(), schema.field(i).data_type);
        }
        deletes.push(old.to_vec());
        inserts.push(new);
    }
    let affected = source.apply_dml(&deletes, &inserts)?;
    let m = idf_obs::global();
    m.dml_updates.inc();
    m.dml_rows_affected.add(affected as u64);
    m.superseded_versions.add(affected as u64);
    Ok(affected)
}

/// The SELECT equivalent of a DML statement's row-matching phase: every
/// schema column (by name, so the old image round-trips exactly), then
/// `extra` expressions (an UPDATE's SET values, aliased out of the way),
/// with the statement's WHERE.
fn dml_select(
    table: &str,
    schema: &crate::schema::SchemaRef,
    extra: &[SqlExpr],
    selection: Option<&SqlExpr>,
) -> parser::SelectStmt {
    use parser::{SelectItem, TableRef};
    let mut projection: Vec<SelectItem> = schema
        .fields
        .iter()
        .map(|f| SelectItem::Expr {
            expr: SqlExpr::Column {
                qualifier: None,
                name: f.name.clone(),
            },
            alias: None,
        })
        .collect();
    for (i, e) in extra.iter().enumerate() {
        projection.push(SelectItem::Expr {
            expr: e.clone(),
            alias: Some(format!("__dml_set_{i}")),
        });
    }
    parser::SelectStmt {
        distinct: false,
        projection,
        from: TableRef::Named {
            name: table.to_string(),
            alias: None,
        },
        joins: Vec::new(),
        selection: selection.cloned(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    }
}

/// One-row rows-affected acknowledgement frame for DML statements.
fn rows_frame(session: &Session, affected: usize) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![Field::new("rows", DataType::Int64)]));
    session.create_dataframe(schema, vec![vec![Value::Int64(affected as i64)]])
}

/// One-row, one-column acknowledgement frame for DDL statements.
fn status_frame(session: &Session, column: &str, value: String) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![Field::new(column, DataType::Utf8)]));
    session.create_dataframe(schema, vec![vec![Value::Utf8(value)]])
}

/// Evaluate an `INSERT ... VALUES` entry, which must be a literal.
fn literal_value(e: &SqlExpr) -> Result<Value> {
    Ok(match e {
        SqlExpr::Int(v) => Value::Int64(*v),
        SqlExpr::Float(v) => Value::Float64(*v),
        SqlExpr::Str(s) => Value::Utf8(s.clone()),
        SqlExpr::Bool(b) => Value::Boolean(*b),
        SqlExpr::Null => Value::Null,
        other => {
            return Err(EngineError::Sql(format!(
                "INSERT VALUES entries must be literals, found {other:?}"
            )))
        }
    })
}

/// Widen an INSERT literal to the target column type where lossless
/// (integer literals into INT32/DOUBLE/TIMESTAMP columns); anything else
/// is left as-is for `check_append_rows` to reject with a typed error.
fn coerce_literal(v: Value, ty: DataType) -> Value {
    match (v, ty) {
        (Value::Int64(x), DataType::Int32) if i32::try_from(x).is_ok() => Value::Int32(x as i32),
        (Value::Int64(x), DataType::Float64) => Value::Float64(x as f64),
        (Value::Int64(x), DataType::Timestamp) => Value::Timestamp(x),
        (v, _) => v,
    }
}
