//! SQL front end: lexer, parser, and binder.
//!
//! Users can address registered tables (including Indexed DataFrames —
//! "users write SQL queries or use the Dataframe API", paper Figure 1)
//! with a practical SQL subset: SELECT/FROM/JOIN/WHERE/GROUP BY/HAVING/
//! ORDER BY/LIMIT, subqueries in FROM, aggregates, CAST, and three-valued
//! boolean logic.

pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::to_expr;
pub use parser::{parse, parse_statement, Statement};

use std::sync::Arc;

use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::schema::{Field, Schema};
use crate::session::Session;
use crate::types::{DataType, Value};

/// Parse `query` and bind it against `session`'s catalog.
///
/// `EXPLAIN <select>` returns a frame of plan text (one `plan` column,
/// one row per line: logical → optimized → physical). `EXPLAIN ANALYZE
/// <select>` *executes the query at planning time* and returns the
/// physical tree annotated with actual per-operator rows/chunks/bytes/
/// time.
pub fn plan_sql(session: &Session, query: &str) -> Result<DataFrame> {
    match parser::parse_statement(query)? {
        Statement::Select(stmt) => Ok(binder::bind(session, &stmt)?.with_sql_text(query)),
        Statement::Explain {
            analyze,
            query: stmt,
        } => {
            let df = binder::bind(session, &stmt)?;
            let text = if analyze {
                df.explain_analyze()?
            } else {
                df.explain()?
            };
            let schema = Arc::new(Schema::new(vec![Field::new("plan", DataType::Utf8)]));
            let rows: Vec<Vec<Value>> = text
                .lines()
                .map(|line| vec![Value::Utf8(line.to_string())])
                .collect();
            Ok(session.create_dataframe(schema, rows))
        }
        Statement::Checkpoint { table } => {
            let tables = session.checkpoint(table.as_deref())?;
            let schema = Arc::new(Schema::new(vec![Field::new("table", DataType::Utf8)]));
            let rows: Vec<Vec<Value>> = tables.into_iter().map(|t| vec![Value::Utf8(t)]).collect();
            Ok(session.create_dataframe(schema, rows))
        }
    }
}
