//! Binds a parsed SQL AST against the session catalog, producing a
//! [`DataFrame`] (and thereby an analyzed logical plan).

use crate::analyzer::resolve_expr;
use crate::dataframe::DataFrame;
use crate::error::{EngineError, Result};
use crate::expr::{col, AggFunc, BinaryOp, Expr, SortExpr};
use crate::session::Session;
use crate::sql::parser::{JoinClause, SelectItem, SelectStmt, SqlExpr, TableRef};
use crate::types::{DataType, Value};

/// Bind `stmt` into a DataFrame.
pub fn bind(session: &Session, stmt: &SelectStmt) -> Result<DataFrame> {
    // FROM + JOINs.
    let mut df = bind_table_ref(session, &stmt.from)?;
    for j in &stmt.joins {
        df = bind_join(session, df, j)?;
    }
    // WHERE.
    if let Some(sel) = &stmt.selection {
        let e = to_expr(sel)?;
        if e.has_aggregate() {
            return Err(EngineError::Sql(
                "aggregates are not allowed in WHERE; use HAVING".to_string(),
            ));
        }
        df = df.filter(e)?;
    }
    // Select list (expand wildcard).
    let mut select_exprs: Vec<Expr> = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for f in &df.schema().fields {
                    select_exprs.push(col(&f.qualified_name()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let e = to_expr(expr)?;
                select_exprs.push(match alias {
                    Some(a) => e.alias(a),
                    None => e,
                });
            }
        }
    }
    let group_exprs: Vec<Expr> = stmt.group_by.iter().map(to_expr).collect::<Result<_>>()?;
    let having = stmt.having.as_ref().map(to_expr).transpose()?;
    let is_aggregate = !group_exprs.is_empty()
        || select_exprs.iter().any(Expr::has_aggregate)
        || having.as_ref().is_some_and(Expr::has_aggregate);

    let projected = if is_aggregate {
        // Collect every distinct aggregate call used anywhere.
        let mut agg_calls: Vec<Expr> = Vec::new();
        for e in select_exprs.iter().chain(having.iter()) {
            collect_aggregates(e, &mut agg_calls);
        }
        for (e, _) in &stmt.order_by {
            let e = to_expr(e)?;
            collect_aggregates(&e, &mut agg_calls);
        }
        if agg_calls.is_empty() {
            return Err(EngineError::Sql(
                "GROUP BY without any aggregate in the select list".to_string(),
            ));
        }
        let agg_df = df.aggregate(group_exprs.clone(), agg_calls.clone())?;
        let agg_schema = agg_df.schema();
        // HAVING runs over the aggregate output.
        let agg_df = match &having {
            Some(h) => {
                let rebased = rebase(h, &group_exprs, &agg_calls, &agg_schema)?;
                agg_df.filter(rebased)?
            }
            None => agg_df,
        };
        // Final projection in select-list order.
        let rebased: Vec<Expr> = select_exprs
            .iter()
            .map(|e| rebase(e, &group_exprs, &agg_calls, &agg_schema))
            .collect::<Result<_>>()?;
        agg_df.select(rebased)?
    } else if stmt.projection.len() == 1 && stmt.projection[0] == SelectItem::Wildcard {
        df // SELECT * — no projection needed
    } else {
        df.select(select_exprs.clone())?
    };

    // DISTINCT: deduplicate the projected rows.
    let projected = if stmt.distinct {
        projected.distinct()?
    } else {
        projected
    };

    // ORDER BY over the projected output.
    let sorted = if stmt.order_by.is_empty() {
        projected
    } else {
        let out_schema = projected.schema();
        let mut keys = Vec::new();
        for (e, asc) in &stmt.order_by {
            let e = to_expr(e)?;
            // Prefer matching a select item (pre-alias), falling back to a
            // direct resolution against the output schema.
            let key = match position_of(&e, &select_exprs) {
                Some(i) => col(&out_schema.field(i).qualified_name()),
                None => {
                    if resolve_expr(&e, &out_schema).is_ok() {
                        e
                    } else {
                        return Err(EngineError::Sql(format!(
                            "ORDER BY expression {e} must appear in the select list"
                        )));
                    }
                }
            };
            keys.push(SortExpr {
                expr: key,
                ascending: *asc,
            });
        }
        projected.sort(keys)?
    };

    Ok(match stmt.limit {
        Some(n) => sorted.limit(n),
        None => sorted,
    })
}

fn bind_table_ref(session: &Session, t: &TableRef) -> Result<DataFrame> {
    match t {
        TableRef::Named { name, alias } => {
            let df = session.table(name)?;
            Ok(match alias {
                Some(a) => df.alias(a),
                None => df,
            })
        }
        TableRef::Subquery { query, alias } => Ok(bind(session, query)?.alias(alias)),
    }
}

fn bind_join(session: &Session, left: DataFrame, j: &JoinClause) -> Result<DataFrame> {
    let right = bind_table_ref(session, &j.table)?;
    let on = to_expr(&j.on)?;
    let ls = left.schema();
    let rs = right.schema();
    let mut pairs = Vec::new();
    for c in on.split_conjunction() {
        let Expr::Binary {
            left: a,
            op: BinaryOp::Eq,
            right: b,
        } = c
        else {
            return Err(EngineError::Unsupported(format!(
                "JOIN ON supports conjunctions of equalities, got {c}"
            )));
        };
        let a_in_left = resolve_expr(a, &ls).is_ok();
        let b_in_right = resolve_expr(b, &rs).is_ok();
        if a_in_left && b_in_right {
            pairs.push((a.as_ref().clone(), b.as_ref().clone()));
            continue;
        }
        let b_in_left = resolve_expr(b, &ls).is_ok();
        let a_in_right = resolve_expr(a, &rs).is_ok();
        if b_in_left && a_in_right {
            pairs.push((b.as_ref().clone(), a.as_ref().clone()));
            continue;
        }
        return Err(EngineError::Sql(format!(
            "cannot orient join condition {c}: each side must come from one input"
        )));
    }
    left.join_on(&right, pairs, j.join_type)
}

/// Convert the SQL AST expression into an (unresolved) engine expression.
pub fn to_expr(e: &SqlExpr) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Column { qualifier, name } => Expr::Column(crate::expr::ColumnRefExpr {
            qualifier: qualifier.clone(),
            name: name.clone(),
            index: None,
        }),
        SqlExpr::Int(v) => Expr::Literal(Value::Int64(*v)),
        SqlExpr::Float(v) => Expr::Literal(Value::Float64(*v)),
        SqlExpr::Str(s) => Expr::Literal(Value::Utf8(s.clone())),
        SqlExpr::Bool(b) => Expr::Literal(Value::Boolean(*b)),
        SqlExpr::Null => Expr::Literal(Value::Null),
        SqlExpr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(to_expr(left)?),
            op: *op,
            right: Box::new(to_expr(right)?),
        },
        SqlExpr::Not(inner) => Expr::Not(Box::new(to_expr(inner)?)),
        SqlExpr::IsNull { expr, negated } => {
            let inner = Box::new(to_expr(expr)?);
            if *negated {
                Expr::IsNotNull(inner)
            } else {
                Expr::IsNull(inner)
            }
        }
        SqlExpr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(to_expr(expr)?),
            to: type_from_name(ty)?,
        },
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(to_expr(expr)?),
            list: list.iter().map(to_expr).collect::<Result<_>>()?,
            negated: *negated,
        },
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(to_expr(expr)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        SqlExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e = to_expr(expr)?;
            let b = e.between(to_expr(low)?, to_expr(high)?);
            if *negated {
                b.not()
            } else {
                b
            }
        }
        SqlExpr::Func { name, args, star } => {
            // Scalar functions first.
            let scalar = match name.as_str() {
                "upper" => Some(crate::expr::ScalarFunc::Upper),
                "lower" => Some(crate::expr::ScalarFunc::Lower),
                "length" => Some(crate::expr::ScalarFunc::Length),
                "abs" => Some(crate::expr::ScalarFunc::Abs),
                "coalesce" => Some(crate::expr::ScalarFunc::Coalesce),
                _ => None,
            };
            if let Some(func) = scalar {
                if *star {
                    return Err(EngineError::Sql(format!("{name}(*) is not valid")));
                }
                return Ok(Expr::Scalar {
                    func,
                    args: args.iter().map(to_expr).collect::<Result<_>>()?,
                });
            }
            let func = match name.as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "avg" => AggFunc::Avg,
                other => return Err(EngineError::Unsupported(format!("function {other}()"))),
            };
            if *star {
                if func != AggFunc::Count {
                    return Err(EngineError::Sql(format!("{name}(*) is not valid")));
                }
                Expr::Aggregate { func, arg: None }
            } else {
                let [arg] = args.as_slice() else {
                    return Err(EngineError::Sql(format!(
                        "{name}() takes exactly one argument"
                    )));
                };
                Expr::Aggregate {
                    func,
                    arg: Some(Box::new(to_expr(arg)?)),
                }
            }
        }
    })
}

/// Resolve a SQL type name (as written in `CAST` or `CREATE TABLE`) to a
/// [`DataType`].
pub fn type_from_name(ty: &str) -> Result<DataType> {
    Ok(match ty.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" => DataType::Int32,
        "BIGINT" | "LONG" => DataType::Int64,
        "DOUBLE" | "FLOAT" | "REAL" => DataType::Float64,
        "VARCHAR" | "STRING" | "TEXT" => DataType::Utf8,
        "TIMESTAMP" | "DATETIME" => DataType::Timestamp,
        "BOOLEAN" | "BOOL" => DataType::Boolean,
        other => return Err(EngineError::Sql(format!("unknown type {other}"))),
    })
}

/// Collect distinct aggregate subtrees.
fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Aggregate { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Not(i) | Expr::IsNull(i) | Expr::IsNotNull(i) => collect_aggregates(i, out),
        Expr::Cast { expr, .. } => collect_aggregates(expr, out),
        Expr::Alias(i, _) => collect_aggregates(i, out),
        Expr::Scalar { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::Like { expr, .. } => collect_aggregates(expr, out),
        Expr::Column(_) | Expr::Literal(_) => {}
    }
}

/// Find the select item equal to `e` (ignoring aliases).
fn position_of(e: &Expr, items: &[Expr]) -> Option<usize> {
    items.iter().position(|i| unalias(i) == e || i == e)
}

fn unalias(e: &Expr) -> &Expr {
    match e {
        Expr::Alias(i, _) => unalias(i),
        other => other,
    }
}

/// Rewrite `e` (an unresolved select/having expression) in terms of the
/// aggregate output schema: group expressions and aggregate calls become
/// column references; anything else must be composed of those.
fn rebase(
    e: &Expr,
    group_exprs: &[Expr],
    agg_calls: &[Expr],
    agg_schema: &crate::schema::SchemaRef,
) -> Result<Expr> {
    let inner = match e {
        Expr::Alias(i, name) => {
            return Ok(Expr::Alias(
                Box::new(rebase(i, group_exprs, agg_calls, agg_schema)?),
                name.clone(),
            ))
        }
        other => other,
    };
    if let Some(i) = group_exprs.iter().position(|g| unalias(g) == inner) {
        return Ok(col(&agg_schema.field(i).qualified_name()));
    }
    if let Some(j) = agg_calls.iter().position(|a| a == inner) {
        return Ok(col(&agg_schema
            .field(group_exprs.len() + j)
            .qualified_name()));
    }
    Ok(match inner {
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rebase(left, group_exprs, agg_calls, agg_schema)?),
            op: *op,
            right: Box::new(rebase(right, group_exprs, agg_calls, agg_schema)?),
        },
        Expr::Not(i) => Expr::Not(Box::new(rebase(i, group_exprs, agg_calls, agg_schema)?)),
        Expr::IsNull(i) => Expr::IsNull(Box::new(rebase(i, group_exprs, agg_calls, agg_schema)?)),
        Expr::IsNotNull(i) => {
            Expr::IsNotNull(Box::new(rebase(i, group_exprs, agg_calls, agg_schema)?))
        }
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(rebase(expr, group_exprs, agg_calls, agg_schema)?),
            to: *to,
        },
        Expr::Scalar { func, args } => Expr::Scalar {
            func: *func,
            args: args
                .iter()
                .map(|a| rebase(a, group_exprs, agg_calls, agg_schema))
                .collect::<Result<_>>()?,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rebase(expr, group_exprs, agg_calls, agg_schema)?),
            list: list
                .iter()
                .map(|e| rebase(e, group_exprs, agg_calls, agg_schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rebase(expr, group_exprs, agg_calls, agg_schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::Column(c) => {
            return Err(EngineError::Sql(format!(
                "column {} must appear in GROUP BY or inside an aggregate",
                c.display_name()
            )))
        }
        other => {
            return Err(EngineError::internal(format!(
                "unexpected expression in aggregate rebase: {other}"
            )))
        }
    })
}
