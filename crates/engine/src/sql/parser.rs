//! SQL parser: recursive descent over [`Token`]s into a small AST.
//!
//! Supported grammar (enough for the paper's workloads and the SNB short
//! reads):
//!
//! ```text
//! query     := SELECT item (',' item)*
//!              FROM table_ref join*
//!              [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//!              [ORDER BY expr [ASC|DESC] (',' ...)*] [LIMIT int]
//! item      := '*' | expr [[AS] ident]
//! table_ref := ident [[AS] ident] | '(' query ')' [AS] ident
//! join      := [INNER|LEFT [OUTER]] JOIN table_ref ON expr
//! expr      := or-precedence expression with NOT, IS [NOT] NULL,
//!              comparisons, + - * / %, CAST(e AS type), literals,
//!              count/sum/min/max/avg calls, TRUE/FALSE/NULL
//! ```

use crate::error::{EngineError, Result};
use crate::expr::BinaryOp;
use crate::logical::JoinType;
use crate::sql::lexer::{lex, Token};

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select list.
    pub projection: Vec<SelectItem>,
    /// The FROM relation.
    pub from: TableRef,
    /// JOIN clauses, in order.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub selection: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate.
    pub having: Option<SqlExpr>,
    /// ORDER BY keys (expression, ascending).
    pub order_by: Vec<(SqlExpr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// One select-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named (registered) table.
    Named {
        /// Catalog name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesized subquery.
    Subquery {
        /// The inner query.
        query: Box<SelectStmt>,
        /// Mandatory alias.
        alias: String,
    },
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// INNER or LEFT.
    pub join_type: JoinType,
    /// The joined relation.
    pub table: TableRef,
    /// The ON condition.
    pub on: SqlExpr,
}

/// A SQL expression (pre-binding).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, optionally qualified.
    Column {
        /// Table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL literal.
    Null,
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<SqlExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<SqlExpr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// Function call (aggregates).
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments (empty for `count(*)`).
        args: Vec<SqlExpr>,
        /// Whether the argument was `*`.
        star: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Type name (INT/BIGINT/DOUBLE/VARCHAR/TIMESTAMP/BOOLEAN).
        ty: String,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Candidates.
        list: Vec<SqlExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// The pattern.
        pattern: String,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Lower bound (inclusive).
        low: Box<SqlExpr>,
        /// Upper bound (inclusive).
        high: Box<SqlExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
}

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain SELECT query.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] <select>`: render (and for ANALYZE, execute and
    /// annotate) the query plan instead of returning its rows.
    Explain {
        /// `true` for `EXPLAIN ANALYZE`.
        analyze: bool,
        /// The query being explained.
        query: SelectStmt,
    },
    /// `CHECKPOINT [table]`: flush a durable table (or all durable tables)
    /// to a checkpoint, truncating the WAL prefix it covers.
    Checkpoint {
        /// The table to checkpoint, or `None` for every durable table.
        table: Option<String>,
    },
    /// `SCRUB [table]`: verify the on-disk checkpoint and WAL state of a
    /// durable table (or all durable tables), quarantining corrupt
    /// snapshots; returns one row per verified target.
    Scrub {
        /// The table to scrub, or `None` for every durable table.
        table: Option<String>,
    },
    /// `CREATE TABLE name (col TYPE, ...)`: atomically register a new
    /// empty appendable table. Racing creates of the same name have
    /// exactly one winner; losers get `TableAlreadyExists`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions as `(name, type-name)` pairs; type names
        /// are the binder's CAST vocabulary (INT/BIGINT/DOUBLE/VARCHAR/
        /// TIMESTAMP/BOOLEAN and synonyms).
        columns: Vec<(String, String)>,
    },
    /// `DROP TABLE name`: deregister a table from the catalog.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES (v, ...), (v, ...)`: append literal rows
    /// to an updatable table.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows, one inner `Vec` per parenthesized tuple.
        rows: Vec<Vec<SqlExpr>>,
    },
    /// `UPDATE name SET col = expr, ... [WHERE expr]`: rewrite every
    /// matching row of an updatable table as a delete-old-image /
    /// insert-new-image pair (versioned append under MVCC storage).
    Update {
        /// Target table.
        table: String,
        /// `SET` assignments as `(column, value-expression)` pairs; value
        /// expressions may reference the row's current columns.
        assignments: Vec<(String, SqlExpr)>,
        /// WHERE predicate; `None` updates every row.
        selection: Option<SqlExpr>,
    },
    /// `DELETE FROM name [WHERE expr]`: remove every matching row of an
    /// updatable table (a tombstone append under MVCC storage).
    Delete {
        /// Target table.
        table: String,
        /// WHERE predicate; `None` deletes every row.
        selection: Option<SqlExpr>,
    },
    /// `COMPACT [table]`: synchronously compact a table (or all tables
    /// the compaction subsystem manages) — drop row versions hidden below
    /// tombstones and shorten MVCC chains; returns one stats row per
    /// compacted table.
    Compact {
        /// The table to compact, or `None` for every managed table.
        table: Option<String>,
    },
    /// `CREATE MATERIALIZED VIEW name AS <select>`: register a
    /// materialized view over the defining query, maintained
    /// incrementally from the append path by the views subsystem.
    CreateMaterializedView {
        /// View name.
        name: String,
        /// The defining SELECT query.
        query: SelectStmt,
    },
    /// `DROP MATERIALIZED VIEW name`: deregister a materialized view and
    /// discard its materialized state.
    DropMaterializedView {
        /// View name.
        name: String,
    },
    /// `REFRESH MATERIALIZED VIEW name`: recompute the view's
    /// materialized state from scratch at a consistent snapshot of its
    /// base tables (a repair/defrag operation; normal maintenance is
    /// incremental).
    RefreshMaterializedView {
        /// View name.
        name: String,
    },
}

/// Parse one SELECT statement from `input`.
pub fn parse(input: &str) -> Result<SelectStmt> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let stmt = p.parse_query()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse one top-level statement from `input`: a SELECT query,
/// optionally prefixed by `EXPLAIN` or `EXPLAIN ANALYZE`.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let stmt = if p.eat_kw("CHECKPOINT") {
        let table = match p.peek() {
            Token::Ident(_) => Some(p.ident()?),
            _ => None,
        };
        Statement::Checkpoint { table }
    } else if p.eat_kw("SCRUB") {
        let table = match p.peek() {
            Token::Ident(_) => Some(p.ident()?),
            _ => None,
        };
        Statement::Scrub { table }
    } else if p.at_kw("CREATE") {
        p.next();
        if p.eat_kw("MATERIALIZED") {
            p.expect_kw("VIEW")?;
            let name = p.ident()?;
            p.expect_kw("AS")?;
            let query = p.parse_query()?;
            Statement::CreateMaterializedView { name, query }
        } else {
            p.expect_kw("TABLE")?;
            let name = p.ident()?;
            p.expect_token(Token::LParen)?;
            let mut columns = vec![p.parse_column_def()?];
            while *p.peek() == Token::Comma {
                p.next();
                columns.push(p.parse_column_def()?);
            }
            p.expect_token(Token::RParen)?;
            Statement::CreateTable { name, columns }
        }
    } else if p.at_kw("DROP") {
        p.next();
        if p.eat_kw("MATERIALIZED") {
            p.expect_kw("VIEW")?;
            Statement::DropMaterializedView { name: p.ident()? }
        } else {
            p.expect_kw("TABLE")?;
            Statement::DropTable { name: p.ident()? }
        }
    } else if p.eat_kw("REFRESH") {
        p.expect_kw("MATERIALIZED")?;
        p.expect_kw("VIEW")?;
        Statement::RefreshMaterializedView { name: p.ident()? }
    } else if p.at_kw("INSERT") {
        p.next();
        p.expect_kw("INTO")?;
        let table = p.ident()?;
        p.expect_kw("VALUES")?;
        let mut rows = vec![p.parse_values_row()?];
        while *p.peek() == Token::Comma {
            p.next();
            rows.push(p.parse_values_row()?);
        }
        Statement::Insert { table, rows }
    } else if p.at_kw("UPDATE") {
        p.next();
        let table = p.ident()?;
        p.expect_kw("SET")?;
        let mut assignments = vec![p.parse_assignment()?];
        while *p.peek() == Token::Comma {
            p.next();
            assignments.push(p.parse_assignment()?);
        }
        let selection = if p.eat_kw("WHERE") {
            Some(p.parse_expr()?)
        } else {
            None
        };
        Statement::Update {
            table,
            assignments,
            selection,
        }
    } else if p.at_kw("DELETE") {
        p.next();
        p.expect_kw("FROM")?;
        let table = p.ident()?;
        let selection = if p.eat_kw("WHERE") {
            Some(p.parse_expr()?)
        } else {
            None
        };
        Statement::Delete { table, selection }
    } else if p.eat_kw("COMPACT") {
        let table = match p.peek() {
            Token::Ident(_) => Some(p.ident()?),
            _ => None,
        };
        Statement::Compact { table }
    } else if p.eat_kw("EXPLAIN") {
        let analyze = p.eat_kw("ANALYZE");
        if p.at_kw("EXPLAIN") {
            return Err(EngineError::Sql(
                "EXPLAIN cannot be nested: EXPLAIN takes a SELECT query".to_string(),
            ));
        }
        Statement::Explain {
            analyze,
            query: p.parse_query()?,
        }
    } else {
        Statement::Select(p.parse_query()?)
    };
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current nesting depth of `parse_query`/`parse_expr` recursion —
    /// bounded so adversarial inputs (`((((…`) error instead of
    /// overflowing the stack.
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Is the current token the keyword `kw` (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword `kw` if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(EngineError::Sql(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<()> {
        if *self.peek() == t {
            self.next();
            Ok(())
        } else {
            Err(EngineError::Sql(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(EngineError::Sql(format!(
                "trailing tokens: {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(EngineError::Sql(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Maximum recursion depth across nested subqueries and
    /// parenthesized expressions.
    const MAX_DEPTH: usize = 128;

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > Self::MAX_DEPTH {
            return Err(EngineError::Sql(format!(
                "query nesting exceeds the maximum depth of {}",
                Self::MAX_DEPTH
            )));
        }
        Ok(())
    }

    const RESERVED: &'static [&'static str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT", "OUTER",
        "ON", "AS", "AND", "OR", "NOT", "IS", "NULL", "ASC", "DESC", "BY", "SELECT", "CAST",
        "TRUE", "FALSE", "UNION", "DISTINCT", "IN", "LIKE", "BETWEEN", "EXPLAIN", "ANALYZE",
    ];

    /// An alias candidate: identifier that is not a reserved keyword.
    fn maybe_alias(&mut self) -> Option<String> {
        if self.eat_kw("AS") {
            return self.ident().ok();
        }
        if let Token::Ident(s) = self.peek() {
            if !Self::RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.next();
                return Some(s);
            }
        }
        None
    }

    fn parse_query(&mut self) -> Result<SelectStmt> {
        self.enter()?;
        let stmt = self.parse_query_inner();
        self.depth -= 1;
        stmt
    }

    fn parse_query_inner(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projection = vec![self.parse_select_item()?];
        while *self.peek() == Token::Comma {
            self.next();
            projection.push(self.parse_select_item()?);
        }
        self.expect_kw("FROM")?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.at_kw("JOIN") || self.at_kw("INNER") {
                self.eat_kw("INNER");
                JoinType::Inner
            } else if self.at_kw("LEFT") {
                self.next();
                self.eat_kw("OUTER");
                JoinType::Left
            } else {
                break;
            };
            self.expect_kw("JOIN")?;
            let table = self.parse_table_ref()?;
            self.expect_kw("ON")?;
            let on = self.parse_expr()?;
            joins.push(JoinClause {
                join_type,
                table,
                on,
            });
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.parse_expr()?);
            while *self.peek() == Token::Comma {
                self.next();
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.parse_expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((e, asc));
                if *self.peek() == Token::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(EngineError::Sql(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            joins,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// One `name TYPE` column definition in `CREATE TABLE`.
    fn parse_column_def(&mut self) -> Result<(String, String)> {
        let name = self.ident()?;
        let ty = self.ident()?;
        Ok((name, ty))
    }

    /// One `col = expr` assignment in `UPDATE ... SET`.
    fn parse_assignment(&mut self) -> Result<(String, SqlExpr)> {
        let col = self.ident()?;
        self.expect_token(Token::Eq)?;
        let value = self.parse_expr()?;
        Ok((col, value))
    }

    /// One parenthesized `(expr, ...)` tuple in `INSERT ... VALUES`.
    fn parse_values_row(&mut self) -> Result<Vec<SqlExpr>> {
        self.expect_token(Token::LParen)?;
        let mut row = vec![self.parse_expr()?];
        while *self.peek() == Token::Comma {
            self.next();
            row.push(self.parse_expr()?);
        }
        self.expect_token(Token::RParen)?;
        Ok(row)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if *self.peek() == Token::Star {
            self.next();
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.parse_expr()?;
        let alias = self.maybe_alias();
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        if *self.peek() == Token::LParen {
            self.next();
            let query = self.parse_query()?;
            self.expect_token(Token::RParen)?;
            let alias = self.maybe_alias().ok_or_else(|| {
                EngineError::Sql("subquery in FROM requires an alias".to_string())
            })?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = self.maybe_alias();
        Ok(TableRef::Named { name, alias })
    }

    // Expression precedence: OR < AND < NOT < IS NULL < cmp < add < mul < unary
    fn parse_expr(&mut self) -> Result<SqlExpr> {
        self.enter()?;
        let expr = self.parse_or();
        self.depth -= 1;
        expr
    }

    fn parse_or(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<SqlExpr> {
        // Collect NOTs iteratively: a long `NOT NOT NOT …` chain must not
        // recurse once per keyword. The count is still bounded — the AST
        // it builds is walked recursively downstream (binder, drop).
        let mut negations = 0usize;
        while self.eat_kw("NOT") {
            negations += 1;
        }
        if negations > Self::MAX_DEPTH {
            return Err(EngineError::Sql(format!(
                "NOT chain exceeds the maximum depth of {}",
                Self::MAX_DEPTH
            )));
        }
        let mut e = self.parse_is_null()?;
        for _ in 0..negations {
            e = SqlExpr::Not(Box::new(e));
        }
        Ok(e)
    }

    fn parse_is_null(&mut self) -> Result<SqlExpr> {
        let e = self.parse_cmp()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(e),
                negated,
            });
        }
        // Postfix predicates: [NOT] IN / LIKE / BETWEEN.
        let negated = if self.at_kw("NOT") {
            // Only consume NOT when a postfix predicate follows.
            let next_is_postfix = matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Ident(k))
                    if k.eq_ignore_ascii_case("IN")
                        || k.eq_ignore_ascii_case("LIKE")
                        || k.eq_ignore_ascii_case("BETWEEN")
            );
            if next_is_postfix {
                self.next();
                true
            } else {
                return Ok(e);
            }
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_token(Token::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while *self.peek() == Token::Comma {
                self.next();
                list.push(self.parse_expr()?);
            }
            self.expect_token(Token::RParen)?;
            return Ok(SqlExpr::InList {
                expr: Box::new(e),
                list,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let Token::Str(pattern) = self.next() else {
                return Err(EngineError::Sql(
                    "LIKE expects a string pattern".to_string(),
                ));
            };
            return Ok(SqlExpr::Like {
                expr: Box::new(e),
                pattern,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_cmp()?;
            self.expect_kw("AND")?;
            let high = self.parse_cmp()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(e),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(EngineError::Sql(
                "expected IN, LIKE or BETWEEN after NOT".to_string(),
            ));
        }
        Ok(e)
    }

    fn parse_cmp(&mut self) -> Result<SqlExpr> {
        let left = self.parse_add()?;
        let op = match self.peek() {
            Token::Eq => BinaryOp::Eq,
            Token::NotEq => BinaryOp::NotEq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::LtEq,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.next();
        let right = self.parse_add()?;
        Ok(SqlExpr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn parse_add(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                _ => return Ok(left),
            };
            self.next();
            let right = self.parse_mul()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn parse_mul(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Multiply,
                Token::Slash => BinaryOp::Divide,
                Token::Percent => BinaryOp::Modulo,
                _ => return Ok(left),
            };
            self.next();
            let right = self.parse_unary()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<SqlExpr> {
        // Collect minus signs iteratively (a `-----x` chain must not
        // recurse once per sign), then fold them over the operand. The
        // count is bounded: over a non-literal operand each sign adds an
        // AST level, which downstream recursion has to walk.
        let mut negations = 0usize;
        while *self.peek() == Token::Minus {
            self.next();
            negations += 1;
        }
        if negations > Self::MAX_DEPTH {
            return Err(EngineError::Sql(format!(
                "unary minus chain exceeds the maximum depth of {}",
                Self::MAX_DEPTH
            )));
        }
        let mut e = self.parse_primary()?;
        for _ in 0..negations {
            // -literal folds; -expr becomes 0 - expr
            e = match e {
                SqlExpr::Int(v) => SqlExpr::Int(-v),
                SqlExpr::Float(v) => SqlExpr::Float(-v),
                e => SqlExpr::Binary {
                    left: Box::new(SqlExpr::Int(0)),
                    op: BinaryOp::Minus,
                    right: Box::new(e),
                },
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<SqlExpr> {
        match self.next() {
            Token::Int(v) => Ok(SqlExpr::Int(v)),
            Token::Float(v) => Ok(SqlExpr::Float(v)),
            Token::Str(s) => Ok(SqlExpr::Str(s)),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect_token(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(id) => {
                if id.eq_ignore_ascii_case("TRUE") {
                    return Ok(SqlExpr::Bool(true));
                }
                if id.eq_ignore_ascii_case("FALSE") {
                    return Ok(SqlExpr::Bool(false));
                }
                if id.eq_ignore_ascii_case("NULL") {
                    return Ok(SqlExpr::Null);
                }
                if id.eq_ignore_ascii_case("CAST") {
                    self.expect_token(Token::LParen)?;
                    let e = self.parse_expr()?;
                    self.expect_kw("AS")?;
                    let ty = self.ident()?;
                    self.expect_token(Token::RParen)?;
                    return Ok(SqlExpr::Cast {
                        expr: Box::new(e),
                        ty,
                    });
                }
                // Function call?
                if *self.peek() == Token::LParen {
                    self.next();
                    if *self.peek() == Token::Star {
                        self.next();
                        self.expect_token(Token::RParen)?;
                        return Ok(SqlExpr::Func {
                            name: id.to_lowercase(),
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if *self.peek() != Token::RParen {
                        args.push(self.parse_expr()?);
                        while *self.peek() == Token::Comma {
                            self.next();
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect_token(Token::RParen)?;
                    return Ok(SqlExpr::Func {
                        name: id.to_lowercase(),
                        args,
                        star: false,
                    });
                }
                // Qualified column?
                if *self.peek() == Token::Dot {
                    self.next();
                    let name = self.ident()?;
                    return Ok(SqlExpr::Column {
                        qualifier: Some(id),
                        name,
                    });
                }
                Ok(SqlExpr::Column {
                    qualifier: None,
                    name: id,
                })
            }
            other => Err(EngineError::Sql(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse("SELECT a, b FROM t WHERE a = 1").unwrap();
        assert_eq!(q.projection.len(), 2);
        assert!(q.selection.is_some());
        assert!(matches!(q.from, TableRef::Named { ref name, .. } if name == "t"));
    }

    #[test]
    fn parses_checkpoint() {
        assert_eq!(
            parse_statement("CHECKPOINT").unwrap(),
            Statement::Checkpoint { table: None }
        );
        assert_eq!(
            parse_statement("checkpoint person").unwrap(),
            Statement::Checkpoint {
                table: Some("person".to_string())
            }
        );
        // Trailing tokens are rejected, and `checkpoint` stays usable as a
        // plain table name in SELECT.
        assert!(parse_statement("CHECKPOINT a b").is_err());
        assert!(parse_statement("SELECT * FROM checkpoint").is_ok());
    }

    #[test]
    fn parses_scrub() {
        assert_eq!(
            parse_statement("SCRUB").unwrap(),
            Statement::Scrub { table: None }
        );
        assert_eq!(
            parse_statement("scrub person").unwrap(),
            Statement::Scrub {
                table: Some("person".to_string())
            }
        );
        // Trailing tokens are rejected, and `scrub` stays usable as a
        // plain table name in SELECT.
        assert!(parse_statement("SCRUB a b").is_err());
        assert!(parse_statement("SELECT * FROM scrub").is_ok());
    }

    #[test]
    fn parses_ddl_and_insert() {
        let s = parse_statement("CREATE TABLE t (id BIGINT, name VARCHAR)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec![
                    ("id".into(), "BIGINT".into()),
                    ("name".into(), "VARCHAR".into())
                ],
            }
        );
        assert_eq!(
            parse_statement("drop table t").unwrap(),
            Statement::DropTable { name: "t".into() }
        );
        let s = parse_statement("INSERT INTO t VALUES (1, 'a'), (-2, NULL)").unwrap();
        let Statement::Insert { table, rows } = s else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], SqlExpr::Int(-2));
        assert_eq!(rows[1][1], SqlExpr::Null);
        // Malformed DDL errors instead of parsing as something else.
        assert!(parse_statement("CREATE TABLE t ()").is_err());
        assert!(parse_statement("CREATE TABLE t (id)").is_err());
        assert!(parse_statement("CREATE t (id BIGINT)").is_err());
        assert!(parse_statement("INSERT INTO t VALUES ()").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (1,)").is_err());
        assert!(parse_statement("DROP TABLE").is_err());
        // The keywords stay usable as table names inside queries.
        assert!(parse_statement("SELECT * FROM create").is_ok());
        assert!(parse_statement("SELECT * FROM t JOIN insert ON t.a = insert.b").is_ok());
    }

    #[test]
    fn parses_update_delete_compact() {
        let s = parse_statement("UPDATE t SET v = v + 1, name = 'x' WHERE id > 3").unwrap();
        let Statement::Update {
            table,
            assignments,
            selection,
        } = s
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[0].0, "v");
        assert_eq!(assignments[1].1, SqlExpr::Str("x".into()));
        assert!(selection.is_some());
        // WHERE-less update touches every row.
        let s = parse_statement("update t set v = 0").unwrap();
        assert!(matches!(
            s,
            Statement::Update {
                selection: None,
                ..
            }
        ));
        let s = parse_statement("DELETE FROM t WHERE id = 7").unwrap();
        let Statement::Delete { table, selection } = s else {
            panic!()
        };
        assert_eq!(table, "t");
        assert!(selection.is_some());
        assert_eq!(
            parse_statement("delete from t").unwrap(),
            Statement::Delete {
                table: "t".into(),
                selection: None
            }
        );
        assert_eq!(
            parse_statement("COMPACT").unwrap(),
            Statement::Compact { table: None }
        );
        assert_eq!(
            parse_statement("compact person").unwrap(),
            Statement::Compact {
                table: Some("person".into())
            }
        );
        // Malformed DML errors instead of parsing as something else.
        assert!(parse_statement("UPDATE t").is_err());
        assert!(parse_statement("UPDATE SET v = 1").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("UPDATE t SET v").is_err());
        assert!(parse_statement("UPDATE t SET v = ").is_err());
        assert!(parse_statement("UPDATE t SET v = 1,").is_err());
        assert!(parse_statement("DELETE t").is_err());
        assert!(parse_statement("DELETE FROM").is_err());
        assert!(parse_statement("DELETE FROM t WHERE").is_err());
        assert!(parse_statement("COMPACT a b").is_err());
        // The keywords stay usable as table names inside queries.
        assert!(parse_statement("SELECT * FROM update").is_ok());
        assert!(parse_statement("SELECT * FROM delete").is_ok());
        assert!(parse_statement("SELECT * FROM compact").is_ok());
        assert!(parse_statement("SELECT set FROM t").is_ok());
    }

    #[test]
    fn parses_materialized_view_ddl() {
        let s =
            parse_statement("CREATE MATERIALIZED VIEW v AS SELECT id FROM t WHERE id > 3").unwrap();
        let Statement::CreateMaterializedView { name, query } = s else {
            panic!()
        };
        assert_eq!(name, "v");
        assert_eq!(query.projection.len(), 1);
        assert!(query.selection.is_some());
        assert_eq!(
            parse_statement("drop materialized view v").unwrap(),
            Statement::DropMaterializedView { name: "v".into() }
        );
        assert_eq!(
            parse_statement("REFRESH MATERIALIZED VIEW v").unwrap(),
            Statement::RefreshMaterializedView { name: "v".into() }
        );
        // Malformed view DDL errors instead of parsing as something else.
        assert!(parse_statement("CREATE MATERIALIZED v AS SELECT 1").is_err());
        assert!(parse_statement("CREATE MATERIALIZED VIEW v SELECT 1").is_err());
        assert!(parse_statement("CREATE MATERIALIZED VIEW v AS").is_err());
        assert!(parse_statement("CREATE MATERIALIZED VIEW AS SELECT 1").is_err());
        assert!(parse_statement("DROP MATERIALIZED VIEW").is_err());
        assert!(parse_statement("REFRESH MATERIALIZED VIEW").is_err());
        assert!(parse_statement("REFRESH VIEW v").is_err());
        assert!(parse_statement("REFRESH MATERIALIZED VIEW v extra").is_err());
        // The keywords stay usable as table names inside queries.
        assert!(parse_statement("SELECT * FROM refresh").is_ok());
        assert!(parse_statement("SELECT materialized FROM view").is_ok());
    }

    #[test]
    fn parses_star_and_limit() {
        let q = parse("select * from t limit 10").unwrap();
        assert_eq!(q.projection, vec![SelectItem::Wildcard]);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_joins() {
        let q = parse(
            "SELECT p.name FROM person p \
             JOIN knows k ON p.id = k.src \
             LEFT JOIN city c ON p.city = c.id",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].join_type, JoinType::Inner);
        assert_eq!(q.joins[1].join_type, JoinType::Left);
        match &q.joins[0].table {
            TableRef::Named { name, alias } => {
                assert_eq!(name, "knows");
                assert_eq!(alias.as_deref(), Some("k"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_group_order_having() {
        let q = parse(
            "SELECT city, count(*) AS n FROM person \
             GROUP BY city HAVING count(*) > 5 ORDER BY n DESC, city LIMIT 3",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].1);
        assert!(q.order_by[1].1);
    }

    #[test]
    fn parses_precedence() {
        let q = parse("SELECT * FROM t WHERE a + 1 * 2 = 3 AND NOT b OR c").unwrap();
        let Some(SqlExpr::Binary {
            op: BinaryOp::Or,
            left,
            ..
        }) = q.selection
        else {
            panic!("OR must be outermost");
        };
        assert!(matches!(
            *left,
            SqlExpr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn parses_subquery_in_from() {
        let q = parse("SELECT x FROM (SELECT a AS x FROM t) sub").unwrap();
        assert!(matches!(q.from, TableRef::Subquery { .. }));
    }

    #[test]
    fn parses_count_star_and_cast() {
        let q = parse("SELECT count(*), CAST(a AS BIGINT) FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.projection[0] else {
            panic!()
        };
        assert!(matches!(expr, SqlExpr::Func { star: true, .. }));
        let SelectItem::Expr { expr, .. } = &q.projection[1] else {
            panic!()
        };
        assert!(matches!(expr, SqlExpr::Cast { .. }));
    }

    #[test]
    fn parses_is_null() {
        let q = parse("SELECT * FROM t WHERE a IS NOT NULL AND b IS NULL").unwrap();
        assert!(q.selection.is_some());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(
            parse("SELECT a FROM (SELECT a FROM t)").is_err(),
            "subquery needs alias"
        );
    }

    #[test]
    fn parses_distinct() {
        let q = parse("SELECT DISTINCT city FROM person").unwrap();
        assert!(q.distinct);
        let q = parse("SELECT city FROM person").unwrap();
        assert!(!q.distinct);
    }

    #[test]
    fn parses_in_like_between() {
        let q = parse(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)              AND s LIKE 'x%' AND s NOT LIKE '_y'              AND c BETWEEN 1 AND 10 AND d NOT BETWEEN 2 AND 3",
        )
        .unwrap();
        let shown = format!("{:?}", q.selection);
        assert!(shown.contains("InList"), "{shown}");
        assert!(shown.contains("Like"), "{shown}");
        assert!(shown.contains("Between"), "{shown}");
        assert!(shown.contains("negated: true"), "{shown}");
    }

    #[test]
    fn not_still_works_as_boolean_negation() {
        let q = parse("SELECT * FROM t WHERE NOT a = 1").unwrap();
        assert!(matches!(q.selection, Some(SqlExpr::Not(_))));
        // NOT before a non-postfix expression inside a conjunction
        let q = parse("SELECT * FROM t WHERE a = 1 AND NOT b = 2").unwrap();
        assert!(q.selection.is_some());
    }

    #[test]
    fn like_requires_string_pattern() {
        assert!(parse("SELECT * FROM t WHERE s LIKE 5").is_err());
        assert!(parse("SELECT * FROM t WHERE s NOT 5").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Parenthesized expressions.
        let q = format!("SELECT {}1{} FROM t", "(".repeat(5000), ")".repeat(5000));
        let err = parse(&q).unwrap_err();
        assert!(err.to_string().contains("maximum depth"), "got: {err}");
        // Nested subqueries.
        let mut q = "SELECT a FROM t".to_string();
        for _ in 0..5000 {
            q = format!("SELECT a FROM ({q}) s");
        }
        assert!(parse(&q).is_err());
        // Long NOT / unary-minus chains error cleanly (no per-token
        // parser frame, and no unboundedly deep AST for the binder).
        let q = format!("SELECT * FROM t WHERE {} a = 1", "NOT ".repeat(5000));
        assert!(parse(&q).is_err());
        let q = format!("SELECT {}5 FROM t", "- ".repeat(5000));
        assert!(parse(&q).is_err());
        let q = format!("SELECT * FROM t WHERE {} a = 1", "NOT ".repeat(40));
        parse(&q).unwrap();
        let q = format!("SELECT {}5 FROM t", "- ".repeat(40));
        parse(&q).unwrap();
        // Reasonable nesting still parses.
        let q = format!("SELECT {}1{} FROM t", "(".repeat(40), ")".repeat(40));
        parse(&q).unwrap();
    }

    #[test]
    fn negative_literals() {
        let q = parse("SELECT * FROM t WHERE a = -5 AND b = -1.5").unwrap();
        let sel = format!("{:?}", q.selection);
        assert!(sel.contains("Int(-5)"));
        assert!(sel.contains("Float(-1.5)"));
    }
}
