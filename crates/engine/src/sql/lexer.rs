//! SQL lexer.

use crate::error::{EngineError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched by the
    /// parser; the original text is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// End of input.
    Eof,
}

/// Lex `input` into tokens (always ending with [`Token::Eof`]).
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // line comment?
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(EngineError::Sql(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(EngineError::Sql("unterminated string literal".to_string()))
                        }
                        Some(&b'\'') => {
                            // '' escapes a quote
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // handle multi-byte UTF-8 correctly
                            let Some(ch) = input[i..].chars().next() else {
                                return Err(EngineError::Sql(
                                    "unterminated string literal".to_string(),
                                ));
                            };
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    tokens.push(Token::Float(text.parse().map_err(|e| {
                        EngineError::Sql(format!("bad float literal {text}: {e}"))
                    })?));
                } else {
                    let text = &input[start..i];
                    tokens.push(Token::Int(text.parse().map_err(|e| {
                        EngineError::Sql(format!("bad integer literal {text}: {e}"))
                    })?));
                }
            }
            _ => {
                // Identifier start or junk. `bytes[i] as char` misreads
                // multi-byte UTF-8 (the lead byte of 'é' looks like the
                // alphabetic 'Ã'), so decode the real character and walk
                // the identifier char-wise — advancing byte-wise would
                // split a multi-byte character and panic on the slice.
                let Some(ch) = input[i..].chars().next() else {
                    return Err(EngineError::Sql(format!("invalid character at byte {i}")));
                };
                if ch.is_alphabetic() || ch == '_' {
                    let start = i;
                    for ch in input[i..].chars() {
                        if ch.is_alphanumeric() || ch == '_' {
                            i += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token::Ident(input[start..i].to_string()));
                } else {
                    return Err(EngineError::Sql(format!(
                        "unexpected character '{ch}' at byte {i}"
                    )));
                }
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_select() {
        let t = lex("SELECT a, b FROM t WHERE a >= 10").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t.contains(&Token::GtEq));
        assert!(t.contains(&Token::Int(10)));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let t = lex("'it''s'").unwrap();
        assert_eq!(t[0], Token::Str("it's".into()));
    }

    #[test]
    fn lexes_floats_vs_qualified_names() {
        let t = lex("1.5 t.c").unwrap();
        assert_eq!(t[0], Token::Float(1.5));
        assert_eq!(t[1], Token::Ident("t".into()));
        assert_eq!(t[2], Token::Dot);
        assert_eq!(t[3], Token::Ident("c".into()));
    }

    #[test]
    fn skips_comments() {
        let t = lex("a -- comment here\n b").unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn neq_forms() {
        assert_eq!(lex("<>").unwrap()[0], Token::NotEq);
        assert_eq!(lex("!=").unwrap()[0], Token::NotEq);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a ; b").is_err());
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let t = lex("'héllo wörld'").unwrap();
        assert_eq!(t[0], Token::Str("héllo wörld".into()));
    }

    #[test]
    fn unicode_identifiers_lex_whole() {
        // Multi-byte identifier characters must not split: the old
        // byte-wise walk panicked slicing 'é' in half.
        let t = lex("SELECT é FROM tablé").unwrap();
        assert_eq!(t[1], Token::Ident("é".into()));
        assert_eq!(t[3], Token::Ident("tablé".into()));
        // Non-alphabetic multi-byte junk is an error, not a panic.
        assert!(lex("a € b").is_err());
        assert!(lex("날짜 = 1").unwrap().contains(&Token::Eq));
    }
}
