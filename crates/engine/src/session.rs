//! The session: catalog + configuration + optimizer/planner extension
//! registries. The analogue of Spark's `SparkSession`.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::catalog::{Catalog, MemTable, TableSource};
use crate::chunk::Chunk;
use crate::config::EngineConfig;
use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::logical::LogicalPlan;
use crate::optimizer::{Optimizer, OptimizerRule};
use crate::planner::{PhysicalStrategy, Planner};
use crate::query::{MemoryGovernor, QueryContext, QueryContextBuilder};
use crate::schema::SchemaRef;
use crate::types::Value;

/// Extension point a durability layer installs on a session so the engine
/// can dispatch `CHECKPOINT` statements (and `Session::checkpoint`) without
/// depending on the layer itself — the storage crates sit *above* the
/// engine in the dependency graph, so the engine only sees this trait.
pub trait DurabilityHook: Send + Sync {
    /// Checkpoint `table` (or every durable table when `None`); returns the
    /// names of the tables checkpointed.
    fn checkpoint(&self, table: Option<&str>) -> Result<Vec<String>>;

    /// Verify the on-disk state of `table` (or every durable table when
    /// `None`): re-walk checkpoint snapshots and WAL segments checking
    /// CRCs, quarantine a corrupt snapshot and fall back to the previous
    /// valid generation. Returns one row per verified target.
    fn scrub(&self, table: Option<&str>) -> Result<Vec<ScrubRow>> {
        let _ = table;
        Err(crate::error::EngineError::Unsupported(
            "this durability layer does not support SCRUB".to_string(),
        ))
    }

    /// Re-arm the write path of `table` (or every durable table when
    /// `None`) after a read-only degradation: take a fresh checkpoint and
    /// rotate to a new WAL segment so appends are accepted again. Returns
    /// the names of the tables resumed.
    fn resume_writes(&self, table: Option<&str>) -> Result<Vec<String>> {
        let _ = table;
        Err(crate::error::EngineError::Unsupported(
            "this durability layer does not support resume_writes".to_string(),
        ))
    }
}

/// One scrub finding/verification row, as returned by
/// [`DurabilityHook::scrub`] and surfaced by SQL `SCRUB [table]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubRow {
    /// The durable table the target belongs to.
    pub table: String,
    /// The verified target (manifest, snapshot or segment file name).
    pub target: String,
    /// Outcome: `ok`, `corrupt`, `quarantined`, `fell-back`, `stale`, …
    pub status: String,
    /// Human-readable detail — for corruption, includes byte offsets.
    pub detail: String,
}

/// Extension point a storage layer installs so SQL `CREATE TABLE` (and
/// [`Session::create_table`]) can mint that layer's table sources instead
/// of the engine's plain [`crate::catalog::AppendTable`]. Same inversion
/// as [`DurabilityHook`]: the Indexed DataFrame crates sit above the
/// engine, so the engine only sees this trait.
pub trait TableFactory: Send + Sync {
    /// Build an empty, appendable table source with `schema` for a table
    /// that will be registered under `name`.
    fn create(&self, name: &str, schema: SchemaRef) -> Result<Arc<dyn TableSource>>;
}

/// Extension point the materialized-view subsystem (`idf-views`) installs
/// so SQL `CREATE/DROP/REFRESH MATERIALIZED VIEW` can dispatch to it. Same
/// inversion as [`DurabilityHook`]: the views crate sits above the engine,
/// so the engine only sees this trait.
///
/// Methods take the session by reference rather than the hook holding one:
/// a hook that captured a `Session` clone would form an `Arc` cycle
/// (session → hook → session) and never be dropped.
pub trait ViewsHook: Send + Sync {
    /// Register a materialized view `name` defined by `query`, seed its
    /// state at a consistent snapshot, and start incremental maintenance.
    fn create_view(
        &self,
        session: &Session,
        name: &str,
        query: &crate::sql::SelectStmt,
    ) -> Result<()>;

    /// Deregister view `name` and discard its materialized state.
    fn drop_view(&self, session: &Session, name: &str) -> Result<()>;

    /// Recompute view `name` from scratch at a consistent snapshot of its
    /// base tables.
    fn refresh_view(&self, session: &Session, name: &str) -> Result<()>;
}

/// Extension point the compaction subsystem (`idf-compact`) installs so
/// SQL `COMPACT [table]` (and [`Session::compact`]) can dispatch to it.
/// Same inversion as [`DurabilityHook`]: the compaction crate sits above
/// the engine, so the engine only sees this trait.
///
/// Methods take the session by reference rather than the hook holding one
/// — a hook that captured a `Session` clone would form an `Arc` cycle
/// (session → hook → session) and never be dropped.
pub trait CompactHook: Send + Sync {
    /// Synchronously compact `table` (or every managed table when `None`):
    /// drop row versions hidden below tombstones, shorten MVCC chains,
    /// release the memory. Returns one row per compacted table.
    fn compact(&self, session: &Session, table: Option<&str>) -> Result<Vec<CompactRow>>;
}

/// One table's compaction outcome, as returned by [`CompactHook::compact`]
/// and surfaced by SQL `COMPACT [table]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactRow {
    /// The compacted table.
    pub table: String,
    /// Dead row versions (superseded + tombstoned) dropped.
    pub rows_reclaimed: usize,
    /// Stored bytes released.
    pub bytes_reclaimed: usize,
}

struct SessionState {
    catalog: Catalog,
    config: EngineConfig,
    rules: RwLock<Vec<Arc<dyn OptimizerRule>>>,
    strategies: RwLock<Vec<Arc<dyn PhysicalStrategy>>>,
    /// Session-wide memory budget, present when
    /// `EngineConfig::total_memory_limit` is set; shared by every query.
    governor: Option<Arc<MemoryGovernor>>,
    /// Installed durability layer, if any (see [`DurabilityHook`]).
    durability: RwLock<Option<Arc<dyn DurabilityHook>>>,
    /// Installed DDL table factory, if any (see [`TableFactory`]).
    table_factory: RwLock<Option<Arc<dyn TableFactory>>>,
    /// Installed materialized-view subsystem, if any (see [`ViewsHook`]).
    views: RwLock<Option<Arc<dyn ViewsHook>>>,
    /// Installed compaction subsystem, if any (see [`CompactHook`]).
    compact: RwLock<Option<Arc<dyn CompactHook>>>,
}

/// A query session. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Session {
    state: Arc<SessionState>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Session with default configuration.
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Session with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let governor = config.total_memory_limit.map(MemoryGovernor::new);
        Session {
            state: Arc::new(SessionState {
                catalog: Catalog::new(),
                config,
                rules: RwLock::new(Vec::new()),
                strategies: RwLock::new(Vec::new()),
                governor,
                durability: RwLock::new(None),
                table_factory: RwLock::new(None),
                views: RwLock::new(None),
                compact: RwLock::new(None),
            }),
        }
    }

    /// The session-wide memory governor, if `total_memory_limit` is set.
    pub fn memory_governor(&self) -> Option<Arc<MemoryGovernor>> {
        self.state.governor.clone()
    }

    /// A fresh [`QueryContext`] carrying the session's configured limits
    /// (per-query memory cap, global governor; no deadline). Hold a clone
    /// to cancel the query from another thread while it runs via
    /// `DataFrame::collect_ctx`.
    pub fn new_query(&self) -> Arc<QueryContext> {
        self.query_builder().build()
    }

    /// A fresh [`QueryContext`] with the session's limits plus a deadline
    /// of `timeout` from now.
    pub fn new_query_with_timeout(&self, timeout: std::time::Duration) -> Arc<QueryContext> {
        self.query_builder().timeout(timeout).build()
    }

    fn query_builder(&self) -> QueryContextBuilder {
        let mut builder = QueryContext::builder();
        if let Some(limit) = self.state.config.query_memory_limit {
            builder = builder.memory_limit(limit);
        }
        if let Some(governor) = &self.state.governor {
            builder = builder.governor(Arc::clone(governor));
        }
        builder
    }

    /// The session configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.state.config
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.state.catalog
    }

    /// Register a table source under `name`, replacing any existing
    /// registration. Library code re-registering a known table uses this;
    /// DDL must use [`Session::register_table_new`] so racing creates
    /// cannot silently overwrite each other.
    pub fn register_table(&self, name: impl Into<String>, table: Arc<dyn TableSource>) {
        self.state.catalog.register(name, table);
    }

    /// Atomically register a table source under `name` only if the name is
    /// free. The vacancy check and the insert happen under one catalog
    /// write lock: of two racing registrations exactly one wins and the
    /// loser gets [`crate::error::EngineError::TableAlreadyExists`].
    pub fn register_table_new(
        &self,
        name: impl Into<String>,
        table: Arc<dyn TableSource>,
    ) -> Result<()> {
        self.state.catalog.register_new(name, table)
    }

    /// Install the factory SQL `CREATE TABLE` mints table sources with
    /// (e.g. `idf-core`'s indexed tables); replaces any previous factory.
    pub fn set_table_factory(&self, factory: Arc<dyn TableFactory>) {
        *self.state.table_factory.write() = Some(factory);
    }

    /// Create and atomically register an empty appendable table — the SQL
    /// `CREATE TABLE` path. The source comes from the installed
    /// [`TableFactory`], or the engine's [`crate::catalog::AppendTable`]
    /// when none is installed. Errors with
    /// [`crate::error::EngineError::TableAlreadyExists`] if `name` is
    /// taken; a racing duplicate create never overwrites the winner.
    pub fn create_table(&self, name: &str, schema: SchemaRef) -> Result<()> {
        let factory = self.state.table_factory.read().clone();
        let source: Arc<dyn TableSource> = match factory {
            Some(f) => f.create(name, Arc::clone(&schema))?,
            None => Arc::new(crate::catalog::AppendTable::new(schema)),
        };
        self.state.catalog.register_new(name, source)
    }

    /// Drop the table registered under `name` — the SQL `DROP TABLE` path.
    /// Errors with [`crate::error::EngineError::TableNotFound`] when no
    /// such table exists. In-flight scans keep the source alive via their
    /// `Arc` and finish with the rows they saw.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        match self.state.catalog.deregister(name) {
            Some(_) => Ok(()),
            None => Err(crate::error::EngineError::TableNotFound(name.to_string())),
        }
    }

    /// Register an extra logical optimizer rule (runs after the built-ins).
    ///
    /// This is the extension point libraries use — the analogue of
    /// injecting rules into Catalyst's `extraOptimizations`.
    pub fn register_rule(&self, rule: Arc<dyn OptimizerRule>) {
        self.state.rules.write().push(rule);
    }

    /// Register a physical planning strategy (consulted before built-ins).
    ///
    /// The analogue of Catalyst's `extraStrategies` — this is how the
    /// Indexed DataFrame injects its indexed join/lookup operators.
    /// Registering a strategy with a name that is already present is a
    /// no-op, so libraries can register idempotently.
    pub fn register_strategy(&self, strategy: Arc<dyn PhysicalStrategy>) {
        let mut strategies = self.state.strategies.write();
        if strategies.iter().any(|s| s.name() == strategy.name()) {
            return;
        }
        strategies.push(strategy);
    }

    /// Names of the registered strategies, in consultation order.
    pub fn strategy_names(&self) -> Vec<String> {
        self.state
            .strategies
            .read()
            .iter()
            .map(|s| s.name().to_string())
            .collect()
    }

    /// A DataFrame scanning a registered table.
    pub fn table(&self, name: &str) -> Result<DataFrame> {
        let source = self.state.catalog.get(name)?;
        let schema = Arc::new(source.schema().qualified(name));
        Ok(DataFrame::new(
            self.clone(),
            LogicalPlan::Scan {
                table: name.to_string(),
                source,
                schema,
                projection: None,
                filters: vec![],
            },
        ))
    }

    /// A DataFrame over literal rows.
    pub fn create_dataframe(&self, schema: SchemaRef, rows: Vec<Vec<Value>>) -> DataFrame {
        DataFrame::new(self.clone(), LogicalPlan::Values { schema, rows })
    }

    /// A DataFrame over an existing chunk (single partition).
    pub fn dataframe_from_chunk(&self, schema: SchemaRef, chunk: Chunk) -> DataFrame {
        let source = Arc::new(MemTable::from_chunk(Arc::clone(&schema), chunk));
        DataFrame::new(
            self.clone(),
            LogicalPlan::Scan {
                table: "inline".to_string(),
                source,
                schema,
                projection: None,
                filters: vec![],
            },
        )
    }

    /// Parse and bind a SQL query into a DataFrame.
    pub fn sql(&self, query: &str) -> Result<DataFrame> {
        crate::sql::plan_sql(self, query)
    }

    /// Install the durability layer that `CHECKPOINT` dispatches to.
    /// Called by `idf-durable` when a session is opened with a data
    /// directory; replaces any previously installed hook.
    pub fn set_durability_hook(&self, hook: Arc<dyn DurabilityHook>) {
        *self.state.durability.write() = Some(hook);
    }

    /// Checkpoint `table` (or every durable table when `None`) through the
    /// installed [`DurabilityHook`]; returns the names of the tables
    /// checkpointed. Errors with `Unsupported` when the session has no
    /// durability layer attached.
    pub fn checkpoint(&self, table: Option<&str>) -> Result<Vec<String>> {
        let hook = self.state.durability.read().clone();
        match hook {
            Some(hook) => hook.checkpoint(table),
            None => Err(crate::error::EngineError::Unsupported(
                "CHECKPOINT requires a durable session (no data_dir is configured)".to_string(),
            )),
        }
    }

    /// Scrub `table` (or every durable table when `None`) through the
    /// installed [`DurabilityHook`]; returns one [`ScrubRow`] per
    /// verified target. Errors with `Unsupported` when the session has no
    /// durability layer attached.
    pub fn scrub(&self, table: Option<&str>) -> Result<Vec<ScrubRow>> {
        let hook = self.state.durability.read().clone();
        match hook {
            Some(hook) => hook.scrub(table),
            None => Err(crate::error::EngineError::Unsupported(
                "SCRUB requires a durable session (no data_dir is configured)".to_string(),
            )),
        }
    }

    /// Re-arm writes on `table` (or every durable table when `None`)
    /// through the installed [`DurabilityHook`] after a read-only
    /// degradation; returns the names of the tables resumed. Errors with
    /// `Unsupported` when the session has no durability layer attached.
    pub fn resume_writes(&self, table: Option<&str>) -> Result<Vec<String>> {
        let hook = self.state.durability.read().clone();
        match hook {
            Some(hook) => hook.resume_writes(table),
            None => Err(crate::error::EngineError::Unsupported(
                "resume_writes requires a durable session (no data_dir is configured)".to_string(),
            )),
        }
    }

    /// Install the materialized-view subsystem that
    /// `CREATE/DROP/REFRESH MATERIALIZED VIEW` dispatch to. Called by
    /// `idf-views`; replaces any previously installed hook.
    pub fn set_views_hook(&self, hook: Arc<dyn ViewsHook>) {
        *self.state.views.write() = Some(hook);
    }

    /// Register a materialized view through the installed [`ViewsHook`].
    /// Errors with `Unsupported` when no views subsystem is attached.
    pub fn create_materialized_view(
        &self,
        name: &str,
        query: &crate::sql::SelectStmt,
    ) -> Result<()> {
        let hook = self.state.views.read().clone();
        match hook {
            Some(hook) => hook.create_view(self, name, query),
            None => Err(crate::error::EngineError::Unsupported(
                "CREATE MATERIALIZED VIEW requires the views subsystem (idf-views)".to_string(),
            )),
        }
    }

    /// Drop a materialized view through the installed [`ViewsHook`].
    /// Errors with `Unsupported` when no views subsystem is attached.
    pub fn drop_materialized_view(&self, name: &str) -> Result<()> {
        let hook = self.state.views.read().clone();
        match hook {
            Some(hook) => hook.drop_view(self, name),
            None => Err(crate::error::EngineError::Unsupported(
                "DROP MATERIALIZED VIEW requires the views subsystem (idf-views)".to_string(),
            )),
        }
    }

    /// Recompute a materialized view through the installed [`ViewsHook`].
    /// Errors with `Unsupported` when no views subsystem is attached.
    pub fn refresh_materialized_view(&self, name: &str) -> Result<()> {
        let hook = self.state.views.read().clone();
        match hook {
            Some(hook) => hook.refresh_view(self, name),
            None => Err(crate::error::EngineError::Unsupported(
                "REFRESH MATERIALIZED VIEW requires the views subsystem (idf-views)".to_string(),
            )),
        }
    }

    /// Install the compaction subsystem that `COMPACT` dispatches to.
    /// Called by `idf-compact`; replaces any previously installed hook.
    pub fn set_compact_hook(&self, hook: Arc<dyn CompactHook>) {
        *self.state.compact.write() = Some(hook);
    }

    /// Compact `table` (or every managed table when `None`) through the
    /// installed [`CompactHook`]; returns one [`CompactRow`] per compacted
    /// table. Errors with `Unsupported` when no compaction subsystem is
    /// attached.
    pub fn compact(&self, table: Option<&str>) -> Result<Vec<CompactRow>> {
        let hook = self.state.compact.read().clone();
        match hook {
            Some(hook) => hook.compact(self, table),
            None => Err(crate::error::EngineError::Unsupported(
                "COMPACT requires the compaction subsystem (idf-compact)".to_string(),
            )),
        }
    }

    /// The process-global metrics in Prometheus text exposition format:
    /// storage counters (appends, probes, chain walks), query lifecycle
    /// counters, and latency histograms. Empty string when the `obs`
    /// feature is compiled out.
    pub fn metrics_text(&self) -> String {
        idf_obs::global().prometheus()
    }

    /// Entries currently retained in the global slow-query log (queries
    /// slower than `EngineConfig::slow_query_threshold`), oldest first.
    pub fn slow_queries(&self) -> Vec<idf_obs::SlowQueryEntry> {
        idf_obs::global().slow_queries.entries()
    }

    /// The optimizer for this session (built-ins + registered rules).
    pub fn optimizer(&self) -> Optimizer {
        Optimizer::with_rules(self.state.rules.read().clone())
    }

    /// The planner for this session (registered strategies first).
    pub fn planner(&self) -> Planner {
        Planner::new(
            self.state.config.clone(),
            self.state.strategies.read().clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn session_with_table() -> Session {
        let s = Session::new();
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        let chunk = Chunk::from_rows(
            &schema,
            &[
                vec![Value::Int64(1), Value::Utf8("a".into())],
                vec![Value::Int64(2), Value::Utf8("b".into())],
            ],
        )
        .unwrap();
        s.register_table("t", Arc::new(MemTable::from_chunk(schema, chunk)));
        s
    }

    #[test]
    fn table_scan_collects() {
        let s = session_with_table();
        let out = s.table("t").unwrap().collect().unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn table_schema_is_qualified() {
        let s = session_with_table();
        let df = s.table("t").unwrap();
        assert_eq!(df.schema().field(0).qualifier.as_deref(), Some("t"));
    }

    #[test]
    fn missing_table_errors() {
        let s = Session::new();
        assert!(s.table("nope").is_err());
    }

    #[test]
    fn filter_end_to_end() {
        let s = session_with_table();
        let out = s
            .table("t")
            .unwrap()
            .filter(col("id").eq(lit(2i64)))
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value_at(1, 0), Value::Utf8("b".into()));
    }

    #[test]
    fn checkpoint_without_hook_is_unsupported() {
        let s = Session::new();
        let err = s.checkpoint(None).unwrap_err();
        assert!(matches!(err, crate::error::EngineError::Unsupported(_)));
    }

    #[test]
    fn checkpoint_dispatches_to_installed_hook() {
        struct Recorder;
        impl DurabilityHook for Recorder {
            fn checkpoint(&self, table: Option<&str>) -> Result<Vec<String>> {
                Ok(vec![table.unwrap_or("all").to_string()])
            }
        }
        let s = Session::new();
        s.set_durability_hook(Arc::new(Recorder));
        assert_eq!(s.checkpoint(Some("t")).unwrap(), vec!["t".to_string()]);
        assert_eq!(s.checkpoint(None).unwrap(), vec!["all".to_string()]);
    }

    #[test]
    fn create_and_drop_table() {
        let s = Session::new();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        s.create_table("t", Arc::clone(&schema)).unwrap();
        assert_eq!(s.table("t").unwrap().collect().unwrap().len(), 0);
        let err = s.create_table("t", Arc::clone(&schema)).unwrap_err();
        assert!(
            matches!(err, crate::error::EngineError::TableAlreadyExists(_)),
            "got {err:?}"
        );
        s.drop_table("t").unwrap();
        assert!(s.table("t").is_err());
        let err = s.drop_table("t").unwrap_err();
        assert!(matches!(err, crate::error::EngineError::TableNotFound(_)));
    }

    #[test]
    fn create_table_dispatches_to_installed_factory() {
        struct Counting(std::sync::atomic::AtomicUsize);
        impl TableFactory for Counting {
            fn create(&self, _name: &str, schema: SchemaRef) -> Result<Arc<dyn TableSource>> {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(Arc::new(crate::catalog::AppendTable::new(schema)))
            }
        }
        let s = Session::new();
        let factory = Arc::new(Counting(std::sync::atomic::AtomicUsize::new(0)));
        s.set_table_factory(Arc::clone(&factory) as Arc<dyn TableFactory>);
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        s.create_table("t", schema).unwrap();
        assert_eq!(factory.0.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    /// Regression: concurrent `CREATE TABLE` of the same name used to be
    /// check-then-insert with no lock held across the check — both racing
    /// creates could "succeed", one silently overwriting the other's
    /// source. Now exactly one create wins per round and every loser gets
    /// the typed `TableAlreadyExists` error.
    #[test]
    fn concurrent_create_table_has_one_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s = Session::new();
        for round in 0..16 {
            let name = format!("race_{round}");
            let wins = AtomicUsize::new(0);
            let dupes = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
                        match s.create_table(&name, schema) {
                            Ok(()) => {
                                wins.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(crate::error::EngineError::TableAlreadyExists(t)) => {
                                assert_eq!(t, name);
                                dupes.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(other) => panic!("unexpected error: {other:?}"),
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::SeqCst), 1);
            assert_eq!(dupes.load(Ordering::SeqCst), 7);
        }
    }

    #[test]
    fn create_dataframe_literal_rows() {
        let s = Session::new();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let df = s.create_dataframe(schema, vec![vec![Value::Int64(9)]]);
        let out = df.collect().unwrap();
        assert_eq!(out.value_at(0, 0), Value::Int64(9));
    }
}
