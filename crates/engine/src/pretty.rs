//! ASCII rendering of result chunks (for `DataFrame::show` and the
//! benchmark harness).

use crate::chunk::Chunk;
use crate::schema::Schema;

/// Format `chunk` as a boxed ASCII table with `schema`'s column names.
pub fn format_chunk(schema: &Schema, chunk: &Chunk) -> String {
    let headers: Vec<String> = schema.fields.iter().map(|f| f.qualified_name()).collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(chunk.len());
    for r in 0..chunk.len() {
        rows.push(
            (0..chunk.num_columns())
                .map(|c| chunk.value_at(c, r).to_string())
                .collect(),
        );
    }
    format_table(&headers, &rows)
}

/// Format a generic table.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            s.push_str(&format!(" {cell:w$} |", w = w));
        }
        s.push('\n');
        s
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push_str(&fmt_row(headers));
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out.push_str(&sep);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;
    use crate::schema::Field;
    use crate::types::{DataType, Value};
    use std::sync::Arc;

    #[test]
    fn renders_table() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        let chunk = Chunk::from_rows(
            &schema,
            &[
                vec![Value::Int64(1), Value::Utf8("amsterdam".into())],
                vec![Value::Int64(2), Value::Null],
            ],
        )
        .unwrap();
        let s = format_chunk(&schema, &chunk);
        assert!(s.contains("| id | name      |"), "{s}");
        assert!(s.contains("| 2  | NULL      |"), "{s}");
        assert_eq!(s.matches('+').count() % 3, 0);
    }

    #[test]
    fn empty_table() {
        let s = format_table(&["a".into()], &[]);
        assert!(s.contains("| a |"));
    }
}
