//! Session / execution configuration.

/// Tunable execution parameters (the analogue of `spark.conf`).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of partitions produced by shuffles and repartitions
    /// (`spark.sql.shuffle.partitions`).
    pub target_partitions: usize,
    /// Probe/build sides smaller than this many rows are broadcast instead
    /// of shuffled in joins (`spark.sql.autoBroadcastJoinThreshold`, in rows
    /// here since all tables are in-memory).
    pub broadcast_threshold_rows: usize,
    /// Preferred maximum rows per produced chunk.
    pub batch_size: usize,
    /// Per-query cap, in bytes, on materialized buffers (shuffle buffers,
    /// join build sides, aggregation hash tables, sort buffers). `None`
    /// (the default) means unlimited. Exceeding it fails that query with
    /// `ResourceExhausted`; other queries are unaffected.
    pub query_memory_limit: Option<usize>,
    /// Session-wide cap, in bytes, shared by all concurrent queries via a
    /// `MemoryGovernor`. `None` (the default) means unlimited.
    pub total_memory_limit: Option<usize>,
    /// Queries slower than this end-to-end are recorded in the global
    /// slow-query log (see `idf-obs`). `None` disables the log.
    pub slow_query_threshold: Option<std::time::Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            target_partitions: default_parallelism(),
            broadcast_threshold_rows: 10_000,
            batch_size: 8192,
            query_memory_limit: None,
            total_memory_limit: None,
            slow_query_threshold: Some(std::time::Duration::from_millis(100)),
        }
    }
}

/// Number of partitions to default to: the machine's available parallelism.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.target_partitions >= 1);
        assert!(c.batch_size > 0);
        assert!(c.broadcast_threshold_rows > 0);
    }
}
