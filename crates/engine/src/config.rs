//! Session / execution configuration.

/// Tunable execution parameters (the analogue of `spark.conf`).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of partitions produced by shuffles and repartitions
    /// (`spark.sql.shuffle.partitions`).
    pub target_partitions: usize,
    /// Probe/build sides smaller than this many rows are broadcast instead
    /// of shuffled in joins (`spark.sql.autoBroadcastJoinThreshold`, in rows
    /// here since all tables are in-memory).
    pub broadcast_threshold_rows: usize,
    /// Preferred maximum rows per produced chunk.
    pub batch_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            target_partitions: default_parallelism(),
            broadcast_threshold_rows: 10_000,
            batch_size: 8192,
        }
    }
}

/// Number of partitions to default to: the machine's available parallelism.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.target_partitions >= 1);
        assert!(c.batch_size > 0);
        assert!(c.broadcast_threshold_rows > 0);
    }
}
