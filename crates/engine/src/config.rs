//! Session / execution configuration.

/// Tunable execution parameters (the analogue of `spark.conf`).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of partitions produced by shuffles and repartitions
    /// (`spark.sql.shuffle.partitions`).
    pub target_partitions: usize,
    /// Probe/build sides smaller than this many rows are broadcast instead
    /// of shuffled in joins (`spark.sql.autoBroadcastJoinThreshold`, in rows
    /// here since all tables are in-memory).
    pub broadcast_threshold_rows: usize,
    /// Preferred maximum rows per produced chunk.
    pub batch_size: usize,
    /// Per-query cap, in bytes, on materialized buffers (shuffle buffers,
    /// join build sides, aggregation hash tables, sort buffers). `None`
    /// (the default) means unlimited. Exceeding it fails that query with
    /// `ResourceExhausted`; other queries are unaffected.
    pub query_memory_limit: Option<usize>,
    /// Session-wide cap, in bytes, shared by all concurrent queries via a
    /// `MemoryGovernor`. `None` (the default) means unlimited.
    pub total_memory_limit: Option<usize>,
    /// Queries slower than this end-to-end are recorded in the global
    /// slow-query log (see `idf-obs`). `None` disables the log.
    pub slow_query_threshold: Option<std::time::Duration>,
    /// Root directory for durable state (per-table WAL segments and
    /// checkpoints). `None` (the default) keeps the engine purely
    /// in-memory. Validated — created if absent, typed error on
    /// unwritable/colliding paths — by the durability layer on open.
    pub data_dir: Option<std::path::PathBuf>,
    /// How strongly appends are persisted when a durability layer is
    /// attached. Ignored (and irrelevant) while `data_dir` is `None`.
    pub durability: DurabilityLevel,
}

/// When an acknowledged append is guaranteed to be on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityLevel {
    /// No write-ahead logging at all: tables are in-memory only, exactly
    /// as before the durability subsystem existed. The default, so
    /// existing tests and benches are unchanged.
    #[default]
    None,
    /// Appends are acknowledged once staged with the group-commit writer;
    /// the WAL record reaches disk shortly after, but a crash can lose
    /// the last few acknowledged commits.
    Async,
    /// Appends are acknowledged only after their WAL record is fsync'd.
    /// Concurrent commits are coalesced into one fsync (group commit).
    Sync,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            target_partitions: default_parallelism(),
            broadcast_threshold_rows: 10_000,
            batch_size: 8192,
            query_memory_limit: None,
            total_memory_limit: None,
            slow_query_threshold: Some(std::time::Duration::from_millis(100)),
            data_dir: None,
            durability: DurabilityLevel::None,
        }
    }
}

/// Number of partitions to default to: the machine's available parallelism.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.target_partitions >= 1);
        assert!(c.batch_size > 0);
        assert!(c.broadcast_threshold_rows > 0);
        assert_eq!(c.data_dir, None);
        assert_eq!(c.durability, DurabilityLevel::None);
    }
}
