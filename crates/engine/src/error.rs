//! Engine error type.

use std::fmt;

/// All errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query referenced a column that does not exist (or is ambiguous).
    ColumnNotFound(String),
    /// A query referenced a table that is not registered.
    TableNotFound(String),
    /// The expression or plan is not well typed.
    Type(String),
    /// SQL text failed to lex or parse.
    Sql(String),
    /// A plan could not be turned into a physical plan.
    Plan(String),
    /// A runtime failure during execution.
    Execution(String),
    /// The operation is not (yet) supported.
    Unsupported(String),
    /// Internal invariant violation — a bug in the engine.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            EngineError::TableNotFound(t) => write!(f, "table not found: {t}"),
            EngineError::Type(m) => write!(f, "type error: {m}"),
            EngineError::Sql(m) => write!(f, "SQL error: {m}"),
            EngineError::Plan(m) => write!(f, "planning error: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Internal(m) => write!(f, "internal error (bug): {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias used across the engine.
pub type Result<T, E = EngineError> = std::result::Result<T, E>;

/// Shorthand constructors, used pervasively.
impl EngineError {
    /// Build a type error.
    pub fn type_err(msg: impl Into<String>) -> Self {
        EngineError::Type(msg.into())
    }

    /// Build an execution error.
    pub fn exec(msg: impl Into<String>) -> Self {
        EngineError::Execution(msg.into())
    }

    /// Build an internal-invariant error.
    pub fn internal(msg: impl Into<String>) -> Self {
        EngineError::Internal(msg.into())
    }

    /// Build a planning error.
    pub fn plan(msg: impl Into<String>) -> Self {
        EngineError::Plan(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            EngineError::ColumnNotFound("x".into()).to_string(),
            "column not found: x"
        );
        assert!(EngineError::internal("oops").to_string().contains("bug"));
    }
}
