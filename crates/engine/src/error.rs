//! Engine error type.

use std::fmt;

/// All errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query referenced a column that does not exist (or is ambiguous).
    ColumnNotFound(String),
    /// A query referenced a table that is not registered.
    TableNotFound(String),
    /// `CREATE TABLE` (or an atomic registration) targeted a name that is
    /// already registered. Registration is atomic: of two racing creates,
    /// exactly one wins and the loser gets this error — the winner's
    /// table is never silently overwritten.
    TableAlreadyExists(String),
    /// The expression or plan is not well typed.
    Type(String),
    /// SQL text failed to lex or parse.
    Sql(String),
    /// A plan could not be turned into a physical plan.
    Plan(String),
    /// A runtime failure during execution.
    Execution(String),
    /// The operation is not (yet) supported.
    Unsupported(String),
    /// Internal invariant violation — a bug in the engine.
    Internal(String),
    /// The query was cancelled cooperatively (see `QueryContext::cancel`).
    Cancelled,
    /// The query ran past its deadline and was stopped cooperatively.
    DeadlineExceeded,
    /// A per-query or global memory budget was exceeded; the query unwound
    /// cleanly and other in-flight queries are unaffected.
    ResourceExhausted(String),
    /// A durability I/O operation (WAL append, fsync, checkpoint write,
    /// data-dir validation) failed. `std::io::Error` is neither `Clone` nor
    /// `Eq`, so the message is stringified at the boundary.
    Durability(String),
    /// The table's durability sink is degraded to read-only mode (sticky
    /// fsync failure, ENOSPC): reads and snapshots keep serving, appends
    /// fail fast with this error until an explicit `resume_writes`
    /// re-arms the WAL. Carries the degradation cause.
    ReadOnly(String),
    /// On-disk state (manifest, checkpoint, WAL segment) failed validation:
    /// bad magic, version, checksum, or a pointer that does not resolve.
    /// Recovery refuses corrupt input with this error instead of panicking.
    Corrupt(String),
    /// A statement referenced a materialized view that is not registered
    /// (`DROP MATERIALIZED VIEW` / `REFRESH MATERIALIZED VIEW` on an
    /// unknown name). Distinct from [`EngineError::TableNotFound`] so the
    /// serve layer can emit a typed `UnknownView` error frame.
    ViewNotFound(String),
    /// `CREATE MATERIALIZED VIEW` targeted a name that is already a
    /// registered view. Like table registration, view registration is
    /// atomic: of two racing creates exactly one wins and the loser gets
    /// this error.
    ViewAlreadyExists(String),
    /// A single row exceeded the configured encoded-size limit (rows are
    /// capped at `IndexConfig::max_row_size`; batches at
    /// `IndexConfig::batch_size`).
    RowTooLarge {
        /// Encoded size of the offending row in bytes.
        size: usize,
        /// The limit that was exceeded, in bytes.
        max: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            EngineError::TableNotFound(t) => write!(f, "table not found: {t}"),
            EngineError::TableAlreadyExists(t) => write!(f, "table already exists: {t}"),
            EngineError::Type(m) => write!(f, "type error: {m}"),
            EngineError::Sql(m) => write!(f, "SQL error: {m}"),
            EngineError::Plan(m) => write!(f, "planning error: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Internal(m) => write!(f, "internal error (bug): {m}"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            EngineError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            EngineError::Durability(m) => write!(f, "durability error: {m}"),
            EngineError::ReadOnly(m) => write!(f, "table is read-only (degraded): {m}"),
            EngineError::Corrupt(m) => write!(f, "corrupt on-disk state: {m}"),
            EngineError::ViewNotFound(v) => write!(f, "materialized view not found: {v}"),
            EngineError::ViewAlreadyExists(v) => {
                write!(f, "materialized view already exists: {v}")
            }
            EngineError::RowTooLarge { size, max } => write!(
                f,
                "row too large: encoded row is {size} bytes; at most {max} bytes are allowed"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias used across the engine.
pub type Result<T, E = EngineError> = std::result::Result<T, E>;

/// Shorthand constructors, used pervasively.
impl EngineError {
    /// Build a type error.
    pub fn type_err(msg: impl Into<String>) -> Self {
        EngineError::Type(msg.into())
    }

    /// Build an execution error.
    pub fn exec(msg: impl Into<String>) -> Self {
        EngineError::Execution(msg.into())
    }

    /// Build an internal-invariant error.
    pub fn internal(msg: impl Into<String>) -> Self {
        EngineError::Internal(msg.into())
    }

    /// Build a planning error.
    pub fn plan(msg: impl Into<String>) -> Self {
        EngineError::Plan(msg.into())
    }

    /// Build a resource-exhaustion (memory budget) error.
    pub fn resource(msg: impl Into<String>) -> Self {
        EngineError::ResourceExhausted(msg.into())
    }

    /// Build a durability (I/O) error. Accepts anything displayable so
    /// `std::io::Error` values can be passed straight through.
    pub fn durability(msg: impl fmt::Display) -> Self {
        EngineError::Durability(msg.to_string())
    }

    /// Build a corrupt-on-disk-state error.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        EngineError::Corrupt(msg.into())
    }

    /// Build a read-only-degraded error carrying the degradation cause.
    pub fn read_only(cause: impl Into<String>) -> Self {
        EngineError::ReadOnly(cause.into())
    }

    /// True for the cooperative-stop errors ([`EngineError::Cancelled`] and
    /// [`EngineError::DeadlineExceeded`]) that mean the query was asked to
    /// stop rather than that it failed.
    pub fn is_cancellation(&self) -> bool {
        matches!(self, EngineError::Cancelled | EngineError::DeadlineExceeded)
    }
}

/// Run `f`, converting a panic into an [`EngineError::Internal`] carrying
/// the panic message. Used by every scoped worker so that a panicking
/// partition task surfaces as a query error instead of aborting the
/// process.
pub fn catch_panics<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(EngineError::Internal(format!(
            "worker panicked: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            EngineError::ColumnNotFound("x".into()).to_string(),
            "column not found: x"
        );
        assert!(EngineError::internal("oops").to_string().contains("bug"));
        assert_eq!(EngineError::Cancelled.to_string(), "query cancelled");
        assert_eq!(
            EngineError::durability("disk full").to_string(),
            "durability error: disk full"
        );
        assert_eq!(
            EngineError::corrupt("bad checksum").to_string(),
            "corrupt on-disk state: bad checksum"
        );
        assert!(EngineError::RowTooLarge {
            size: 2048,
            max: 1024
        }
        .to_string()
        .contains("at most 1024 bytes"));
    }

    #[test]
    fn cancellation_classification() {
        assert!(EngineError::Cancelled.is_cancellation());
        assert!(EngineError::DeadlineExceeded.is_cancellation());
        assert!(!EngineError::resource("x").is_cancellation());
    }

    #[test]
    fn catch_panics_converts_panics_to_internal_errors() {
        assert_eq!(catch_panics(|| Ok(1)), Ok(1));
        let err = catch_panics::<()>(|| panic!("kapow")).unwrap_err();
        match err {
            EngineError::Internal(m) => assert!(m.contains("kapow"), "got: {m}"),
            other => panic!("expected Internal, got {other:?}"),
        }
    }
}
