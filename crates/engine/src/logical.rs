//! Logical query plans — the engine's analogue of Catalyst's logical
//! operator trees.

use std::fmt;
use std::sync::Arc;

use crate::catalog::TableSource;
use crate::expr::{Expr, SortExpr};
use crate::schema::SchemaRef;
use crate::types::Value;

/// Join types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join.
    Left,
    /// Left semi-join (rows of the left side with at least one match).
    Semi,
    /// Left anti-join (rows of the left side with no match).
    Anti,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinType::Inner => "INNER",
            JoinType::Left => "LEFT",
            JoinType::Semi => "SEMI",
            JoinType::Anti => "ANTI",
        };
        f.write_str(s)
    }
}

/// A logical plan node. Schemas are attached at construction (by the
/// DataFrame API or the analyzer) so every node can report its output
/// schema without re-derivation.
#[derive(Clone)]
pub enum LogicalPlan {
    /// Scan of a registered table source.
    Scan {
        /// Display/catalog name of the table.
        table: String,
        /// The source to scan.
        source: Arc<dyn TableSource>,
        /// Output schema (qualified, post-projection).
        schema: SchemaRef,
        /// Optional column projection (indices into the source schema).
        projection: Option<Vec<usize>>,
        /// Filters pushed into the source (each supported natively by it).
        filters: Vec<Expr>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Column projection/computation.
    Projection {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Equi-join.
    Join {
        /// Left input (paper: the *indexed* side when present, i.e. build).
        left: Arc<LogicalPlan>,
        /// Right input (probe).
        right: Arc<LogicalPlan>,
        /// Equi-join key pairs `(left_key, right_key)`.
        on: Vec<(Expr, Expr)>,
        /// Join type.
        join_type: JoinType,
        /// Output schema (left ++ right for inner/left).
        schema: SchemaRef,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Group-by expressions.
        group_exprs: Vec<Expr>,
        /// Aggregate expressions.
        agg_exprs: Vec<Expr>,
        /// Output schema: group columns then aggregate columns.
        schema: SchemaRef,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Sort keys.
        exprs: Vec<SortExpr>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Arc<LogicalPlan>,
        /// Maximum number of rows.
        n: usize,
    },
    /// Concatenation of plans with identical schemas.
    Union {
        /// The inputs.
        inputs: Vec<Arc<LogicalPlan>>,
        /// Shared schema.
        schema: SchemaRef,
    },
    /// Literal rows.
    Values {
        /// Output schema.
        schema: SchemaRef,
        /// Row-major literal values.
        rows: Vec<Vec<Value>>,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            LogicalPlan::Scan { schema, .. } => Arc::clone(schema),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Projection { schema, .. } => Arc::clone(schema),
            LogicalPlan::Join { schema, .. } => Arc::clone(schema),
            LogicalPlan::Aggregate { schema, .. } => Arc::clone(schema),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Union { schema, .. } => Arc::clone(schema),
            LogicalPlan::Values { schema, .. } => Arc::clone(schema),
        }
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Projection { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::Union { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Operator name for display.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Projection { .. } => "Projection",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Union { .. } => "Union",
            LogicalPlan::Values { .. } => "Values",
        }
    }

    /// Multi-line indented plan display (like `EXPLAIN`).
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let line = match self {
            LogicalPlan::Scan {
                table,
                projection,
                filters,
                ..
            } => {
                let mut s = format!("Scan: {table}");
                if let Some(p) = projection {
                    s.push_str(&format!(" projection={p:?}"));
                }
                if !filters.is_empty() {
                    let fs: Vec<String> = filters.iter().map(|f| f.to_string()).collect();
                    s.push_str(&format!(" filters=[{}]", fs.join(", ")));
                }
                s
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            LogicalPlan::Projection { exprs, .. } => {
                let es: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                format!("Projection: {}", es.join(", "))
            }
            LogicalPlan::Join { on, join_type, .. } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                format!("Join({join_type}): {}", keys.join(", "))
            }
            LogicalPlan::Aggregate {
                group_exprs,
                agg_exprs,
                ..
            } => {
                let gs: Vec<String> = group_exprs.iter().map(|e| e.to_string()).collect();
                let as_: Vec<String> = agg_exprs.iter().map(|e| e.to_string()).collect();
                format!(
                    "Aggregate: group=[{}] aggs=[{}]",
                    gs.join(", "),
                    as_.join(", ")
                )
            }
            LogicalPlan::Sort { exprs, .. } => {
                let es: Vec<String> = exprs
                    .iter()
                    .map(|s| format!("{} {}", s.expr, if s.ascending { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort: {}", es.join(", "))
            }
            LogicalPlan::Limit { n, .. } => format!("Limit: {n}"),
            LogicalPlan::Union { inputs, .. } => format!("Union: {} inputs", inputs.len()),
            LogicalPlan::Values { rows, .. } => format!("Values: {} rows", rows.len()),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for child in self.children() {
            child.fmt_indent(out, indent + 1);
        }
    }
}

impl fmt::Debug for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemTable;
    use crate::chunk::Chunk;
    use crate::expr::{col, lit};
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn scan() -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let source = Arc::new(MemTable::from_chunk(
            Arc::clone(&schema),
            Chunk::empty(&schema),
        ));
        LogicalPlan::Scan {
            table: "t".into(),
            source,
            schema,
            projection: None,
            filters: vec![],
        }
    }

    #[test]
    fn display_tree() {
        let plan = LogicalPlan::Filter {
            input: Arc::new(scan()),
            predicate: col("x").eq(lit(1i64)),
        };
        let shown = plan.display_indent();
        assert!(shown.starts_with("Filter: (x = 1)\n"));
        assert!(shown.contains("  Scan: t"));
    }

    #[test]
    fn schema_propagates_through_filter_sort_limit() {
        let s = Arc::new(scan());
        let f = LogicalPlan::Filter {
            input: Arc::clone(&s),
            predicate: lit(true),
        };
        assert_eq!(f.schema(), s.schema());
        let l = LogicalPlan::Limit {
            input: Arc::new(f),
            n: 1,
        };
        assert_eq!(l.schema().fields[0].name, "x");
    }

    #[test]
    fn children_counts() {
        let s = Arc::new(scan());
        assert_eq!(s.children().len(), 0);
        let u = LogicalPlan::Union {
            inputs: vec![Arc::clone(&s), Arc::clone(&s)],
            schema: s.schema(),
        };
        assert_eq!(u.children().len(), 2);
    }
}
