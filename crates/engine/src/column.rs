//! Columnar vectors — the engine's cached, in-memory representation.
//!
//! Vanilla Spark caches DataFrames in a columnar format; this module is the
//! analogue. The Indexed DataFrame instead caches *row batches* (see
//! `idf-core`), which is why the paper's Figure 2 shows projection being
//! slower on the indexed representation: a columnar cache touches only the
//! projected columns, a row cache must walk whole rows.

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::error::{EngineError, Result};
use crate::types::{DataType, Value};

/// A typed column of values with optional validity (null) bitmap.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Booleans.
    Boolean(PrimVec<bool>),
    /// 32-bit integers.
    Int32(PrimVec<i32>),
    /// 64-bit integers.
    Int64(PrimVec<i64>),
    /// 64-bit floats.
    Float64(PrimVec<f64>),
    /// UTF-8 strings (offsets + byte buffer).
    Utf8(StrVec),
    /// Timestamps (millis since epoch).
    Timestamp(PrimVec<i64>),
}

/// Shared column handle.
pub type ColumnRef = Arc<Column>;

/// Fixed-width values plus optional validity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PrimVec<T> {
    /// The values; invalid slots hold an unspecified value.
    pub values: Vec<T>,
    /// Valid (non-null) bits; `None` means all valid.
    pub validity: Option<Bitmap>,
}

impl<T: Copy + Default> PrimVec<T> {
    /// All-valid vector.
    pub fn from_values(values: Vec<T>) -> Self {
        PrimVec {
            values,
            validity: None,
        }
    }

    /// Vector from optional values.
    pub fn from_options(values: Vec<Option<T>>) -> Self {
        let mut validity = Bitmap::zeros(values.len());
        let mut out = Vec::with_capacity(values.len());
        let mut any_null = false;
        for (i, v) in values.into_iter().enumerate() {
            match v {
                Some(v) => {
                    validity.set(i, true);
                    out.push(v);
                }
                None => {
                    any_null = true;
                    out.push(T::default());
                }
            }
        }
        PrimVec {
            values: out,
            validity: if any_null { Some(validity) } else { None },
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether slot `i` is valid (non-null).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|b| b.get(i))
    }

    /// Value at `i`, or `None` when null.
    #[inline]
    pub fn get(&self, i: usize) -> Option<T> {
        if self.is_valid(i) {
            Some(self.values[i])
        } else {
            None
        }
    }

    fn take(&self, indices: &[u32]) -> Self {
        let values = indices.iter().map(|&i| self.values[i as usize]).collect();
        let validity = self.validity.as_ref().map(|b| b.take(indices));
        PrimVec { values, validity }
    }

    fn concat(&self, other: &Self) -> Self {
        let mut values = self.values.clone();
        values.extend_from_slice(&other.values);
        let validity = match (&self.validity, &other.validity) {
            (None, None) => None,
            (a, b) => {
                let left = a.clone().unwrap_or_else(|| Bitmap::ones(self.len()));
                let right = b.clone().unwrap_or_else(|| Bitmap::ones(other.len()));
                Some(left.concat(&right))
            }
        };
        PrimVec { values, validity }
    }
}

/// Strings stored as a contiguous byte buffer plus offsets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StrVec {
    /// `offsets.len() == len + 1`; string `i` is `bytes[offsets[i]..offsets[i+1]]`.
    pub offsets: Vec<u32>,
    /// Concatenated UTF-8 bytes.
    pub bytes: Vec<u8>,
    /// Valid (non-null) bits; `None` means all valid.
    pub validity: Option<Bitmap>,
}

impl StrVec {
    /// Empty string vector.
    pub fn new() -> Self {
        StrVec {
            offsets: vec![0],
            bytes: Vec::new(),
            validity: None,
        }
    }

    /// Build from string slices.
    pub fn from_strs<S: AsRef<str>>(values: &[S]) -> Self {
        let mut v = StrVec::new();
        for s in values {
            v.push(Some(s.as_ref()));
        }
        v
    }

    /// Build from optional string slices.
    pub fn from_options<S: AsRef<str>>(values: &[Option<S>]) -> Self {
        let mut v = StrVec::new();
        for s in values {
            v.push(s.as_ref().map(|s| s.as_ref()));
        }
        v
    }

    /// Append a value (null when `None`).
    pub fn push(&mut self, value: Option<&str>) {
        let i = self.len();
        match value {
            Some(s) => {
                self.bytes.extend_from_slice(s.as_bytes());
                self.offsets.push(self.bytes.len() as u32);
                if let Some(b) = &mut self.validity {
                    b.push(true);
                    debug_assert_eq!(b.len(), i + 1);
                }
            }
            None => {
                self.offsets.push(self.bytes.len() as u32);
                let validity = self.validity.get_or_insert_with(|| Bitmap::ones(i));
                validity.push(false);
            }
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether slot `i` is valid (non-null).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|b| b.get(i))
    }

    /// String at `i`, or `None` when null.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&str> {
        if !self.is_valid(i) {
            return None;
        }
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // SAFETY-FREE: bytes were appended from &str, always valid UTF-8.
        Some(std::str::from_utf8(&self.bytes[start..end]).expect("column holds valid utf8"))
    }

    fn take(&self, indices: &[u32]) -> Self {
        let mut out = StrVec::new();
        for &i in indices {
            out.push(self.get(i as usize));
        }
        out
    }

    fn concat(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for i in 0..other.len() {
            out.push(other.get(i));
        }
        out
    }
}

impl Column {
    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Boolean(_) => DataType::Boolean,
            Column::Int32(_) => DataType::Int32,
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Utf8(_) => DataType::Utf8,
            Column::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Boolean(v) => v.len(),
            Column::Int32(v) => v.len(),
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Timestamp(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `i` is valid (non-null).
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Column::Boolean(v) => v.is_valid(i),
            Column::Int32(v) => v.is_valid(i),
            Column::Int64(v) => v.is_valid(i),
            Column::Float64(v) => v.is_valid(i),
            Column::Utf8(v) => v.is_valid(i),
            Column::Timestamp(v) => v.is_valid(i),
        }
    }

    /// The value at row `i` as a scalar.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Boolean(v) => v.get(i).map_or(Value::Null, Value::Boolean),
            Column::Int32(v) => v.get(i).map_or(Value::Null, Value::Int32),
            Column::Int64(v) => v.get(i).map_or(Value::Null, Value::Int64),
            Column::Float64(v) => v.get(i).map_or(Value::Null, Value::Float64),
            Column::Utf8(v) => v.get(i).map_or(Value::Null, |s| Value::Utf8(s.to_owned())),
            Column::Timestamp(v) => v.get(i).map_or(Value::Null, Value::Timestamp),
        }
    }

    /// An empty column of type `dt`.
    pub fn empty(dt: DataType) -> Column {
        match dt {
            DataType::Boolean => Column::Boolean(PrimVec::default()),
            DataType::Int32 => Column::Int32(PrimVec::default()),
            DataType::Int64 => Column::Int64(PrimVec::default()),
            DataType::Float64 => Column::Float64(PrimVec::default()),
            DataType::Utf8 => Column::Utf8(StrVec::new()),
            DataType::Timestamp => Column::Timestamp(PrimVec::default()),
        }
    }

    /// Build a column of type `dt` from scalars (which must match `dt` or
    /// be `Null`).
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<Column> {
        let mut b = ColumnBuilder::new(dt);
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    /// A column of `len` copies of `value`.
    pub fn repeat(dt: DataType, value: &Value, len: usize) -> Result<Column> {
        let mut b = ColumnBuilder::new(dt);
        for _ in 0..len {
            b.push(value)?;
        }
        Ok(b.finish())
    }

    /// Gather rows at `indices`.
    pub fn take(&self, indices: &[u32]) -> Column {
        match self {
            Column::Boolean(v) => Column::Boolean(v.take(indices)),
            Column::Int32(v) => Column::Int32(v.take(indices)),
            Column::Int64(v) => Column::Int64(v.take(indices)),
            Column::Float64(v) => Column::Float64(v.take(indices)),
            Column::Utf8(v) => Column::Utf8(v.take(indices)),
            Column::Timestamp(v) => Column::Timestamp(v.take(indices)),
        }
    }

    /// Keep rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> Column {
        self.take(&mask.set_indices())
    }

    /// Concatenate with another column of the same type.
    pub fn concat(&self, other: &Column) -> Result<Column> {
        match (self, other) {
            (Column::Boolean(a), Column::Boolean(b)) => Ok(Column::Boolean(a.concat(b))),
            (Column::Int32(a), Column::Int32(b)) => Ok(Column::Int32(a.concat(b))),
            (Column::Int64(a), Column::Int64(b)) => Ok(Column::Int64(a.concat(b))),
            (Column::Float64(a), Column::Float64(b)) => Ok(Column::Float64(a.concat(b))),
            (Column::Utf8(a), Column::Utf8(b)) => Ok(Column::Utf8(a.concat(b))),
            (Column::Timestamp(a), Column::Timestamp(b)) => Ok(Column::Timestamp(a.concat(b))),
            (a, b) => Err(EngineError::type_err(format!(
                "cannot concat {} with {}",
                a.data_type(),
                b.data_type()
            ))),
        }
    }

    /// Approximate heap size in bytes (used for broadcast decisions and the
    /// memory-overhead experiment).
    pub fn byte_size(&self) -> usize {
        let validity = |b: &Option<Bitmap>| b.as_ref().map_or(0, |b| b.len().div_ceil(8));
        match self {
            Column::Boolean(v) => v.values.len() + validity(&v.validity),
            Column::Int32(v) => v.values.len() * 4 + validity(&v.validity),
            Column::Int64(v) | Column::Timestamp(v) => v.values.len() * 8 + validity(&v.validity),
            Column::Float64(v) => v.values.len() * 8 + validity(&v.validity),
            Column::Utf8(v) => v.bytes.len() + v.offsets.len() * 4 + validity(&v.validity),
        }
    }
}

/// Incremental column builder.
#[derive(Debug)]
pub enum ColumnBuilder {
    /// Boolean builder.
    Boolean(Vec<Option<bool>>),
    /// Int32 builder.
    Int32(Vec<Option<i32>>),
    /// Int64 builder.
    Int64(Vec<Option<i64>>),
    /// Float64 builder.
    Float64(Vec<Option<f64>>),
    /// Utf8 builder.
    Utf8(StrVec),
    /// Timestamp builder.
    Timestamp(Vec<Option<i64>>),
}

impl ColumnBuilder {
    /// A builder for type `dt`.
    pub fn new(dt: DataType) -> Self {
        match dt {
            DataType::Boolean => ColumnBuilder::Boolean(Vec::new()),
            DataType::Int32 => ColumnBuilder::Int32(Vec::new()),
            DataType::Int64 => ColumnBuilder::Int64(Vec::new()),
            DataType::Float64 => ColumnBuilder::Float64(Vec::new()),
            DataType::Utf8 => ColumnBuilder::Utf8(StrVec::new()),
            DataType::Timestamp => ColumnBuilder::Timestamp(Vec::new()),
        }
    }

    /// Append a scalar; it must match the builder's type or be `Null`.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (ColumnBuilder::Boolean(b), Value::Boolean(x)) => b.push(Some(*x)),
            (ColumnBuilder::Boolean(b), Value::Null) => b.push(None),
            (ColumnBuilder::Int32(b), Value::Int32(x)) => b.push(Some(*x)),
            (ColumnBuilder::Int32(b), Value::Null) => b.push(None),
            (ColumnBuilder::Int64(b), Value::Int64(x)) => b.push(Some(*x)),
            (ColumnBuilder::Int64(b), Value::Null) => b.push(None),
            (ColumnBuilder::Float64(b), Value::Float64(x)) => b.push(Some(*x)),
            (ColumnBuilder::Float64(b), Value::Null) => b.push(None),
            (ColumnBuilder::Utf8(b), Value::Utf8(s)) => b.push(Some(s)),
            (ColumnBuilder::Utf8(b), Value::Null) => b.push(None),
            (ColumnBuilder::Timestamp(b), Value::Timestamp(x)) => b.push(Some(*x)),
            (ColumnBuilder::Timestamp(b), Value::Null) => b.push(None),
            (me, v) => {
                return Err(EngineError::type_err(format!(
                    "cannot append {v:?} to {} column",
                    me.data_type()
                )))
            }
        }
        Ok(())
    }

    /// The builder's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnBuilder::Boolean(_) => DataType::Boolean,
            ColumnBuilder::Int32(_) => DataType::Int32,
            ColumnBuilder::Int64(_) => DataType::Int64,
            ColumnBuilder::Float64(_) => DataType::Float64,
            ColumnBuilder::Utf8(_) => DataType::Utf8,
            ColumnBuilder::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Boolean(b) => b.len(),
            ColumnBuilder::Int32(b) => b.len(),
            ColumnBuilder::Int64(b) => b.len(),
            ColumnBuilder::Float64(b) => b.len(),
            ColumnBuilder::Utf8(b) => b.len(),
            ColumnBuilder::Timestamp(b) => b.len(),
        }
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish into a column.
    pub fn finish(self) -> Column {
        match self {
            ColumnBuilder::Boolean(b) => Column::Boolean(PrimVec::from_options(b)),
            ColumnBuilder::Int32(b) => Column::Int32(PrimVec::from_options(b)),
            ColumnBuilder::Int64(b) => Column::Int64(PrimVec::from_options(b)),
            ColumnBuilder::Float64(b) => Column::Float64(PrimVec::from_options(b)),
            ColumnBuilder::Utf8(b) => Column::Utf8(b),
            ColumnBuilder::Timestamp(b) => Column::Timestamp(PrimVec::from_options(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primvec_options_roundtrip() {
        let v = PrimVec::from_options(vec![Some(1i64), None, Some(3)]);
        assert_eq!(v.get(0), Some(1));
        assert_eq!(v.get(1), None);
        assert_eq!(v.get(2), Some(3));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn strvec_nulls_and_slices() {
        let mut v = StrVec::new();
        v.push(Some("hello"));
        v.push(None);
        v.push(Some(""));
        v.push(Some("world"));
        assert_eq!(v.get(0), Some("hello"));
        assert_eq!(v.get(1), None);
        assert_eq!(v.get(2), Some(""));
        assert_eq!(v.get(3), Some("world"));
    }

    #[test]
    fn column_take_filter() {
        let c = Column::Int64(PrimVec::from_options(vec![
            Some(10),
            None,
            Some(30),
            Some(40),
        ]));
        let t = c.take(&[3, 0]);
        assert_eq!(t.value_at(0), Value::Int64(40));
        assert_eq!(t.value_at(1), Value::Int64(10));
        let mask = Bitmap::from_bools(&[false, true, true, false]);
        let f = c.filter(&mask);
        assert_eq!(f.len(), 2);
        assert_eq!(f.value_at(0), Value::Null);
        assert_eq!(f.value_at(1), Value::Int64(30));
    }

    #[test]
    fn column_concat_type_mismatch() {
        let a = Column::Int64(PrimVec::from_values(vec![1]));
        let b = Column::Utf8(StrVec::from_strs(&["x"]));
        assert!(a.concat(&b).is_err());
        let c = Column::Int64(PrimVec::from_values(vec![2, 3]));
        let ab = a.concat(&c).unwrap();
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.value_at(2), Value::Int64(3));
    }

    #[test]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(DataType::Int64);
        assert!(b.push(&Value::Utf8("x".into())).is_err());
        b.push(&Value::Int64(1)).unwrap();
        b.push(&Value::Null).unwrap();
        let c = b.finish();
        assert_eq!(c.len(), 2);
        assert!(!c.is_valid(1));
    }

    #[test]
    fn from_values_and_repeat() {
        let c =
            Column::from_values(DataType::Utf8, &[Value::Utf8("a".into()), Value::Null]).unwrap();
        assert_eq!(c.value_at(0), Value::Utf8("a".into()));
        assert_eq!(c.value_at(1), Value::Null);
        let r = Column::repeat(DataType::Int32, &Value::Int32(7), 5).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.value_at(4), Value::Int32(7));
    }

    #[test]
    fn byte_size_sane() {
        let c = Column::Int64(PrimVec::from_values(vec![0; 100]));
        assert_eq!(c.byte_size(), 800);
        let s = Column::Utf8(StrVec::from_strs(&["abcd"; 10]));
        assert!(s.byte_size() >= 40);
    }

    #[test]
    fn concat_mixed_validity() {
        let a = Column::Int64(PrimVec::from_values(vec![1, 2]));
        let b = Column::Int64(PrimVec::from_options(vec![None, Some(4)]));
        let c = a.concat(&b).unwrap();
        assert!(c.is_valid(0) && c.is_valid(1) && !c.is_valid(2) && c.is_valid(3));
    }
}
